"""Unit tests for repro.util.serialization."""

import dataclasses
import enum

import numpy as np
import pytest

from repro.util.serialization import dump_json, load_json, to_jsonable


class Color(enum.Enum):
    RED = "red"


@dataclasses.dataclass
class Point:
    x: int
    y: float
    tags: tuple


class TestToJsonable:
    def test_primitives_passthrough(self):
        for value in (None, True, 3, 2.5, "s"):
            assert to_jsonable(value) == value

    def test_enum(self):
        assert to_jsonable(Color.RED) == "red"

    def test_dataclass(self):
        assert to_jsonable(Point(1, 2.0, ("a",))) == {
            "x": 1,
            "y": 2.0,
            "tags": ["a"],
        }

    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.float64(2.5)) == 2.5

    def test_numpy_array(self):
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_nested(self):
        doc = {"a": [Point(0, 0.0, ()), {1, 2}], (3, 4): "v"}
        out = to_jsonable(doc)
        assert out["a"][0] == {"x": 0, "y": 0.0, "tags": []}
        assert out["a"][1] == [1, 2]
        assert out["[3, 4]"] == "v"

    def test_unserializable_raises(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


def test_dump_load_roundtrip(tmp_path):
    path = tmp_path / "sub" / "doc.json"
    dump_json({"k": [1, 2, 3]}, path)
    assert load_json(path) == {"k": [1, 2, 3]}
