"""Unit tests for the metrics registry and wall-clock timing.

The Stopwatch/WallBudget cases are the former ``tests/test_timer.py``,
migrated when ``repro.util.timer`` was folded into ``repro.obs.metrics``.
"""

import json
import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Stopwatch,
    WallBudget,
)
from repro.resilience.supervisor import SupervisorStats


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestStopwatch:
    def test_accumulates(self):
        clock = FakeClock()
        watch = Stopwatch(clock).start()
        clock.advance(2.0)
        assert watch.elapsed == pytest.approx(2.0)
        watch.stop()
        clock.advance(5.0)
        assert watch.elapsed == pytest.approx(2.0)
        watch.start()
        clock.advance(1.0)
        assert watch.elapsed == pytest.approx(3.0)

    def test_reset(self):
        clock = FakeClock()
        watch = Stopwatch(clock).start()
        clock.advance(1.0)
        watch.reset()
        assert watch.elapsed == 0.0
        assert not watch.running

    def test_double_start_is_noop(self):
        clock = FakeClock()
        watch = Stopwatch(clock).start().start()
        clock.advance(1.0)
        assert watch.elapsed == pytest.approx(1.0)


class TestWallBudget:
    def test_time_limit(self):
        clock = FakeClock()
        budget = WallBudget(max_seconds=10.0, clock=clock)
        assert not budget.exhausted
        clock.advance(10.1)
        assert budget.exhausted
        assert budget.elapsed == pytest.approx(10.1)

    def test_unlimited(self):
        clock = FakeClock()
        budget = WallBudget(clock=clock)
        clock.advance(1e9)
        assert not budget.exhausted

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            WallBudget(max_seconds=-1)


class TestCounter:
    def test_increments(self):
        counter = Counter("test.hits")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_float_amounts(self):
        counter = Counter("test.seconds")
        counter.inc(0.5)
        counter.inc(0.25)
        assert counter.value == pytest.approx(0.75)

    def test_rejects_negative(self):
        counter = Counter("test.hits")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_starts_unset(self):
        assert Gauge("test.level").value is None

    def test_moves_both_ways(self):
        gauge = Gauge("test.level")
        gauge.set(5.0)
        gauge.set(2.0)
        assert gauge.value == 2.0


class TestHistogram:
    def test_summary(self):
        hist = Histogram("test.sizes")
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["total"] == pytest.approx(6.0)
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_empty(self):
        summary = Histogram("test.sizes").summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0
        assert summary["min"] is None
        assert summary["max"] is None


class TestMetricsRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_as_dict_is_json_encodable(self):
        registry = MetricsRegistry()
        registry.counter("z.count").inc()
        registry.counter("a.count").inc(2)
        registry.gauge("best").set(math.inf)  # non-finite → null
        registry.histogram("sizes").observe(4.0)
        doc = registry.as_dict()
        encoded = json.loads(json.dumps(doc))
        assert encoded == doc
        assert list(doc["counters"]) == ["a.count", "z.count"]
        assert doc["gauges"]["best"] is None
        assert doc["histograms"]["sizes"]["count"] == 1


class TestSupervisorStats:
    def test_attribute_api(self):
        stats = SupervisorStats()
        assert not stats.any_events
        stats.timeouts += 1
        stats.pool_rebuilds += 2
        stats.serial_fallback = True
        assert stats.timeouts == 1
        assert stats.pool_rebuilds == 2
        assert stats.serial_fallback
        assert stats.any_events
        assert "1 timeouts" in stats.describe()
        assert "degraded to serial" in stats.describe()

    def test_shared_registry(self):
        registry = MetricsRegistry()
        stats = SupervisorStats(registry=registry)
        stats.worker_errors += 3
        doc = registry.as_dict()
        assert doc["counters"]["supervisor.worker_errors"] == 3
        assert doc["gauges"]["supervisor.serial_fallback"] is None


class TestPrometheusExport:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("oracle.suggested").inc(53)
        registry.counter("oracle.bound_pruned").inc(25)
        registry.gauge("oracle.best_performance").set(0.0015)
        registry.gauge("never.set")
        hist = registry.histogram("oracle.makespans")
        hist.observe(1.0)
        hist.observe(3.0)
        return registry

    def test_counters_gauges_histograms(self):
        from repro.obs.metrics import to_prometheus_text

        text = to_prometheus_text(self._registry())
        assert "# TYPE automap_oracle_suggested counter" in text
        assert "automap_oracle_suggested 53.0" in text
        assert "automap_oracle_bound_pruned 25.0" in text
        assert "# TYPE automap_oracle_best_performance gauge" in text
        assert "automap_oracle_best_performance 0.0015" in text
        assert "# TYPE automap_oracle_makespans summary" in text
        assert "automap_oracle_makespans_count 2.0" in text
        assert "automap_oracle_makespans_sum 4.0" in text
        assert "automap_oracle_makespans_min 1.0" in text
        assert "automap_oracle_makespans_max 3.0" in text
        # Unset gauges have no Prometheus encoding.
        assert "never_set" not in text
        assert text.endswith("\n")

    def test_accepts_snapshot_dict(self):
        from repro.obs.metrics import to_prometheus_text

        registry = self._registry()
        assert to_prometheus_text(registry.as_dict()) == (
            to_prometheus_text(registry)
        )

    def test_names_are_prometheus_safe(self):
        from repro.obs.metrics import to_prometheus_text

        registry = MetricsRegistry()
        registry.counter("4weird name-with/chars").inc()
        text = to_prometheus_text(registry)
        for line in text.splitlines():
            metric = line.split()[2 if line.startswith("#") else 0]
            assert metric.replace("_", "a").isalnum(), line
