"""Metrics are derived state: checkpoint/resume leaves them unchanged.

A resumed run re-derives every registry metric through the deterministic
replay — nothing is restored from the checkpoint — so an interrupted-
and-resumed run's metrics snapshot must equal the uninterrupted run's,
except ``oracle.replayed`` (zero on the baseline by definition).
"""

from __future__ import annotations

import json

import pytest

from repro.apps import make_app
from repro.core import AutoMapDriver, OracleConfig
from repro.machine import shepard
from repro.resilience import load_checkpoint
from repro.runtime import SimConfig

SEED = 2023


class KillAfter:
    def __init__(self, limit: int) -> None:
        self.limit = limit

    def __call__(self, oracle) -> None:
        if oracle.evaluated >= self.limit:
            raise KeyboardInterrupt


def make_driver(**kwargs):
    machine = shepard(2)
    app = make_app("stencil")
    return AutoMapDriver(
        app.graph(machine),
        machine,
        algorithm="ccd",
        oracle_config=OracleConfig(max_suggestions=800),
        sim_config=SimConfig(noise_sigma=0.04, seed=SEED, spill=True),
        space=app.space(machine),
        seed=SEED,
        **kwargs,
    )


def comparable(metrics: dict) -> dict:
    """The snapshot minus the one counter that legitimately differs."""
    out = json.loads(json.dumps(metrics))  # deep copy
    out["counters"].pop("oracle.replayed", None)
    return out


class TestMetricsSurviveResume:
    def test_resumed_metrics_equal_baseline(self, tmp_path):
        baseline = make_driver().tune()
        assert baseline.metrics is not None
        assert baseline.metrics["counters"]["oracle.replayed"] == 0

        path = tmp_path / "checkpoint.json"
        crashing = make_driver(
            checkpoint_path=path,
            checkpoint_every=2,
            observers=[KillAfter(3)],
        )
        with pytest.raises(KeyboardInterrupt):
            crashing.tune()

        resumed = make_driver(
            checkpoint_path=path,
            checkpoint_every=2,
            resume_checkpoint=load_checkpoint(path),
        ).tune()
        assert resumed.metrics is not None
        assert resumed.metrics["counters"]["oracle.replayed"] > 0
        assert comparable(resumed.metrics) == comparable(baseline.metrics)
        # The histogram of executed makespans is re-derived exactly too.
        assert (
            resumed.metrics["histograms"]["oracle.eval_makespan"]
            == baseline.metrics["histograms"]["oracle.eval_makespan"]
        )

    def test_checkpoint_embeds_metrics_snapshot(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        report = make_driver(
            checkpoint_path=path, checkpoint_every=5
        ).tune()
        doc = json.loads(path.read_text())
        assert doc["format"] == "automap-checkpoint-v1"
        embedded = doc["metrics"]
        # The final flush happens after the search but before the trace/
        # report stage adds nothing further — counters must agree with
        # the report's own snapshot.
        assert (
            embedded["counters"]["oracle.evaluated"]
            == report.metrics["counters"]["oracle.evaluated"]
        )
        # Old checkpoints without the key still load (derived state).
        del doc["metrics"]
        rewritten = tmp_path / "old-format.json"
        rewritten.write_text(json.dumps(doc))
        loaded = load_checkpoint(rewritten)
        assert loaded.metrics is None
