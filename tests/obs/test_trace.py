"""Trace recorder: determinism contract, Chrome export, Gantt render."""

from __future__ import annotations

import json

import pytest

from repro.core import AutoMapSession, OracleConfig
from repro.machine import shepard
from repro.obs.trace import (
    TRACE_FILENAME,
    TraceRecorder,
    diff_traces,
    load_trace,
    validate_chrome_trace,
)
from repro.runtime import SimConfig, Simulator
from repro.viz import render_gantt

from tests.conftest import build_diamond_graph


def make_sim(machine):
    return Simulator(
        build_diamond_graph(),
        machine,
        SimConfig(noise_sigma=0.03, seed=7),
    )


def default_mapping(sim):
    from repro.mapping.space import SearchSpace

    return SearchSpace(sim.graph, sim.machine).default_mapping()


class TestTraceDiff:
    def _recorder(self):
        recorder = TraceRecorder(label="a")
        recorder.record_task("k", "p0", 0.0, 2.0, 0, 1.5, 0.25, 0.25)
        recorder.record_copy("chan:x", "m0", "m1", 0.5, 0.5, 4096)
        recorder.finalize(2.0)
        return recorder

    def test_identical_traces(self, mini_machine):
        sim = make_sim(mini_machine)
        mapping = default_mapping(sim)
        first, _ = sim.trace(mapping)
        second, _ = sim.trace(mapping)
        diff = diff_traces(first, second)
        assert diff.identical
        assert diff.mismatches == 0
        assert diff.render() == "traces are identical"

    def test_makespan_mismatch(self):
        a, b = self._recorder(), self._recorder()
        b.finalize(2.5)
        diff = diff_traces(a, b)
        assert not diff.identical
        assert any("makespan" in line for line in diff.lines)

    def test_span_count_and_field_mismatch(self):
        a, b = self._recorder(), self._recorder()
        b.record_task("k", "p0", 2.0, 1.0, 1, 0.5, 0.25, 0.25)
        diff = diff_traces(a, b)
        assert not diff.identical
        assert any("span count" in line for line in diff.lines)

        c = TraceRecorder(label="a")
        c.record_task("k", "p0", 0.0, 2.0, 0, 1.5, 0.25, 0.25)
        c.record_copy("chan:x", "m0", "m1", 0.5, 0.5 + 1e-12, 4096)
        c.finalize(2.0)
        diff = diff_traces(a, c)
        assert not diff.identical  # floats compare exactly
        assert diff.mismatches == 1

    def test_limit_truncates_report_not_count(self):
        a, b = TraceRecorder(), TraceRecorder()
        for index in range(30):
            a.record_task("k", "p0", index, 1.0, index, 1.0, 0.0, 0.0)
            b.record_task("k", "p0", index, 2.0, index, 2.0, 0.0, 0.0)
        a.finalize(30.0)
        b.finalize(31.0)
        diff = diff_traces(a, b, limit=5)
        assert len(diff.lines) == 5
        assert diff.mismatches > 5
        assert str(diff.mismatches) in diff.render()


class TestTraceDeterminism:
    def test_traced_makespan_bit_identical(self, mini_machine):
        """The determinism contract: tracing observes the schedule, it
        never perturbs it."""
        sim = make_sim(mini_machine)
        mapping = default_mapping(sim)
        untraced = sim.run(mapping)
        recorder, traced = sim.trace(mapping)
        assert traced.makespan == untraced.makespan  # exact, not approx
        assert recorder.makespan == untraced.makespan
        assert recorder.spans

    def test_trace_never_touches_search_accounting(self, mini_machine):
        sim = make_sim(mini_machine)
        mapping = default_mapping(sim)
        sim.run(mapping)
        executions = sim.executions
        sim.trace(mapping)
        sim.trace(mapping)
        assert sim.executions == executions

    def test_repeat_traces_identical(self, mini_machine):
        sim = make_sim(mini_machine)
        mapping = default_mapping(sim)
        first, _ = sim.trace(mapping)
        second, _ = sim.trace(mapping)
        assert first.spans == second.spans

    def test_no_wall_time_in_spans(self, mini_machine):
        """Every timestamp is a simulated-clock value: bounded by the
        makespan, not by any epoch-sized wall-clock number."""
        sim = make_sim(mini_machine)
        recorder, result = sim.trace(default_mapping(sim))
        for span in recorder.spans:
            assert 0.0 <= span.start <= result.makespan + 1e-12
            assert span.finish <= result.makespan + 1e-12


class TestChromeExport:
    def test_export_validates_and_round_trips(self, mini_machine, tmp_path):
        sim = make_sim(mini_machine)
        recorder, _ = sim.trace(default_mapping(sim), label="t")
        doc = recorder.to_chrome_doc()
        assert validate_chrome_trace(doc) == len(recorder.spans)
        path = tmp_path / TRACE_FILENAME
        recorder.save(path)
        loaded = load_trace(path)
        assert loaded.label == "t"
        assert loaded.makespan == recorder.makespan
        assert loaded.spans == recorder.spans

    def test_validate_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "B", "name": "x"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "x", "pid": 1}]}
            )

    def test_timestamps_are_microseconds(self, mini_machine):
        sim = make_sim(mini_machine)
        recorder, result = sim.trace(default_mapping(sim))
        doc = recorder.to_chrome_doc()
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert max(e["ts"] + e["dur"] for e in spans) <= (
            result.makespan * 1e6 + 1e-6
        )


class TestBreakdown:
    def test_fractions_normalised(self, mini_machine):
        sim = make_sim(mini_machine)
        recorder, _ = sim.trace(default_mapping(sim))
        b = recorder.breakdown()
        assert b["active_processors"] > 0
        total = (
            b["compute_fraction"]
            + b["copy_fraction"]
            + b["overhead_fraction"]
            + b["idle_fraction"]
        )
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_empty_trace(self):
        b = TraceRecorder().breakdown()
        assert b["active_processors"] == 0
        assert b["idle_fraction"] == 0.0


class TestGantt:
    def test_renders_all_resources(self, mini_machine):
        sim = make_sim(mini_machine)
        recorder, _ = sim.trace(default_mapping(sim))
        chart = render_gantt(recorder, width=40)
        for resource in recorder.resources():
            assert resource in chart
        assert "makespan" in chart

    def test_empty(self):
        assert "empty" in render_gantt(TraceRecorder())


class TestEndToEndTraceIdentity:
    """`repro tune --trace` invariants, including serial vs workers."""

    SESSION_KW = dict(
        algorithm="ccd",
        oracle_config=OracleConfig(max_suggestions=120),
        sim_config=SimConfig(noise_sigma=0.04, seed=11),
        seed=11,
    )

    def _tune(self, tmp_path, name, **kw):
        machine = shepard(1)
        graph = build_diamond_graph()
        workdir = tmp_path / name
        session = AutoMapSession(
            graph,
            machine,
            workdir=workdir,
            trace=True,
            **{**self.SESSION_KW, **kw},
        )
        report = session.tune()
        return report, workdir

    def test_traced_equals_untraced_and_serial_equals_workers(
        self, tmp_path
    ):
        machine = shepard(1)
        graph = build_diamond_graph()
        untraced = AutoMapSession(
            graph, machine, **self.SESSION_KW
        ).tune()
        traced, workdir = self._tune(tmp_path, "serial")
        # Tracing must not change the result at all.
        assert traced.best_mean == untraced.best_mean
        assert traced.best_mapping == untraced.best_mapping
        assert traced.evaluated == untraced.evaluated

        trace_doc = json.loads((workdir / TRACE_FILENAME).read_text())
        assert validate_chrome_trace(trace_doc) > 0

        # Two workers converge on the same best mapping (prefetch-then-
        # replay bit-identity), hence on the byte-identical trace.
        parallel, workdir2 = self._tune(tmp_path, "workers", workers=2)
        assert parallel.best_mean == traced.best_mean
        assert (workdir2 / TRACE_FILENAME).read_text() == (
            workdir / TRACE_FILENAME
        ).read_text()
