"""Search telemetry: round records, JSONL artifact, driver wiring."""

from __future__ import annotations

import math

from repro.core import AutoMapSession, OracleConfig
from repro.machine import shepard
from repro.obs.telemetry import (
    TELEMETRY_FILENAME,
    RoundRecord,
    SearchTelemetry,
    load_telemetry,
)
from repro.runtime import SimConfig

from tests.conftest import build_diamond_graph


class FakeOracle:
    """Attribute bag mimicking the oracle counters telemetry reads."""

    def __init__(self):
        self.suggested = 0
        self.evaluated = 0
        self.invalid_suggestions = 0
        self.failed_evaluations = 0
        self.canonical_folds = 0
        self.static_oom_pruned = 0
        self.sim_elapsed = 0.0
        self.best_performance = math.inf


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestRoundRecording:
    def test_deltas(self):
        oracle = FakeOracle()
        clock = FakeClock()
        telemetry = SearchTelemetry(clock=clock)
        telemetry.begin_round(oracle)
        oracle.suggested += 10
        oracle.evaluated += 4
        oracle.invalid_suggestions += 2
        oracle.sim_elapsed = 1.5
        oracle.best_performance = 0.25
        clock.now = 3.0
        telemetry.end_round(oracle, "ccd", "kind=left")
        (record,) = telemetry.rounds
        assert record.round == 0
        assert record.proposed == 10
        assert record.evaluated == 4
        assert record.invalid == 2
        assert record.total_suggested == 10
        assert record.best_performance == 0.25
        assert record.sim_elapsed == 1.5
        assert record.wall_seconds == 3.0

    def test_infinite_best_is_none(self):
        oracle = FakeOracle()
        telemetry = SearchTelemetry()
        telemetry.begin_round(oracle)
        telemetry.end_round(oracle, "ccd", "r0")
        assert telemetry.rounds[0].best_performance is None

    def test_end_without_begin_is_noop(self):
        telemetry = SearchTelemetry()
        telemetry.end_round(FakeOracle(), "ccd", "r0")
        assert telemetry.rounds == []

    def test_double_begin_restarts(self):
        oracle = FakeOracle()
        telemetry = SearchTelemetry()
        telemetry.begin_round(oracle)
        oracle.suggested = 5
        telemetry.begin_round(oracle)  # abandoned snapshot dropped
        oracle.suggested = 8
        telemetry.end_round(oracle, "ccd", "r0")
        assert telemetry.rounds[0].proposed == 3

    def test_summary(self):
        oracle = FakeOracle()
        telemetry = SearchTelemetry()
        for _ in range(3):
            telemetry.begin_round(oracle)
            oracle.suggested += 2
            oracle.evaluated += 1
            telemetry.end_round(oracle, "ccd", "r")
        summary = telemetry.summary()
        assert summary["rounds"] == 3
        assert summary["proposed"] == 6
        assert summary["evaluated"] == 3


class TestJsonlRoundTrip:
    def test_stream_and_load(self, tmp_path):
        path = tmp_path / TELEMETRY_FILENAME
        oracle = FakeOracle()
        with SearchTelemetry(path) as telemetry:
            for i in range(4):
                telemetry.begin_round(oracle)
                oracle.suggested += i + 1
                telemetry.end_round(oracle, "random", f"draws={i}")
        loaded = load_telemetry(path)
        assert loaded == telemetry.rounds

    def test_record_doc_round_trip(self):
        record = RoundRecord(
            round=3,
            algorithm="ccd",
            label="kind=left",
            proposed=7,
            evaluated=2,
            invalid=1,
            failed=0,
            folded=3,
            pruned=1,
            total_suggested=40,
            total_evaluated=12,
            best_performance=0.5,
            sim_elapsed=2.5,
            wall_seconds=0.1,
        )
        assert RoundRecord.from_doc(record.to_doc()) == record

    def test_crash_keeps_completed_rounds(self, tmp_path):
        """Each line is flushed as it completes — a killed run keeps
        everything up to the last finished round."""
        path = tmp_path / TELEMETRY_FILENAME
        oracle = FakeOracle()
        telemetry = SearchTelemetry(path)
        telemetry.begin_round(oracle)
        oracle.suggested = 5
        telemetry.end_round(oracle, "ccd", "r0")
        telemetry.begin_round(oracle)  # never finished
        # No close(): simulate an abrupt death.
        assert len(load_telemetry(path)) == 1
        telemetry.close()


class TestDriverWiring:
    def test_workdir_tune_emits_telemetry(self, tmp_path):
        machine = shepard(1)
        session = AutoMapSession(
            build_diamond_graph(),
            machine,
            algorithm="ccd",
            workdir=tmp_path / "w",
            oracle_config=OracleConfig(max_suggestions=120),
            sim_config=SimConfig(noise_sigma=0.04, seed=11),
            seed=11,
        )
        report = session.tune()
        records = load_telemetry(tmp_path / "w" / TELEMETRY_FILENAME)
        assert records
        assert report.telemetry is not None
        assert report.telemetry["rounds"] == len(records)
        # Round deltas add up to the run's totals; the only oracle call
        # outside any round is the seed evaluation of the start mapping.
        assert report.suggested - sum(r.proposed for r in records) <= 1
        assert sum(r.evaluated for r in records) <= report.evaluated
        assert records[-1].total_suggested == report.suggested
        # Telemetry labels carry the algorithm's cursor.
        assert any("kind=" in r.label for r in records)
        # The algorithm's sink is detached after the tune.
        assert session.driver.algorithm.telemetry is None

    def test_telemetry_identical_serial_vs_workers(self, tmp_path):
        """Everything except wall_seconds is derived from the simulated
        search, so serial and 2-worker runs must agree line for line."""

        def run(name, workers):
            session = AutoMapSession(
                build_diamond_graph(),
                shepard(1),
                algorithm="ccd",
                workdir=tmp_path / name,
                oracle_config=OracleConfig(max_suggestions=120),
                sim_config=SimConfig(noise_sigma=0.04, seed=11),
                seed=11,
                workers=workers,
            )
            session.tune()
            return load_telemetry(tmp_path / name / TELEMETRY_FILENAME)

        def stripped(records):
            return [
                {
                    k: v
                    for k, v in r.to_doc().items()
                    if k != "wall_seconds"
                }
                for r in records
            ]

        assert stripped(run("serial", 1)) == stripped(run("workers", 2))


class TestBoundPruneTelemetry:
    def test_bound_pruned_delta(self):
        oracle = FakeOracle()
        oracle.bound_pruned = 3
        telemetry = SearchTelemetry(clock=FakeClock())
        telemetry.begin_round(oracle)
        oracle.suggested += 5
        oracle.bound_pruned += 4
        telemetry.end_round(oracle, "cd", "kind=left")
        (record,) = telemetry.rounds
        assert record.bound_pruned == 4

    def test_bound_pruned_round_trips(self):
        record = RoundRecord(
            round=0,
            algorithm="cd",
            label="kind=left",
            proposed=5,
            evaluated=1,
            invalid=0,
            failed=0,
            folded=0,
            pruned=0,
            total_suggested=5,
            total_evaluated=1,
            best_performance=0.5,
            sim_elapsed=1.0,
            wall_seconds=0.1,
            bound_pruned=4,
        )
        assert RoundRecord.from_doc(record.to_doc()) == record

    def test_pre_bound_prune_docs_load(self):
        """telemetry.jsonl written before the bound-pruning layer has
        no bound_pruned key; loading must default it to zero."""
        record = RoundRecord(
            round=0,
            algorithm="cd",
            label="kind=left",
            proposed=5,
            evaluated=1,
            invalid=0,
            failed=0,
            folded=0,
            pruned=0,
            total_suggested=5,
            total_evaluated=1,
            best_performance=0.5,
            sim_elapsed=1.0,
            wall_seconds=0.1,
        )
        doc = record.to_doc()
        del doc["bound_pruned"]
        assert RoundRecord.from_doc(doc).bound_pruned == 0
