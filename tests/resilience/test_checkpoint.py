"""Checkpoint subsystem unit tests: RNG snapshots, the replay-entry
round trip, periodic saves, and the resume identity check."""

from __future__ import annotations

import json

import pytest

from repro.core import OracleConfig, SimulationOracle
from repro.resilience import (
    CheckpointManager,
    CheckpointMismatch,
    ReplayEntry,
    TuningCheckpoint,
    load_checkpoint,
)
from repro.runtime import SimConfig, Simulator
from repro.util.rng import RngStream


class TestRngSnapshot:
    def test_state_roundtrip(self):
        rng = RngStream(42).fork("search", "ccd")
        # Advance the stream, snapshot, advance again, restore: the
        # restored stream must regenerate the exact same draws.
        rng.generator.random(16)
        state = rng.state_dict()
        after = rng.generator.random(8).tolist()

        restored = RngStream(42).fork("search", "ccd")
        restored.load_state(state)
        assert restored.generator.random(8).tolist() == after

    def test_state_survives_json(self):
        rng = RngStream(7).fork("search", "random")
        rng.generator.random(5)
        state = json.loads(json.dumps(rng.state_dict()))
        restored = RngStream(7).fork("search", "random")
        restored.load_state(state)
        assert (
            restored.generator.random(4).tolist()
            == rng.generator.random(4).tolist()
        )

    def test_mismatched_identity_rejected(self):
        state = RngStream(1).fork("a").state_dict()
        with pytest.raises(ValueError):
            RngStream(2).fork("a").load_state(state)
        with pytest.raises(ValueError):
            RngStream(1).fork("b").load_state(state)


class TestReplayEntry:
    def test_doc_roundtrip(self, diamond_space):
        mapping = diamond_space.default_mapping()
        entry = ReplayEntry(
            mapping=mapping,
            samples=[0.25, 0.26],
            failed=False,
            reason=None,
            makespan=0.255,
            static_oom=False,
        )
        restored = ReplayEntry.from_doc(
            json.loads(json.dumps(entry.to_doc()))
        )
        assert restored.mapping.key() == mapping.key()
        assert restored.samples == entry.samples
        assert restored.makespan == entry.makespan


class TestTuningCheckpoint:
    def test_verify_matches(self):
        checkpoint = TuningCheckpoint(
            application="stencil",
            machine_name="shepard-1n",
            algorithm="ccd",
            seed=0,
        )
        checkpoint.verify_matches("stencil", "shepard-1n", "ccd", 0)
        with pytest.raises(CheckpointMismatch):
            checkpoint.verify_matches("circuit", "shepard-1n", "ccd", 0)
        with pytest.raises(CheckpointMismatch):
            checkpoint.verify_matches("stencil", "shepard-1n", "ccd", 1)

    def test_save_load_roundtrip(self, tmp_path, diamond_space):
        mapping = diamond_space.default_mapping()
        checkpoint = TuningCheckpoint(
            application="diamond",
            machine_name="mini",
            algorithm="random",
            seed=3,
            suggested=10,
            evaluated=4,
            sim_elapsed=1.25,
            best_performance=0.5,
            best_mapping=mapping,
            entries=[
                ReplayEntry(mapping=mapping, samples=[0.5], makespan=0.5)
            ],
        )
        path = tmp_path / "checkpoint.json"
        checkpoint.save(path)
        loaded = load_checkpoint(path)
        assert loaded.application == "diamond"
        assert loaded.suggested == 10
        assert loaded.evaluated == 4
        assert loaded.sim_elapsed == 1.25
        assert loaded.best_mapping.key() == mapping.key()
        assert list(loaded.replay_ledger()) == [mapping.key()]

    def test_foreign_json_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError):
            load_checkpoint(path)


class TestCheckpointManager:
    @pytest.fixture
    def oracle(self, diamond_graph, mini_machine):
        simulator = Simulator(
            diamond_graph, mini_machine, SimConfig(noise_sigma=0.03, seed=7)
        )
        return SimulationOracle(simulator, OracleConfig())

    def test_periodic_saves_on_evaluations(
        self, tmp_path, oracle, diamond_space
    ):
        path = tmp_path / "checkpoint.json"
        manager = CheckpointManager(
            path,
            oracle,
            application="diamond",
            machine_name="mini",
            algorithm_name="random",
            seed=0,
            every=2,
        )
        oracle.observers.append(manager.on_evaluation)
        rng = RngStream(21)
        for i in range(5):
            oracle.evaluate(
                diamond_space.random_mapping(rng.fork(str(i)), valid=True)
            )
        # 5 unique evaluations with every=2 -> saves at 2 and 4.
        assert manager.saves == 2
        loaded = load_checkpoint(path)
        assert loaded.evaluated == 4
        assert len(loaded.entries) == 4

    def test_cache_hits_do_not_trigger_saves(
        self, tmp_path, oracle, diamond_space
    ):
        path = tmp_path / "checkpoint.json"
        manager = CheckpointManager(
            path,
            oracle,
            application="diamond",
            machine_name="mini",
            algorithm_name="random",
            seed=0,
            every=1,
        )
        oracle.observers.append(manager.on_evaluation)
        mapping = diamond_space.default_mapping()
        oracle.evaluate(mapping)
        assert manager.saves == 1
        for _ in range(3):  # deduplicated: no new execution, no save
            oracle.evaluate(mapping)
        assert manager.saves == 1

    def test_flush_writes_even_without_interval(
        self, tmp_path, oracle, diamond_space
    ):
        path = tmp_path / "checkpoint.json"
        manager = CheckpointManager(
            path,
            oracle,
            application="diamond",
            machine_name="mini",
            algorithm_name="random",
            seed=0,
            every=0,
        )
        oracle.observers.append(manager.on_evaluation)
        oracle.evaluate(diamond_space.default_mapping())
        assert not path.exists()
        manager.flush()
        assert path.exists()
        assert load_checkpoint(path).evaluated == 1
