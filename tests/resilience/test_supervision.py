"""Worker supervision under injected faults.

The supervision contract: worker crashes, hangs, and pool breakage may
cost wall-clock time (retries, pool rebuilds, serial fallback) but can
never change a result — prefetch is a pure cache warmer, so every
recovery action is result-preserving by construction.
"""

from __future__ import annotations

import pytest

from repro.apps import make_app
from repro.core import AutoMapDriver, OracleConfig, SimulationOracle
from repro.machine import shepard
from repro.parallel import BatchOracle
from repro.resilience.faults import FaultPlan
from repro.runtime import SimConfig, Simulator

SEED = 2023


def make_driver(algorithm="ccd", max_suggestions=300, **kwargs):
    machine = shepard(2)
    app = make_app("stencil")
    return AutoMapDriver(
        app.graph(machine),
        machine,
        algorithm=algorithm,
        oracle_config=OracleConfig(max_suggestions=max_suggestions),
        sim_config=SimConfig(noise_sigma=0.04, seed=SEED, spill=True),
        space=app.space(machine),
        seed=SEED,
        # Bound pruning would starve the worker pool of prefetch work;
        # these tests need real batches in flight to inject faults into.
        bound_prune=False,
        **kwargs,
    )


def assert_reports_identical(serial, supervised):
    assert serial.best_mapping.key() == supervised.best_mapping.key()
    assert serial.best_mean == supervised.best_mean
    assert serial.search.trace == supervised.search.trace
    assert serial.suggested == supervised.suggested
    assert serial.evaluated == supervised.evaluated
    assert serial.search_seconds == supervised.search_seconds


class TestFaultPlan:
    def test_inactive_by_default(self, monkeypatch):
        for var in (
            "REPRO_FAULT_CRASH_P",
            "REPRO_FAULT_HANG_P",
            "REPRO_FAULT_SEED",
        ):
            monkeypatch.delenv(var, raising=False)
        plan = FaultPlan.from_env()
        assert not plan.active
        assert plan.decide("anything", 0) == "ok"

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_CRASH_P", "0.25")
        monkeypatch.setenv("REPRO_FAULT_HANG_P", "0.1")
        monkeypatch.setenv("REPRO_FAULT_HANG_SECONDS", "2.5")
        monkeypatch.setenv("REPRO_FAULT_SEED", "9")
        plan = FaultPlan.from_env()
        assert plan.active
        assert plan.crash_p == 0.25
        assert plan.hang_p == 0.1
        assert plan.hang_seconds == 2.5
        assert plan.seed == 9

    def test_decide_is_deterministic(self):
        plan = FaultPlan(crash_p=0.5, hang_p=0.2, seed=13)
        verdicts = [plan.decide("mapping-a", i) for i in range(20)]
        assert verdicts == [plan.decide("mapping-a", i) for i in range(20)]
        # Different contexts / attempts draw independently; with these
        # probabilities 20 draws must not all agree.
        assert len(set(verdicts)) > 1

    def test_retry_gets_fresh_draw(self):
        plan = FaultPlan(crash_p=0.5, hang_p=0.0, seed=13)
        # Find a context that crashes on attempt 0 but succeeds on some
        # later attempt: the retry path must be able to make progress.
        for i in range(50):
            context = f"candidate-{i}"
            if plan.decide(context, 0) == "crash":
                outcomes = {plan.decide(context, a) for a in range(1, 6)}
                if "ok" in outcomes:
                    return
        pytest.fail("no context recovered on retry — draws not fresh")

    def test_crash_probability_one_always_crashes(self):
        plan = FaultPlan(crash_p=1.0, hang_p=0.0, seed=1)
        assert all(
            plan.decide(f"c{i}", i) == "crash" for i in range(10)
        )


class TestBatchOracleAttributeDelegation:
    @pytest.fixture
    def batch_oracle(self, diamond_graph, mini_machine):
        simulator = Simulator(
            diamond_graph, mini_machine, SimConfig(noise_sigma=0.03, seed=7)
        )
        oracle = SimulationOracle(simulator, OracleConfig())
        batch = BatchOracle(oracle, workers=1)
        yield batch
        batch.close()

    def test_public_attributes_delegate(self, batch_oracle):
        assert batch_oracle.suggested == 0
        assert batch_oracle.evaluated == 0

    def test_underscore_names_never_delegate(self, batch_oracle):
        """Dunder/underscore lookups (``__getstate__``, ``__deepcopy__``,
        ...) must raise AttributeError instead of delegating — otherwise
        copy/pickle protocols silently operate on the wrapped oracle."""
        with pytest.raises(AttributeError):
            batch_oracle._no_such_attribute
        with pytest.raises(AttributeError):
            batch_oracle.__deepcopy__
        with pytest.raises(AttributeError):
            batch_oracle.__reduce_ex_custom__

    def test_missing_public_attribute_still_raises(self, batch_oracle):
        with pytest.raises(AttributeError):
            batch_oracle.definitely_not_an_attribute


@pytest.mark.slow
class TestInjectedFaults:
    """End-to-end: injected worker faults never change the report."""

    def test_occasional_crashes_are_recovered(self, monkeypatch):
        serial = make_driver().tune()
        monkeypatch.setenv("REPRO_FAULT_CRASH_P", "0.3")
        monkeypatch.setenv("REPRO_FAULT_SEED", "7")
        supervised = make_driver(workers=2).tune()
        assert_reports_identical(serial, supervised)
        assert supervised.recovery.any_events
        assert supervised.recovery.broken_pools > 0

    def test_total_crash_degrades_to_serial(self, monkeypatch):
        serial = make_driver().tune()
        monkeypatch.setenv("REPRO_FAULT_CRASH_P", "1.0")
        monkeypatch.setenv("REPRO_FAULT_SEED", "7")
        supervised = make_driver(workers=2).tune()
        assert_reports_identical(serial, supervised)
        assert supervised.recovery.serial_fallback
        assert supervised.recovery.pool_rebuilds > 0

    def test_hung_workers_are_timed_out(self, monkeypatch):
        serial = make_driver(max_suggestions=120).tune()
        monkeypatch.setenv("REPRO_FAULT_HANG_P", "1.0")
        monkeypatch.setenv("REPRO_FAULT_HANG_SECONDS", "60")
        monkeypatch.setenv("REPRO_FAULT_SEED", "3")
        supervised = make_driver(
            max_suggestions=120, workers=2, worker_timeout=0.5
        ).tune()
        assert_reports_identical(serial, supervised)
        assert supervised.recovery.timeouts > 0
        assert supervised.recovery.pool_rebuilds > 0
