"""CLI-level fault tolerance: ``--resume``, ``--checkpoint-every``, and
the KeyboardInterrupt exit protocol."""

from __future__ import annotations

import pytest

import repro.cli as cli
from repro.cli import main

TUNE = [
    "tune",
    "--app",
    "stencil",
    "--input",
    "500x500",
    "--max-suggestions",
    "120",
]


class TestInterruptExitCode:
    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        class InterruptedSession:
            def __init__(self, *args, **kwargs):
                pass

            def default_mapping(self):
                raise KeyboardInterrupt

        monkeypatch.setattr(cli, "AutoMapSession", InterruptedSession)
        assert main(TUNE) == 130
        err = capsys.readouterr().err
        assert "--resume" in err


class TestResumeFlag:
    def test_resume_conflicts_with_other_workdir(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                TUNE
                + [
                    "--workdir",
                    str(tmp_path / "a"),
                    "--resume",
                    str(tmp_path / "b"),
                ]
            )

    def test_resume_without_checkpoint_fails(self, tmp_path):
        workdir = tmp_path / "fresh"
        workdir.mkdir()
        with pytest.raises(FileNotFoundError):
            main(TUNE + ["--resume", str(workdir)])

    def test_tune_then_resume_end_to_end(self, tmp_path, capsys):
        workdir = tmp_path / "run"
        assert (
            main(
                TUNE
                + ["--workdir", str(workdir), "--checkpoint-every", "10"]
            )
            == 0
        )
        first = capsys.readouterr().out
        assert (workdir / "checkpoint.json").exists()
        assert (workdir / "best_mapping.json").exists()

        assert main(TUNE + ["--resume", str(workdir)]) == 0
        second = capsys.readouterr().out
        assert "evaluations replayed from checkpoint" in second

        def best_line(text):
            return next(
                line
                for line in text.splitlines()
                if "best mean time" in line
            )

        assert best_line(first) == best_line(second)
