"""Kill-then-resume bit-identity — the acceptance criterion.

A tuning run killed at an arbitrary point and resumed from its
checkpoint must report the bit-identical best mapping, best mean, trace,
and accounting as an uninterrupted serial run with the same seed.  The
only counter allowed to differ is ``simulations`` (runtime work done
since the restart), which is why the comparison below never touches it.
"""

from __future__ import annotations

import pytest

from repro.apps import make_app
from repro.core import AutoMapDriver, OracleConfig
from repro.machine import shepard
from repro.resilience import load_checkpoint
from repro.runtime import SimConfig

SEED = 2023


class KillAfter:
    """Oracle observer that simulates a crash: raises KeyboardInterrupt
    once the run has executed ``limit`` evaluations.  Registered after
    the checkpoint manager, so the interrupt always lands on a fully
    flushed state."""

    def __init__(self, limit: int) -> None:
        self.limit = limit

    def __call__(self, oracle) -> None:
        if oracle.evaluated >= self.limit:
            raise KeyboardInterrupt


def make_driver(app_name, algorithm, max_suggestions=800, **kwargs):
    machine = shepard(2)
    app = make_app(app_name)
    return AutoMapDriver(
        app.graph(machine),
        machine,
        algorithm=algorithm,
        oracle_config=OracleConfig(max_suggestions=max_suggestions),
        sim_config=SimConfig(noise_sigma=0.04, seed=SEED, spill=True),
        space=app.space(machine),
        seed=SEED,
        **kwargs,
    )


def assert_reports_identical(baseline, resumed):
    assert baseline.best_mapping.key() == resumed.best_mapping.key()
    assert baseline.best_mean == resumed.best_mean
    assert baseline.best_stddev == resumed.best_stddev
    assert baseline.search.trace == resumed.search.trace
    assert baseline.suggested == resumed.suggested
    assert baseline.evaluated == resumed.evaluated
    assert baseline.invalid_suggestions == resumed.invalid_suggestions
    assert baseline.failed_evaluations == resumed.failed_evaluations
    assert baseline.search_seconds == resumed.search_seconds
    assert [
        (m.key(), mean, stddev, count)
        for m, mean, stddev, count in baseline.finalists
    ] == [
        (m.key(), mean, stddev, count)
        for m, mean, stddev, count in resumed.finalists
    ]


def kill_and_resume(app_name, algorithm, tmp_path, kill_after=3):
    """Run uninterrupted; run again with a mid-search crash; resume;
    return (baseline report, resumed report)."""
    baseline = make_driver(app_name, algorithm).tune()

    path = tmp_path / "checkpoint.json"
    crashing = make_driver(
        app_name,
        algorithm,
        checkpoint_path=path,
        checkpoint_every=2,
        observers=[KillAfter(kill_after)],
    )
    with pytest.raises(KeyboardInterrupt):
        crashing.tune()
    assert path.exists(), "interrupt must flush a final checkpoint"
    killed_at = load_checkpoint(path)
    assert 0 < killed_at.evaluated <= baseline.evaluated

    resumed_driver = make_driver(
        app_name,
        algorithm,
        checkpoint_path=path,
        checkpoint_every=2,
        resume_checkpoint=load_checkpoint(path),
    )
    resumed = resumed_driver.tune()
    assert resumed.resumed
    # Every ledgered record replays: executed and failed evaluations.
    assert resumed.replayed == (
        killed_at.evaluated + killed_at.failed_evaluations
    )
    return baseline, resumed


class TestKillThenResume:
    @pytest.mark.parametrize("algorithm", ["ccd", "random"])
    def test_stencil(self, algorithm, tmp_path):
        baseline, resumed = kill_and_resume("stencil", algorithm, tmp_path)
        assert_reports_identical(baseline, resumed)

    @pytest.mark.parametrize("algorithm", ["ccd", "opentuner"])
    def test_circuit(self, algorithm, tmp_path):
        baseline, resumed = kill_and_resume("circuit", algorithm, tmp_path)
        assert_reports_identical(baseline, resumed)

    def test_double_kill(self, tmp_path):
        """Crash, resume, crash again, resume again: re-checkpointing a
        resumed run must carry un-replayed ledger entries forward."""
        baseline = make_driver("stencil", "ccd").tune()
        path = tmp_path / "checkpoint.json"

        first = make_driver(
            "stencil",
            "ccd",
            checkpoint_path=path,
            checkpoint_every=2,
            observers=[KillAfter(2)],
        )
        with pytest.raises(KeyboardInterrupt):
            first.tune()

        second = make_driver(
            "stencil",
            "ccd",
            checkpoint_path=path,
            checkpoint_every=2,
            resume_checkpoint=load_checkpoint(path),
            observers=[KillAfter(4)],
        )
        with pytest.raises(KeyboardInterrupt):
            second.tune()

        final = make_driver(
            "stencil",
            "ccd",
            checkpoint_path=path,
            checkpoint_every=2,
            resume_checkpoint=load_checkpoint(path),
        )
        assert_reports_identical(baseline, final.tune())

    def test_resume_after_completion(self, tmp_path):
        """Resuming a finished run replays everything and reproduces
        the same report (idempotent resume)."""
        path = tmp_path / "checkpoint.json"
        baseline = make_driver(
            "stencil", "ccd", checkpoint_path=path, checkpoint_every=10
        ).tune()
        resumed = make_driver(
            "stencil",
            "ccd",
            checkpoint_path=path,
            checkpoint_every=10,
            resume_checkpoint=load_checkpoint(path),
        ).tune()
        assert resumed.replayed == baseline.evaluated
        assert_reports_identical(baseline, resumed)

    def test_resume_with_parallel_workers(self, tmp_path):
        """Resume composes with the process pool: replay short-circuits
        ledgered candidates while new work still fans out to workers."""
        baseline, _ = kill_and_resume("stencil", "ccd", tmp_path)
        path = tmp_path / "checkpoint.json"
        parallel = make_driver(
            "stencil",
            "ccd",
            checkpoint_path=path,
            checkpoint_every=5,
            resume_checkpoint=load_checkpoint(path),
            workers=2,
        ).tune()
        assert_reports_identical(baseline, parallel)


class TestBoundPruneResume:
    """Bound pruning (on by default above) composes with kill/resume:
    pruned candidates are never ledgered, so a resumed run re-derives
    every prune decision statically and lands on the same counts."""

    def test_prunes_fire_and_survive_resume(self, tmp_path):
        baseline, resumed = kill_and_resume("stencil", "ccd", tmp_path)
        assert baseline.bound_pruned > 0
        assert baseline.bound_pruned == resumed.bound_pruned
        assert baseline.bound_settled == resumed.bound_settled

    def test_checkpoint_roundtrips_prune_counter(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        crashing = make_driver(
            "stencil",
            "ccd",
            checkpoint_path=path,
            checkpoint_every=2,
            observers=[KillAfter(3)],
        )
        with pytest.raises(KeyboardInterrupt):
            crashing.tune()
        killed_at = load_checkpoint(path)
        assert killed_at.bound_pruned >= 0
        # The flushed ledger only holds really-evaluated candidates;
        # replay therefore re-prunes instead of replaying prunes.
        assert len(killed_at.entries) == (
            killed_at.evaluated + killed_at.failed_evaluations
        )


class TestResumeGuards:
    def test_mismatched_checkpoint_rejected(self, tmp_path):
        from repro.resilience import CheckpointMismatch

        path = tmp_path / "checkpoint.json"
        crashing = make_driver(
            "stencil",
            "ccd",
            checkpoint_path=path,
            checkpoint_every=2,
            observers=[KillAfter(3)],
        )
        with pytest.raises(KeyboardInterrupt):
            crashing.tune()
        with pytest.raises(CheckpointMismatch):
            make_driver(
                "circuit",
                "ccd",
                resume_checkpoint=load_checkpoint(path),
            )
        with pytest.raises(CheckpointMismatch):
            make_driver(
                "stencil",
                "random",
                resume_checkpoint=load_checkpoint(path),
            )
