"""Crash-safe artifact writes: temp file + ``os.replace`` everywhere."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.profiles import ProfileDatabase
from repro.util.rng import RngStream
from repro.util.serialization import (
    atomic_write_text,
    dump_json,
    load_json,
)


def no_temp_leftovers(directory) -> bool:
    return not [n for n in os.listdir(directory) if ".tmp" in n]


class TestAtomicWrite:
    def test_replaces_atomically(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text("first\n", target)
        atomic_write_text("second\n", target)
        assert target.read_text() == "second\n"
        assert no_temp_leftovers(tmp_path)

    def test_dump_json_roundtrip(self, tmp_path):
        target = tmp_path / "doc.json"
        doc = {"a": 1, "samples": [0.1, 0.2]}
        dump_json(doc, target)
        assert load_json(target) == doc
        assert no_temp_leftovers(tmp_path)

    def test_failed_serialization_keeps_previous_file(self, tmp_path):
        """A crash mid-write must never corrupt the existing artifact:
        serialization happens before the file is touched."""
        target = tmp_path / "doc.json"
        dump_json({"ok": True}, target)
        with pytest.raises(TypeError):
            dump_json({"bad": object()}, target)
        assert load_json(target) == {"ok": True}
        assert no_temp_leftovers(tmp_path)


class TestProfilesRoundTrip:
    def _database(self, diamond_space):
        rng = RngStream(5)
        db = ProfileDatabase()
        mappings = [
            diamond_space.random_mapping(rng.fork(str(i)), valid=True)
            for i in range(3)
        ]
        db.record(mappings[0], [0.5, 0.6, 0.7], makespan=0.55)
        db.record(mappings[1], [1.5], makespan=1.5)
        db.record(
            mappings[2],
            [],
            failed=True,
            reason="out of memory",
            static_oom=True,
        )
        return db, mappings

    def test_save_load_roundtrip(self, tmp_path, diamond_space):
        """ProfileStore.save is round-trippable: the reloaded database
        reproduces every record, not just describe() strings."""
        db, mappings = self._database(diamond_space)
        path = tmp_path / "profiles.json"
        db.save(path)

        loaded = ProfileDatabase.load(path)
        assert len(loaded) == len(db)
        for mapping in mappings:
            original = db.lookup(mapping)
            restored = loaded.lookup(mapping)
            assert restored is not None
            assert restored.mapping.key() == mapping.key()
            assert restored.samples == original.samples
            assert restored.failed == original.failed
            assert restored.reason == original.reason
            assert restored.makespan == original.makespan
            assert restored.static_oom == original.static_oom

    def test_format_is_versioned(self, tmp_path, diamond_space):
        db, _ = self._database(diamond_space)
        path = tmp_path / "profiles.json"
        db.save(path)
        doc = json.loads(path.read_text())
        assert doc["format"] == "automap-profiles-v2"
        # The legacy v1 format is not round-trippable and must be
        # refused (it only kept describe() strings).
        legacy = tmp_path / "legacy.json"
        legacy.write_text(
            json.dumps({"format": "automap-profiles-v1", "records": []})
        )
        with pytest.raises(ValueError):
            ProfileDatabase.load(legacy)
