"""Unit tests for the App spec machinery (repro.apps.base)."""

import pytest

from repro.apps.base import App, KindSpec, RootSpec, SlotSpec
from repro.machine import lassen, shepard
from repro.machine.kinds import MemKind, ProcKind
from repro.taskgraph.task import Privilege, ShardPattern


class TinyApp(App):
    """Minimal concrete app used to exercise the base machinery."""

    name = "tiny"

    def __init__(self, halo_frac=0.1, group_over=None):
        self.halo_frac = halo_frac
        self.group_over = group_over

    def roots(self):
        return [RootSpec("a", 1 << 16), RootSpec("b", 1 << 12)]

    def kinds(self):
        return [
            KindSpec(
                "k1",
                slots=(
                    SlotSpec(
                        "a",
                        "a",
                        Privilege.READ_WRITE,
                        ShardPattern.BLOCK_HALO,
                        self.halo_frac,
                    ),
                    SlotSpec("b", "b", Privilege.READ),
                ),
                flops_per_elem=5.0,
                group_over=self.group_over,
            ),
            KindSpec(
                "k2",
                slots=(SlotSpec("b", "b", Privilege.READ_WRITE),),
                flops_per_elem=2.0,
            ),
        ]

    def input_label(self):
        return "tiny"


class TestGraphConstruction:
    def test_launch_count(self):
        app = TinyApp()
        app.iterations = 3
        graph = app.graph(shepard(1))
        assert len(graph) == 6  # 2 kinds x 3 iterations

    def test_flops_scale_with_work_root(self):
        graph = TinyApp().graph(shepard(1))
        k1 = graph.launches_of_kind("k1")[0]
        k2 = graph.launches_of_kind("k2")[0]
        assert k1.flops == 5.0 * (1 << 16) // 1 * 1.0
        assert k2.flops == 2.0 * (1 << 12)

    def test_halo_bytes_from_fraction(self):
        app = TinyApp(halo_frac=0.25)
        machine = shepard(1)
        graph = app.graph(machine)
        kind = graph.kind("k1")
        share = (1 << 16) * 8 // app.parts(machine)
        assert kind.slots[0].halo_bytes == int(share * 0.25)

    def test_group_over_gpus_uses_gpu_count(self):
        app = TinyApp(group_over="gpus")
        machine = lassen(1)  # 4 GPUs
        graph = app.graph(machine)
        k1 = graph.launches_of_kind("k1")[0]
        k2 = graph.launches_of_kind("k2")[0]
        assert k1.size == 4
        assert k2.size == app.parts(machine)

    def test_group_over_gpus_halo_share(self):
        """Halo widths must follow the kind's own group size (a
        regression for the parts/gpus mismatch)."""
        app = TinyApp(halo_frac=0.5, group_over="gpus")
        machine = lassen(1)
        graph = app.graph(machine)
        kind = graph.kind("k1")
        share = (1 << 16) * 8 // 4  # gpus, not parts
        assert kind.slots[0].halo_bytes == int(share * 0.5)

    def test_parts_scale_with_machine(self):
        app = TinyApp()
        assert app.parts(shepard(2)) == 2 * app.parts(shepard(1))


class TestSpecValidation:
    def test_unknown_root_rejected(self):
        class Bad(TinyApp):
            def kinds(self):
                return [
                    KindSpec(
                        "k",
                        slots=(SlotSpec("x", "ghost_root"),),
                    )
                ]

        with pytest.raises(ValueError, match="unknown root"):
            Bad().graph(shepard(1))

    def test_unknown_work_root_rejected(self):
        class Bad(TinyApp):
            def kinds(self):
                return [
                    KindSpec(
                        "k",
                        slots=(SlotSpec("a", "a"),),
                        work_root="ghost",
                    )
                ]

        with pytest.raises(ValueError, match="work root"):
            Bad().graph(shepard(1))

    def test_duplicate_roots_rejected(self):
        class Bad(TinyApp):
            def roots(self):
                return [RootSpec("a", 1), RootSpec("a", 2)]

        with pytest.raises(ValueError, match="duplicate root"):
            Bad().graph(shepard(1))


class TestDecideHelper:
    def test_decide_by_slot_name(self):
        app = TinyApp()
        machine = shepard(1)
        mapping = app.default_mapping(machine)
        new = app._decide(
            mapping,
            "k1",
            proc=ProcKind.CPU,
            mems={"a": MemKind.SYSTEM, "b": MemKind.ZERO_COPY},
            distribute=False,
        )
        decision = new.decision("k1")
        assert decision.proc_kind is ProcKind.CPU
        assert decision.mem_kinds == (MemKind.SYSTEM, MemKind.ZERO_COPY)
        assert decision.distribute is False
        # Untouched kind unchanged.
        assert new.decision("k2") == mapping.decision("k2")
