"""Unit tests for the OpenTuner-style ensemble (bandit, techniques)."""

import pytest

from repro.core import OracleConfig, SimulationOracle
from repro.mapping import SearchSpace
from repro.runtime import SimConfig, Simulator
from repro.search import EnsembleTuner
from repro.search.bandit import AUCBandit
from repro.search.techniques import (
    GeneticCrossover,
    GreedyMutation,
    PatternSearch,
    TunerState,
    UniformRandom,
)
from repro.util.rng import RngStream


class TestBandit:
    def test_tries_all_arms_first(self):
        bandit = AUCBandit(["a", "b", "c"])
        picks = []
        for _ in range(3):
            arm = bandit.select()
            picks.append(arm)
            bandit.report(arm, False)
        assert set(picks) == {"a", "b", "c"}

    def test_rewards_shift_budget(self):
        bandit = AUCBandit(["good", "bad"], exploration=0.01)
        for _ in range(100):
            arm = bandit.select()
            bandit.report(arm, improved=(arm == "good"))
        usage = bandit.usage()
        assert usage["good"] > usage["bad"]

    def test_window_bounded(self):
        bandit = AUCBandit(["a"], window_size=10)
        for _ in range(50):
            bandit.report("a", True)
        assert len(bandit._arms["a"].window) == 10

    def test_duplicate_arms_rejected(self):
        with pytest.raises(ValueError):
            AUCBandit(["a", "a"])

    def test_empty_arms_rejected(self):
        with pytest.raises(ValueError):
            AUCBandit([])


class TestTechniques:
    @pytest.fixture
    def state(self):
        state = TunerState(dims=[2, 2, 3, 3, 3])
        state.record([0, 1, 2, 0, 1], 1.0)
        state.record([1, 0, 0, 0, 0], 2.0)
        return state

    def test_random_in_range(self, state):
        rng = RngStream(1)
        for i in range(20):
            vec = UniformRandom().suggest(state, rng.fork(str(i)))
            assert all(0 <= v < d for v, d in zip(vec, state.dims))

    def test_mutation_close_to_best(self, state):
        rng = RngStream(2)
        vec = GreedyMutation(max_mutations=1).suggest(state, rng)
        diffs = sum(
            1 for a, b in zip(vec, state.best_vector) if a != b
        )
        assert diffs <= 1

    def test_mutation_without_best_is_random(self):
        state = TunerState(dims=[4, 4])
        vec = GreedyMutation().suggest(state, RngStream(1))
        assert len(vec) == 2

    def test_crossover_from_population(self, state):
        vec = GeneticCrossover().suggest(state, RngStream(3))
        assert len(vec) == len(state.dims)

    def test_pattern_steps_one_dim(self, state):
        tech = PatternSearch()
        vec = tech.suggest(state, RngStream(4))
        diffs = sum(1 for a, b in zip(vec, state.best_vector) if a != b)
        assert diffs == 1

    def test_state_records_best(self):
        state = TunerState(dims=[2])
        assert state.record([1], 5.0)
        assert not state.record([0], 9.0)
        assert state.record([0], 1.0)
        assert state.best_performance == 1.0

    def test_population_capped(self):
        state = TunerState(dims=[2], population_cap=4)
        for i in range(10):
            state.record([i % 2], float(i))
        assert len(state.population) == 4
        assert [p for p, _ in state.population] == [0.0, 1.0, 2.0, 3.0]


class TestEnsembleTuner:
    def test_finds_reasonable_mapping(self, diamond_graph, mini_machine):
        sim = Simulator(diamond_graph, mini_machine, SimConfig(noise_sigma=0, seed=2))
        oracle = SimulationOracle(
            sim, OracleConfig(runs_per_eval=1, max_suggestions=400)
        )
        space = SearchSpace(diamond_graph, mini_machine)
        result = EnsembleTuner().search(space, oracle, RngStream(5))
        assert result.found
        default_perf = sim.run(space.default_mapping()).makespan
        assert result.best_performance <= default_perf * 1.001

    def test_proposes_invalid_mappings(self, diamond_graph, mini_machine):
        """Unconstrained encoding -> invalid proposals occur (§4.3)."""
        sim = Simulator(diamond_graph, mini_machine, SimConfig(noise_sigma=0, seed=2))
        oracle = SimulationOracle(
            sim, OracleConfig(runs_per_eval=1, max_suggestions=300)
        )
        EnsembleTuner().search(
            SearchSpace(diamond_graph, mini_machine), oracle, RngStream(5)
        )
        assert oracle.invalid_suggestions > 0

    def test_suggested_exceeds_evaluated(self, diamond_graph, mini_machine):
        sim = Simulator(diamond_graph, mini_machine, SimConfig(noise_sigma=0, seed=2))
        oracle = SimulationOracle(
            sim, OracleConfig(runs_per_eval=1, max_suggestions=500)
        )
        result = EnsembleTuner().search(
            SearchSpace(diamond_graph, mini_machine), oracle, RngStream(5)
        )
        assert result.suggested > result.evaluated

    def test_max_suggestions_respected(self, diamond_graph, mini_machine):
        sim = Simulator(diamond_graph, mini_machine, SimConfig(noise_sigma=0, seed=2))
        oracle = SimulationOracle(sim, OracleConfig(runs_per_eval=1))
        EnsembleTuner(max_suggestions=50).search(
            SearchSpace(diamond_graph, mini_machine), oracle, RngStream(5)
        )
        assert oracle.suggested <= 51  # + the seed evaluation
