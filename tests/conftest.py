"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.machine import Machine, lassen, shepard, single_node
from repro.mapping import SearchSpace
from repro.runtime import SimConfig, Simulator
from repro.taskgraph import ArgSlot, GraphBuilder, Privilege, ShardPattern
from repro.util.rng import RngStream


@pytest.fixture
def mini_machine() -> Machine:
    """A small single-node machine (1 socket, 4 cores, 1 GPU)."""
    return single_node(cpus=4, gpus=1)


@pytest.fixture
def shepard1() -> Machine:
    return shepard(1)


@pytest.fixture
def shepard2() -> Machine:
    return shepard(2)


@pytest.fixture
def lassen1() -> Machine:
    return lassen(1)


def build_diamond_graph(iterations: int = 2, nbytes: int = 1 << 24):
    """A small produce/consume diamond used across tests.

    ``source`` writes a grid; ``left`` and ``right`` read disjoint halves
    (but halo-overlap each other); ``sink`` reads both outputs.
    """
    b = GraphBuilder("diamond")
    grid = b.collection("grid", nbytes=nbytes)
    left_out = b.collection("left_out", nbytes=nbytes // 2)
    right_out = b.collection("right_out", nbytes=nbytes // 2)
    acc = b.collection("acc", nbytes=1 << 12)

    source = b.task_kind(
        "source", slots=[ArgSlot("grid", Privilege.WRITE)]
    )
    left = b.task_kind(
        "left",
        slots=[
            ArgSlot(
                "grid",
                Privilege.READ,
                ShardPattern.BLOCK_HALO,
                halo_bytes=nbytes // 64,
            ),
            ArgSlot("out", Privilege.WRITE),
        ],
    )
    right = b.task_kind(
        "right",
        slots=[
            ArgSlot(
                "grid",
                Privilege.READ,
                ShardPattern.BLOCK_HALO,
                halo_bytes=nbytes // 64,
            ),
            ArgSlot("out", Privilege.WRITE),
        ],
    )
    sink = b.task_kind(
        "sink",
        slots=[
            ArgSlot("a", Privilege.READ),
            ArgSlot("b", Privilege.READ),
            ArgSlot("acc", Privilege.READ_WRITE),
        ],
    )
    for _ in range(iterations):
        b.launch(source, [grid], size=4, flops=2e8)
        b.launch(left, [grid, left_out], size=4, flops=4e8)
        b.launch(right, [grid, right_out], size=4, flops=4e8)
        b.launch(sink, [left_out, right_out, acc], size=1, flops=1e7)
    return b.build()


@pytest.fixture
def diamond_graph():
    return build_diamond_graph()


@pytest.fixture
def diamond_space(diamond_graph, mini_machine) -> SearchSpace:
    return SearchSpace(diamond_graph, mini_machine)


@pytest.fixture
def diamond_sim(diamond_graph, mini_machine) -> Simulator:
    return Simulator(
        diamond_graph, mini_machine, SimConfig(noise_sigma=0.03, seed=7)
    )


@pytest.fixture
def rng() -> RngStream:
    return RngStream(1234)
