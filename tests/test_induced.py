"""Unit tests for the induced collection graph C (paper §4.2)."""


from repro.taskgraph import GraphBuilder, Privilege, induced_collection_graph
from repro.taskgraph.induced import CollectionGraph


def make_graph():
    """Two kinds sharing one collection, one private collection each."""
    b = GraphBuilder("g")
    shared = b.collection("shared", nbytes=1000)
    priv_a = b.collection("priv_a", nbytes=400)
    priv_b = b.collection("priv_b", nbytes=200)
    ka = b.task_kind(
        "a", slots=[("s", Privilege.READ_WRITE), ("p", Privilege.READ)]
    )
    kb = b.task_kind(
        "b", slots=[("s", Privilege.READ), ("p", Privilege.READ_WRITE)]
    )
    b.launch(ka, [shared, priv_a], size=2, flops=1.0)
    b.launch(kb, [shared, priv_b], size=2, flops=1.0)
    return b.build()


class TestInducedGraph:
    def test_shared_collection_creates_edge(self):
        C = induced_collection_graph(make_graph())
        assert C.connected(("a", 0), ("b", 0))
        assert C.weight(("a", 0), ("b", 0)) == 1000

    def test_private_collections_no_edge(self):
        C = induced_collection_graph(make_graph())
        assert not C.connected(("a", 1), ("b", 1))

    def test_neighbors_sorted(self):
        C = induced_collection_graph(make_graph())
        assert C.neighbors(("a", 0)) == [("b", 0)]

    def test_halo_partitions_edge_weights(self):
        b = GraphBuilder("halo")
        parts = b.partition("grid", nbytes=1000, parts=2, halo_bytes=100)
        k1 = b.task_kind("k1", slots=[("g", Privilege.READ_WRITE)])
        k2 = b.task_kind("k2", slots=[("g", Privilege.READ)])
        b.launch(k1, [parts[0]], flops=1.0)
        b.launch(k2, [parts[1]], flops=1.0)
        g = b.build()
        C = induced_collection_graph(g)
        # parts overlap by 2*halo = 200 bytes.
        assert C.weight(("k1", 0), ("k2", 0)) == 200


class TestPruning:
    def make(self):
        return CollectionGraph(
            {
                frozenset({("a", 0), ("b", 0)}): 100,
                frozenset({("a", 0), ("c", 0)}): 10,
                frozenset({("b", 0), ("c", 0)}): 50,
            }
        )

    def test_prune_lightest_first(self):
        C = self.make()
        removed = C.prune_lightest(1)
        assert removed == 1
        assert not C.connected(("a", 0), ("c", 0))
        assert C.connected(("a", 0), ("b", 0))

    def test_prune_more_than_available(self):
        C = self.make()
        assert C.prune_lightest(10) == 3
        assert C.num_edges == 0

    def test_prune_zero(self):
        C = self.make()
        assert C.prune_lightest(0) == 0
        assert C.num_edges == 3

    def test_prune_all(self):
        C = self.make()
        C.prune_all()
        assert C.num_edges == 0
        assert C.original_num_edges == 3

    def test_copy_independent(self):
        C = self.make()
        D = C.copy()
        C.prune_all()
        assert D.num_edges == 3

    def test_deterministic_tie_break(self):
        C = CollectionGraph(
            {
                frozenset({("a", 0), ("b", 0)}): 10,
                frozenset({("a", 0), ("c", 0)}): 10,
            }
        )
        C.prune_lightest(1)
        # ('a',0)-('b',0) sorts first, so it is removed first.
        assert not C.connected(("a", 0), ("b", 0))
        assert C.connected(("a", 0), ("c", 0))

    def test_zero_weight_edges_dropped(self):
        C = CollectionGraph({frozenset({("a", 0), ("b", 0)}): 0})
        assert C.num_edges == 0
