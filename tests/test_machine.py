"""Unit tests for the machine model, kinds, and builders."""

import pytest

from repro.machine import (
    AccessLink,
    Channel,
    Machine,
    MemKind,
    Memory,
    ProcKind,
    Processor,
    lassen,
    shepard,
    single_node,
)
from repro.machine.kinds import (
    ADDRESSABLE,
    addressable_mem_kinds,
    addressable_proc_kinds,
    fastest_mem_kind,
)
from repro.util.units import GIB


class TestKinds:
    def test_addressability_matches_figure1(self):
        assert (ProcKind.CPU, MemKind.SYSTEM) in ADDRESSABLE
        assert (ProcKind.CPU, MemKind.ZERO_COPY) in ADDRESSABLE
        assert (ProcKind.GPU, MemKind.FRAMEBUFFER) in ADDRESSABLE
        assert (ProcKind.GPU, MemKind.ZERO_COPY) in ADDRESSABLE
        assert (ProcKind.CPU, MemKind.FRAMEBUFFER) not in ADDRESSABLE
        assert (ProcKind.GPU, MemKind.SYSTEM) not in ADDRESSABLE

    def test_fastest_kinds(self):
        assert fastest_mem_kind(ProcKind.GPU) is MemKind.FRAMEBUFFER
        assert fastest_mem_kind(ProcKind.CPU) is MemKind.SYSTEM

    def test_preference_order(self):
        assert addressable_mem_kinds(ProcKind.GPU) == (
            MemKind.FRAMEBUFFER,
            MemKind.ZERO_COPY,
        )

    def test_zero_copy_shared(self):
        assert set(addressable_proc_kinds(MemKind.ZERO_COPY)) == {
            ProcKind.CPU,
            ProcKind.GPU,
        }


class TestBuilders:
    def test_shepard_inventory(self):
        m = shepard(1)
        assert m.num_nodes == 1
        assert len(m.processors_of_kind(ProcKind.GPU)) == 1
        assert len(m.processors_of_kind(ProcKind.CPU)) == 2  # sockets
        assert len(m.memories_of_kind(MemKind.FRAMEBUFFER)) == 1
        assert len(m.memories_of_kind(MemKind.SYSTEM)) == 2
        assert len(m.memories_of_kind(MemKind.ZERO_COPY)) == 1

    def test_lassen_inventory(self):
        m = lassen(2)
        assert m.num_nodes == 2
        assert len(m.processors_of_kind(ProcKind.GPU)) == 8
        assert len(m.memories_of_kind(MemKind.FRAMEBUFFER)) == 8

    def test_framebuffer_capacity(self):
        m = shepard(1)
        fb = m.memories_of_kind(MemKind.FRAMEBUFFER)[0]
        assert fb.capacity == 16 * GIB

    def test_zero_copy_reservation(self):
        # Paper: 60 GB of host memory reserved for Zero-Copy per node.
        m = lassen(1)
        zc = m.memories_of_kind(MemKind.ZERO_COPY)[0]
        assert zc.capacity == 60 * GIB

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            shepard(0)

    def test_gpu_faster_than_cpu_socket(self):
        m = shepard(1)
        gpu = m.processors_of_kind(ProcKind.GPU)[0]
        cpu = m.processors_of_kind(ProcKind.CPU)[0]
        assert gpu.throughput > cpu.throughput

    def test_framebuffer_fastest_memory(self):
        m = shepard(1)
        fb_bw = m.typical_access_bandwidth(ProcKind.GPU, MemKind.FRAMEBUFFER)
        zc_bw = m.typical_access_bandwidth(ProcKind.GPU, MemKind.ZERO_COPY)
        sys_bw = m.typical_access_bandwidth(ProcKind.CPU, MemKind.SYSTEM)
        assert fb_bw > sys_bw > zc_bw

    def test_gpu_zero_copy_ratio_enables_50x(self):
        """§5.2: GPU+all-Zero-Copy runs tens of times slower than
        Frame-Buffer; the bandwidth ratio is what produces it."""
        m = shepard(1)
        fb = m.typical_access_bandwidth(ProcKind.GPU, MemKind.FRAMEBUFFER)
        zc = m.typical_access_bandwidth(ProcKind.GPU, MemKind.ZERO_COPY)
        assert fb / zc > 20


class TestMachineGraph:
    def test_duplicate_proc_uid_rejected(self):
        proc = Processor(uid="p", kind=ProcKind.CPU, node=0)
        with pytest.raises(ValueError, match="duplicate"):
            Machine("m", processors=[proc, proc])

    def test_access_link_kind_violation_rejected(self):
        proc = Processor(uid="p", kind=ProcKind.CPU, node=0)
        mem = Memory(uid="fb", kind=MemKind.FRAMEBUFFER, node=0, capacity=1)
        with pytest.raises(ValueError, match="addressability"):
            Machine(
                "m",
                processors=[proc],
                memories=[mem],
                access_links=[AccessLink(proc="p", mem="fb", bandwidth=1.0)],
            )

    def test_channel_unknown_memory_rejected(self):
        with pytest.raises(ValueError, match="unknown memory"):
            Machine(
                "m",
                memories=[
                    Memory(uid="a", kind=MemKind.SYSTEM, node=0, capacity=1)
                ],
                channels=[Channel(mem_a="a", mem_b="ghost", bandwidth=1.0)],
            )

    def test_closest_memory_prefers_own_device(self):
        m = lassen(1)
        gpu2 = m.processor("n0.gpu2")
        closest = m.closest_memory(gpu2, MemKind.FRAMEBUFFER)
        assert closest is not None and closest.uid == "n0.fb2"

    def test_closest_memory_prefers_own_socket(self):
        m = shepard(1)
        cpu1 = m.processor("n0.cpu1")
        closest = m.closest_memory(cpu1, MemKind.SYSTEM)
        assert closest is not None and closest.socket == 1

    def test_closest_memory_none_for_unaddressable(self):
        m = shepard(1)
        cpu = m.processor("n0.cpu0")
        assert m.closest_memory(cpu, MemKind.FRAMEBUFFER) is None

    def test_describe_mentions_nodes(self):
        assert "node 1" in shepard(2).describe()

    def test_noncontiguous_nodes_rejected(self):
        with pytest.raises(ValueError, match="contiguous"):
            Machine(
                "m",
                processors=[Processor(uid="p", kind=ProcKind.CPU, node=1)],
            )


class TestSingleNode:
    def test_shape(self):
        m = single_node(cpus=4, gpus=2)
        assert len(m.processors_of_kind(ProcKind.CPU)) == 1
        assert len(m.processors_of_kind(ProcKind.GPU)) == 2

    def test_capacity_overrides(self):
        m = single_node(framebuffer_capacity=GIB)
        fb = m.memories_of_kind(MemKind.FRAMEBUFFER)[0]
        assert fb.capacity == GIB
