"""Fast end-to-end smoke searches — ``pytest -m smoke``.

One tiny but complete AutoMap run per benchmark application: build the
graph, search with CCD under a small budget, and sanity-check the
report.  CI runs these (plus the CLI smoke commands) to exercise the
whole pipeline per push without paying full figure-reproduction cost.
"""

from __future__ import annotations

import math

import pytest

from repro.apps import make_app
from repro.core import AutoMapDriver, OracleConfig
from repro.machine import shepard
from repro.runtime import SimConfig

pytestmark = pytest.mark.smoke

#: Small inputs per application (constructor kwargs), sized so each
#: search finishes in a couple of seconds.
SMOKE_INPUTS = {
    "circuit": {"nodes": 200, "wires": 800},
    "stencil": {"nx": 200, "ny": 200},
    "pennant": {"zx": 64, "zy": 36},
    "htr": {"x": 8, "y": 8, "z": 9},
    "maestro": {"lf_count": 4, "lf_res": 16},
}


@pytest.mark.parametrize("app_name", sorted(SMOKE_INPUTS))
def test_end_to_end_search(app_name):
    machine = shepard(1)
    app = make_app(app_name, **SMOKE_INPUTS[app_name])
    driver = AutoMapDriver(
        app.graph(machine),
        machine,
        algorithm="ccd",
        oracle_config=OracleConfig(max_suggestions=150),
        sim_config=SimConfig(noise_sigma=0.04, seed=7, spill=True),
        space=app.space(machine),
        seed=7,
    )
    default_mean = driver.measure(driver.space.default_mapping())
    report = driver.tune()
    assert report.best_mapping is not None
    assert math.isfinite(report.best_mean)
    assert report.best_mean > 0
    # The tuned mapping is never worse than the runtime default (CCD
    # starts from the default and only accepts strict improvements).
    assert report.best_mean <= default_mean * 1.05
    assert report.suggested >= report.evaluated > 0
    assert report.describe()
