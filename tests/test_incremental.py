"""Incremental re-simulation identity properties.

The incremental engine (prefix replay + per-launch cost memoisation,
``repro.runtime.incremental``) and the caches it switches on in the
simulator (spill plans, noise factors, validation dedup) promise
*byte-identical* results to the full path.  These tests enforce that
promise the way the search exercises it: random single-coordinate
mutation chains (the coordinate-descent access pattern), occasional
random jumps, revisits of earlier mappings, noise draws, OOM paths, and
whole tuning runs.
"""

from __future__ import annotations

import pytest

from repro.apps import make_app
from repro.core import AutoMapDriver, OracleConfig
from repro.machine import lassen, shepard
from repro.machine.kinds import ADDRESSABLE
from repro.mapping import SearchSpace
from repro.obs.trace import diff_traces
from repro.runtime import SimConfig, Simulator
from repro.runtime.memory import MemoryPlanner, OOMError
from repro.runtime.noise import NoiseModel
from repro.util.rng import RngStream

#: Small inputs: the point is coverage of the cache machinery, not load.
APP_INPUTS = {
    "circuit": {"nodes": 60, "wires": 240},
    "stencil": {"nx": 64, "ny": 64},
    "pennant": {"zx": 64, "zy": 36},
    "htr": {"x": 8, "y": 8, "z": 9},
    "maestro": {"lf_count": 4, "lf_res": 16},
}

MACHINES = {"shepard": shepard, "lassen": lassen}


def _mutate(space: SearchSpace, mapping, rng: RngStream):
    """One legal single-coordinate mutation (the CD move set)."""
    kind = rng.choice(sorted(space.kind_names()))
    dims = space.dims(kind)
    move = rng.choice(["dist", "proc", "mem"])
    if move == "dist":
        options = list(space.searched_distribute_options(kind))
        return mapping.with_distribute(kind, rng.choice(options))
    if move == "proc":
        mutated = mapping.with_proc(kind, rng.choice(list(dims.proc_options)))
        decision = mutated.decision(kind)
        fastest = dims.mem_options[decision.proc_kind][0]
        for slot_index, mem_kind in enumerate(decision.mem_kinds):
            if (decision.proc_kind, mem_kind) not in ADDRESSABLE:
                mutated = mutated.with_mem(kind, slot_index, fastest)
        return mutated
    decision = mapping.decision(kind)
    slot_index = rng.integers(0, decision.num_slots)
    options = list(
        space.searched_mem_options(kind, decision.proc_kind, slot_index)
    )
    if not options:
        return mapping
    return mapping.with_mem(kind, slot_index, rng.choice(options))


def _chain(space: SearchSpace, rng: RngStream, length: int = 12):
    """Default start, CD-style walk, a jump, and two revisits."""
    chain = [space.default_mapping()]
    for step in range(length):
        if step % 7 == 6:
            chain.append(space.random_mapping(rng))
        else:
            chain.append(_mutate(space, chain[-1], rng))
    chain.append(chain[2])  # replay: dirty index == len(order)
    chain.append(chain[-2])
    return chain


def _report_tuple(report):
    return (
        report.makespan.hex(),
        [(k, v.hex()) for k, v in report.kind_busy.items()],
        list(report.kind_points.items()),
        [(k, v.hex()) for k, v in report.kind_finish.items()],
        (
            report.copy_stats.num_copies,
            report.copy_stats.bytes_moved,
            report.copy_stats.copy_seconds.hex(),
        ),
        list(report.footprint.items()),
        [(k, v.hex()) for k, v in report.proc_busy.items()],
    )


def _run_both(sim_inc, sim_full, mapping, runs=7):
    """Run one mapping through both simulators; compare outcome exactly.

    Returns True when the mapping executed (vs. raised identically)."""
    try:
        result_inc = sim_inc.run(mapping, runs=runs)
    except (Exception,) as exc_inc:
        with pytest.raises(type(exc_inc)) as caught:
            sim_full.run(mapping, runs=runs)
        assert str(caught.value) == str(exc_inc)
        return False
    result_full = sim_full.run(mapping, runs=runs)
    assert _report_tuple(result_inc.report) == _report_tuple(
        result_full.report
    )
    assert [s.hex() for s in result_inc.samples] == [
        s.hex() for s in result_full.samples
    ]
    assert (
        result_inc.executed_mapping.key()
        == result_full.executed_mapping.key()
    )
    return True


@pytest.mark.parametrize("app_name", sorted(APP_INPUTS))
@pytest.mark.parametrize("machine_name", sorted(MACHINES))
def test_mutation_chain_identity(app_name, machine_name):
    """Random single-coordinate walks produce bit-identical reports,
    noise samples and executed mappings in both modes (spill on)."""
    machine = MACHINES[machine_name](2)
    app = make_app(app_name, **APP_INPUTS[app_name])
    graph = app.graph(machine)
    space = SearchSpace(graph, machine)
    sim_inc = Simulator(
        graph, machine, SimConfig(seed=3, spill=True, incremental=True)
    )
    sim_full = Simulator(
        graph, machine, SimConfig(seed=3, spill=True, incremental=False)
    )
    rng = RngStream(42).fork(app_name, machine_name)
    executed = 0
    for mapping in _chain(space, rng):
        if _run_both(sim_inc, sim_full, mapping):
            executed += 1
    assert executed > 0
    stats = sim_inc.incremental_stats
    assert stats.runs > 0
    assert 0.0 <= stats.replay_fraction <= 1.0
    # The full-path simulator never touches the incremental machinery.
    assert sim_full.incremental_stats.runs == 0


@pytest.mark.parametrize("app_name", ["stencil", "circuit"])
def test_mutation_chain_identity_no_spill(app_name):
    """With spill disabled, OOM mappings raise the identical error in
    both modes and the OOM-attempt counters stay in lockstep."""
    machine = lassen(2)
    app = make_app(app_name, **APP_INPUTS[app_name])
    graph = app.graph(machine)
    space = SearchSpace(graph, machine)
    sim_inc = Simulator(
        graph, machine, SimConfig(seed=5, spill=False, incremental=True)
    )
    sim_full = Simulator(
        graph, machine, SimConfig(seed=5, spill=False, incremental=False)
    )
    rng = RngStream(17).fork(app_name)
    for mapping in _chain(space, rng, length=16):
        _run_both(sim_inc, sim_full, mapping)
    assert sim_inc.oom_attempts == sim_full.oom_attempts
    assert sim_inc.executions == sim_full.executions


def test_planner_fast_path_matches_exact_walk():
    """The memoised planner's no-overflow fast path and the exact walk
    agree on every spill resolution and every OOM verdict."""
    machine = lassen(2)
    app = make_app("stencil", **APP_INPUTS["stencil"])
    graph = app.graph(machine)
    space = SearchSpace(graph, machine)
    fast = MemoryPlanner(graph, machine, memoize=True)
    exact = MemoryPlanner(graph, machine, memoize=False)
    rng = RngStream(9)
    for mapping in _chain(space, rng, length=20):
        try:
            spilled_fast = fast.apply_spill(mapping)
        except OOMError as exc:
            with pytest.raises(OOMError) as caught:
                exact.apply_spill(mapping)
            assert str(caught.value) == str(exc)
            continue
        spilled_exact = exact.apply_spill(mapping)
        assert spilled_fast.key() == spilled_exact.key()


def test_noise_cache_returns_identical_factors():
    """Cached noise draws are bitwise what the uncached model computes,
    in any query order, including the mean-factor aggregate."""
    cached = NoiseModel(sigma=0.04, seed=11, cache=True)
    uncached = NoiseModel(sigma=0.04, seed=11, cache=False)
    contexts = [("m", i) for i in range(6)]
    # Warm the cache in one order, compare in another.
    for context in contexts:
        cached.samples(1.5, context, 7)
    for context in reversed(contexts):
        a = [s.hex() for s in cached.samples(1.5, context, 7)]
        b = [s.hex() for s in uncached.samples(1.5, context, 7)]
        assert a == b
        assert cached.mean_factor(context, 7).hex() == (
            uncached.mean_factor(context, 7).hex()
        )


@pytest.mark.parametrize("app_name", ["circuit", "stencil"])
def test_tune_identity(app_name):
    """Whole ccd tuning runs converge byte-identically in both modes:
    best mapping, mean, stddev, finalists, and execution trace."""
    machine = shepard(2)
    app = make_app(app_name, **APP_INPUTS[app_name])
    reports = {}
    for incremental in (True, False):
        driver = AutoMapDriver(
            app.graph(machine),
            machine,
            algorithm="ccd",
            oracle_config=OracleConfig(max_suggestions=60),
            sim_config=SimConfig(
                noise_sigma=0.04,
                seed=7,
                spill=True,
                incremental=incremental,
            ),
            space=app.space(machine),
            seed=7,
            trace=True,
        )
        reports[incremental] = driver.tune()
    inc, full = reports[True], reports[False]
    assert inc.best_mapping.key() == full.best_mapping.key()
    assert inc.best_mean.hex() == full.best_mean.hex()
    assert inc.best_stddev.hex() == full.best_stddev.hex()
    assert [
        (m.key(), mean.hex(), std.hex(), count)
        for m, mean, std, count in inc.finalists
    ] == [
        (m.key(), mean.hex(), std.hex(), count)
        for m, mean, std, count in full.finalists
    ]
    assert inc.suggested == full.suggested
    assert inc.simulations == full.simulations
    diff = diff_traces(inc.trace, full.trace)
    assert diff.identical, diff.render()
