"""JobSpec validation, normalization, and materialisation."""

from __future__ import annotations

import pytest

from repro.service.spec import EXECUTION_FIELDS, SEMANTIC_FIELDS, JobSpec


class TestValidation:
    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="unknown application"):
            JobSpec(app="nope")

    def test_unknown_machine_rejected(self):
        with pytest.raises(ValueError, match="unknown machine"):
            JobSpec(app="stencil", machine="nope")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown search algorithm"):
            JobSpec(app="stencil", algorithm="nope")

    @pytest.mark.parametrize(
        "field,value",
        [
            ("nodes", 0),
            ("workers", 0),
            ("max_suggestions", 0),
            ("noise_sigma", -0.1),
            ("checkpoint_every", -1),
        ],
    )
    def test_bad_numbers_rejected(self, field, value):
        with pytest.raises(ValueError):
            JobSpec(app="stencil", **{field: value})

    def test_unknown_doc_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown job-spec field"):
            JobSpec.from_doc({"app": "stencil", "bogus": 1})

    def test_missing_app_rejected(self):
        with pytest.raises(ValueError, match="requires an 'app'"):
            JobSpec.from_doc({"machine": "shepard"})

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            JobSpec.from_doc([1, 2])

    def test_wrong_format_marker_rejected(self):
        with pytest.raises(ValueError, match="unsupported job-spec"):
            JobSpec.from_doc({"app": "stencil", "format": "v999"})


class TestRoundtrip:
    def test_doc_roundtrip_is_identity(self):
        spec = JobSpec(
            app="stencil",
            input="500x500",
            machine="lassen",
            nodes=2,
            algorithm="cd",
            seed=7,
            max_suggestions=123,
            workers=3,
            incremental=False,
        )
        assert JobSpec.from_doc(spec.to_doc()) == spec

    def test_doc_is_fully_explicit(self):
        doc = JobSpec(app="stencil").to_doc()
        for name in SEMANTIC_FIELDS + EXECUTION_FIELDS:
            assert name in doc

    def test_field_partition_is_total(self):
        """Every spec field is classified semantic or execution —
        an unclassified field could silently poison the cache."""
        import dataclasses

        names = {f.name for f in dataclasses.fields(JobSpec)}
        assert names == set(SEMANTIC_FIELDS) | set(EXECUTION_FIELDS)


class TestBuild:
    def test_build_materialises_graph_machine_space(self):
        app, graph, machine, space = JobSpec(
            app="stencil", input="500x500"
        ).build()
        assert graph.launches
        assert machine.name.startswith("shepard")
        assert space.kind_names()

    def test_build_rejects_bad_input_label(self):
        with pytest.raises(ValueError):
            JobSpec(app="stencil", input="garbage").build()

    def test_build_rejects_bad_gen_params(self):
        with pytest.raises(ValueError):
            JobSpec(app="stencil", gen_params={"bogus_knob": 3}).build()

    def test_label_mentions_app_and_machine(self):
        label = JobSpec(app="stencil", machine="lassen").label()
        assert "stencil" in label and "lassen" in label
