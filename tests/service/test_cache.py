"""The content-addressed result cache: byte-exact artifacts, atomic
publication, hit/miss accounting."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry, to_prometheus_text
from repro.service.cache import ResultCache

FP = "a" * 64
RESULT = b'{"best": 1}\n'


class TestLookup:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.lookup(FP) is None
        cache.put(FP, {"result.json": RESULT})
        assert cache.lookup(FP) is not None

    def test_read_returns_exact_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(
            FP, {"result.json": RESULT, "trace.json": b"[1, 2]\n"}
        )
        assert cache.read(FP, "result.json") == RESULT
        assert cache.read(FP, "trace.json") == b"[1, 2]\n"
        assert cache.read(FP, "metrics.txt") is None

    def test_put_requires_result(self, tmp_path):
        with pytest.raises(ValueError, match="result.json"):
            ResultCache(tmp_path).put(FP, {"trace.json": b"[]"})

    def test_first_writer_wins(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP, {"result.json": RESULT})
        cache.put(FP, {"result.json": b"other\n"})
        assert cache.read(FP, "result.json") == RESULT

    def test_entries_listing_skips_staging_dirs(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP, {"result.json": RESULT})
        (cache.cache_dir / ".tmp-leftover").mkdir()
        assert cache.fingerprints() == [FP]
        assert len(cache) == 1

    def test_persists_across_instances(self, tmp_path):
        ResultCache(tmp_path).put(FP, {"result.json": RESULT})
        assert ResultCache(tmp_path).contains(FP)


class TestCounters:
    def test_hit_miss_counters(self, tmp_path):
        metrics = MetricsRegistry()
        cache = ResultCache(tmp_path, metrics=metrics)
        cache.lookup(FP)
        cache.put(FP, {"result.json": RESULT})
        cache.lookup(FP)
        cache.lookup(FP)
        counters = metrics.as_dict()["counters"]
        assert counters["service.cache.misses"] == 1
        assert counters["service.cache.hits"] == 2
        assert counters["service.cache.stores"] == 1

    def test_contains_is_metrics_silent(self, tmp_path):
        metrics = MetricsRegistry()
        cache = ResultCache(tmp_path, metrics=metrics)
        cache.contains(FP)
        assert metrics.as_dict()["counters"] == {}

    def test_counters_export_as_prometheus(self, tmp_path):
        metrics = MetricsRegistry()
        ResultCache(tmp_path, metrics=metrics).lookup(FP)
        text = to_prometheus_text(metrics)
        assert "automap_service_cache_misses 1.0" in text
