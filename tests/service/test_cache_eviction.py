"""Cache size budgets: LRU eviction, purge, the class index, and the
entries/metadata views behind ``GET /cache`` and ``repro cache``."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.cache import ResultCache

RESULT = b'{"best": 1}\n'


def _fp(i: int) -> str:
    return f"{i:02d}" + "f" * 62


class TestSizeAccounting:
    def test_entry_and_total_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_fp(0), {"result.json": RESULT})
        cache.put(_fp(1), {"result.json": RESULT, "trace.json": b"x" * 100})
        assert cache.entry_bytes(_fp(1)) > cache.entry_bytes(_fp(0))
        assert cache.total_bytes() == (
            cache.entry_bytes(_fp(0)) + cache.entry_bytes(_fp(1))
        )

    def test_entries_lists_metadata(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(
            _fp(0),
            {"result.json": RESULT, "proof.json": b"{}\n"},
            class_key="ck",
        )
        (entry,) = cache.entries()
        assert entry["fingerprint"] == _fp(0)
        assert entry["class"] == "ck"
        assert entry["equivalent"] is True
        # metadata files never masquerade as artifacts
        assert entry["artifacts"] == ["proof.json", "result.json"]

    def test_max_bytes_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(tmp_path, max_bytes=0)


class TestEviction:
    def test_evict_removes_entry_and_class_marker(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_fp(0), {"result.json": RESULT}, class_key="ck")
        assert cache.candidates("ck") == [_fp(0)]
        assert cache.evict(_fp(0))
        assert not cache.contains(_fp(0))
        assert cache.candidates("ck") == []
        assert not cache.evict(_fp(0))  # already gone

    def test_eviction_counter(self, tmp_path):
        metrics = MetricsRegistry()
        cache = ResultCache(tmp_path, metrics=metrics)
        cache.put(_fp(0), {"result.json": RESULT})
        cache.evict(_fp(0))
        assert metrics.counter("service.cache.evictions").value == 1

    def test_purge_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(_fp(i), {"result.json": RESULT}, class_key="ck")
        assert cache.purge() == 3
        assert len(cache) == 0
        assert cache.candidates("ck") == []

    def test_lru_evicts_least_recently_used(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_fp(0), {"result.json": RESULT})
        # Budget: three entries fit, a fourth does not (sized from a
        # real entry, which also holds its .atime stamp).
        budget = 3 * cache.entry_bytes(_fp(0)) + 10
        cache.max_bytes = budget
        time.sleep(0.01)
        cache.put(_fp(1), {"result.json": RESULT})
        time.sleep(0.01)
        cache.put(_fp(2), {"result.json": RESULT})
        # Touch the oldest so entry 1 becomes the LRU victim.
        time.sleep(0.01)
        assert cache.lookup(_fp(0)) is not None
        time.sleep(0.01)
        cache.put(_fp(3), {"result.json": RESULT})
        assert cache.contains(_fp(0))
        assert not cache.contains(_fp(1))
        assert cache.contains(_fp(2))
        assert cache.contains(_fp(3))
        assert cache.total_bytes() <= budget

    def test_never_evicts_the_just_published_entry(self, tmp_path):
        # Budget below a single entry: everything else may go, but the
        # entry being published survives.
        cache = ResultCache(tmp_path, max_bytes=1)
        cache.put(_fp(0), {"result.json": RESULT})
        cache.put(_fp(1), {"result.json": RESULT})
        assert cache.contains(_fp(1))
        assert not cache.contains(_fp(0))


class TestClassIndex:
    def test_candidates_ordered_and_filtered(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_fp(1), {"result.json": RESULT}, class_key="ck")
        cache.put(_fp(0), {"result.json": RESULT}, class_key="ck")
        cache.put(_fp(2), {"result.json": RESULT}, class_key="other")
        assert cache.candidates("ck") == [_fp(0), _fp(1)]
        assert cache.candidates("missing") == []
        cache.evict(_fp(0))
        assert cache.candidates("ck") == [_fp(1)]

    def test_entry_class_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_fp(0), {"result.json": RESULT}, class_key="ck")
        cache.put(_fp(1), {"result.json": RESULT})
        assert cache.entry_class(_fp(0)) == "ck"
        assert cache.entry_class(_fp(1)) is None

    def test_reput_remarks_class(self, tmp_path):
        """First-writer-wins put still (re)indexes the class marker,
        e.g. after a marker was lost to a purge of the classes dir."""
        cache = ResultCache(tmp_path)
        cache.put(_fp(0), {"result.json": RESULT}, class_key="ck")
        (cache.classes_dir / "ck" / _fp(0)).unlink()
        cache.put(_fp(0), {"result.json": b"ignored\n"}, class_key="ck")
        assert cache.read(_fp(0), "result.json") == RESULT
        assert cache.candidates("ck") == [_fp(0)]


class TestConcurrentEviction:
    def test_readers_race_eviction_safely(self, tmp_path):
        """A reader concurrent with evict() sees the full bytes or a
        clean miss — never a torn entry."""
        cache = ResultCache(tmp_path)
        errors = []

        def reader():
            for _ in range(200):
                data = cache.read(_fp(0), "result.json")
                if data is not None and data != RESULT:
                    errors.append(data)

        cache.put(_fp(0), {"result.json": RESULT})
        thread = threading.Thread(target=reader)
        thread.start()
        for _ in range(50):
            cache.evict(_fp(0))
            cache.put(_fp(0), {"result.json": RESULT})
        thread.join()
        assert not errors
