"""The job store: atomic persistence, FIFO claiming, crash recovery."""

from __future__ import annotations

from repro.service.store import JOB_FILENAME, JobRecord, JobState, JobStore

SPEC = {"app": "stencil"}


class TestRecords:
    def test_create_assigns_sequential_ids(self, tmp_path):
        store = JobStore(tmp_path)
        ids = [store.create(SPEC, f"fp{i}").job_id for i in range(3)]
        assert ids == ["job-000001", "job-000002", "job-000003"]

    def test_roundtrip(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.create(SPEC, "fp", cache_hit=True)
        loaded = store.get(record.job_id)
        assert loaded == record
        assert loaded.cache_hit

    def test_get_unknown_returns_none(self, tmp_path):
        assert JobStore(tmp_path).get("job-999999") is None

    def test_update_persists(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.create(SPEC, "fp")
        store.update(record.with_(state=JobState.FAILED, error="boom"))
        loaded = store.get(record.job_id)
        assert loaded.state is JobState.FAILED
        assert loaded.error == "boom"

    def test_numbering_survives_restart(self, tmp_path):
        JobStore(tmp_path).create(SPEC, "fp")
        record = JobStore(tmp_path).create(SPEC, "fp2")
        assert record.job_id == "job-000002"

    def test_doc_format_guard(self, tmp_path):
        import pytest

        with pytest.raises(ValueError, match="job record format"):
            JobRecord.from_doc({"format": "nope"})


class TestClaiming:
    def test_claim_is_fifo(self, tmp_path):
        store = JobStore(tmp_path)
        first = store.create(SPEC, "a")
        store.create(SPEC, "b")
        claimed = store.claim_next()
        assert claimed.job_id == first.job_id
        assert claimed.state is JobState.RUNNING
        assert claimed.attempts == 1

    def test_claim_skips_terminal_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        done = store.create(SPEC, "a", state=JobState.DONE)
        queued = store.create(SPEC, "b")
        assert store.claim_next().job_id == queued.job_id
        assert store.get(done.job_id).state is JobState.DONE

    def test_claim_empty_returns_none(self, tmp_path):
        assert JobStore(tmp_path).claim_next() is None


class TestRecovery:
    def test_recover_requeues_running_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.create(SPEC, "a")
        store.claim_next()

        fresh = JobStore(tmp_path)  # simulated process restart
        recovered = fresh.recover_running()
        assert [r.job_id for r in recovered] == [record.job_id]
        assert fresh.get(record.job_id).state is JobState.SUBMITTED
        # The attempt counter survives, so the resumed claim counts up.
        assert fresh.claim_next().attempts == 2

    def test_recover_ignores_settled_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        store.create(SPEC, "a", state=JobState.DONE)
        store.create(SPEC, "b")
        assert JobStore(tmp_path).recover_running() == []

    def test_counts(self, tmp_path):
        store = JobStore(tmp_path)
        store.create(SPEC, "a", state=JobState.DONE)
        store.create(SPEC, "b")
        store.create(SPEC, "c")
        store.claim_next()
        assert store.counts() == {
            "submitted": 1,
            "running": 1,
            "done": 1,
            "failed": 0,
        }

    def test_job_json_always_parseable(self, tmp_path):
        """The atomic write contract: job.json is valid JSON after any
        sequence of updates."""
        import json

        store = JobStore(tmp_path)
        record = store.create(SPEC, "a")
        for state in (JobState.RUNNING, JobState.DONE):
            record = store.update(record.with_(state=state))
            path = store.job_dir(record.job_id) / JOB_FILENAME
            json.loads(path.read_text())
