"""Near-equivalent cache serving and multi-worker job execution.

The service drives the AM6xx prover on exact-fingerprint misses: a
submission that differs from a cached workload only in provable slack
(capacity above the footprint bound, a machine rename) is served with
zero simulations, ``cache_mode == "equiv"``, and a result document
byte-identical to what a fresh run would write (modulo nothing — the
pullback is checked against an actual fresh run)."""

from __future__ import annotations

import json
import threading
import time

from repro.machine import MACHINE_ZOO
from repro.service import JobState, JobStore, MappingService
from repro.util.units import GIB

BASE = {
    "app": "forkjoin",
    "gen_params": {"width": 2, "iterations": 2, "elems": 65536},
    "machine": "shepard",
    "max_suggestions": 8,
    "noise_sigma": 0.0,
    "seed": 3,
}


def _await(service, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = service.store.get(job_id)
        if record.state.terminal:
            return record
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish")


def _inflated_caps(extra=GIB):
    machine = MACHINE_ZOO["shepard"](1)
    return {
        "memory_capacity": {
            m.uid: m.capacity + extra for m in machine.memories
        }
    }


class TestEquivalentServing:
    def test_slack_submission_served_with_zero_simulations(self, tmp_path):
        service = MappingService(tmp_path / "a", poll_interval=0.01)
        service.start()
        try:
            first = service.submit(dict(BASE))
            done = _await(service, first.job_id)
            assert done.state is JobState.DONE
            assert done.simulations > 0

            spec = dict(BASE, machine_params=_inflated_caps())
            equiv = service.submit(spec)
            assert equiv.state is JobState.DONE
            assert equiv.cache_hit
            assert equiv.cache_mode == "equiv"
            assert equiv.simulations == 0
            served, _ = service.artifact(equiv.job_id, "report")
        finally:
            service.stop()

        # Byte-identity against a genuinely fresh run of the inflated
        # workload in a clean service root.
        fresh_service = MappingService(tmp_path / "b", poll_interval=0.01)
        fresh_service.start()
        try:
            fresh = service_record = fresh_service.submit(spec)
            service_record = _await(fresh_service, fresh.job_id)
            assert service_record.simulations > 0
            fresh_bytes, _ = fresh_service.artifact(fresh.job_id, "report")
        finally:
            fresh_service.stop()
        assert served == fresh_bytes

    def test_rename_served_with_pullback(self, tmp_path):
        service = MappingService(tmp_path / "s", poll_interval=0.01)
        service.start()
        try:
            first = service.submit(dict(BASE))
            _await(service, first.job_id)

            spec = dict(
                BASE, machine_params={"name": "shepard-renamed"}
            )
            equiv = service.submit(spec)
            assert equiv.cache_mode == "equiv"
            assert equiv.simulations == 0
            served, _ = service.artifact(equiv.job_id, "report")
            doc = json.loads(served)
            assert doc["machine"] == "shepard-renamed"
            assert doc["fingerprint"] == equiv.fingerprint
            # The proof log is published beside the served result.
            proof = json.loads(
                service.cache.read(equiv.fingerprint, "proof.json")
            )
            assert proof["equivalent"] is True
            assert proof["relabel"] == {"machine": "shepard-renamed"}
            assert proof["source"] == first.fingerprint
            assert (
                service.metrics.counter("service.cache.equiv_hits").value
                == 1
            )
        finally:
            service.stop()

    def test_inequivalent_submission_queues_normally(self, tmp_path):
        service = MappingService(tmp_path / "s", poll_interval=0.01)
        service.start()
        try:
            first = service.submit(dict(BASE))
            _await(service, first.job_id)
            # A different seed is a different workload: no proof, no
            # cache hit, a real run.
            other = service.submit(dict(BASE, seed=4))
            assert other.state is JobState.SUBMITTED
            assert not other.cache_hit
            done = _await(service, other.job_id)
            assert done.simulations > 0
        finally:
            service.stop()

    def test_cache_doc_lists_equiv_entries(self, tmp_path):
        service = MappingService(tmp_path / "s", poll_interval=0.01)
        service.start()
        try:
            first = service.submit(dict(BASE))
            _await(service, first.job_id)
            service.submit(dict(BASE, machine_params=_inflated_caps()))
            doc = service.cache_doc()
        finally:
            service.stop()
        assert len(doc["entries"]) == 2
        assert doc["total_bytes"] > 0
        assert doc["max_bytes"] is None
        by_fp = {e["fingerprint"]: e for e in doc["entries"]}
        assert by_fp[first.fingerprint]["equivalent"] is False
        assert sum(e["equivalent"] for e in doc["entries"]) == 1


class TestMultiWorker:
    def test_workers_never_double_claim(self, tmp_path):
        """Two claimer threads racing over a full queue partition it:
        every job claimed exactly once."""
        store = JobStore(tmp_path)
        for i in range(40):
            store.create({"i": i}, f"fp-{i}")
        claims = {0: [], 1: []}
        barrier = threading.Barrier(2)

        def claimer(slot):
            barrier.wait()
            while True:
                record = store.claim_next()
                if record is None:
                    return
                claims[slot].append(record.job_id)

        threads = [
            threading.Thread(target=claimer, args=(slot,))
            for slot in claims
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        claimed = claims[0] + claims[1]
        assert len(claimed) == 40
        assert len(set(claimed)) == 40  # no job claimed twice
        assert all(
            store.get(job_id).attempts == 1 for job_id in claimed
        )

    def test_two_worker_service_completes_distinct_jobs(self, tmp_path):
        service = MappingService(
            tmp_path / "s", poll_interval=0.01, workers=2
        )
        assert len(service.workers) == 2
        assert service.worker is service.workers[0]
        assert service.workers[0].name != service.workers[1].name
        service.start()
        try:
            records = [
                service.submit(dict(BASE, seed=seed))
                for seed in (10, 11, 12)
            ]
            finished = [_await(service, r.job_id) for r in records]
        finally:
            service.stop()
        for record in finished:
            assert record.state is JobState.DONE
            assert record.attempts == 1
            assert record.simulations > 0
