"""End-to-end mapping-as-a-service over real HTTP: submit, poll,
fetch artifacts, and hit the cache on resubmission."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import MappingService, make_server

SPEC = {"app": "stencil", "max_suggestions": 40, "checkpoint_every": 1}


@pytest.fixture
def service_url(tmp_path):
    service = MappingService(tmp_path / "state")
    server = make_server(service, port=0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    service.start()
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        service.stop()
        thread.join(5)


def _post(url, doc):
    request = urllib.request.Request(
        url,
        data=json.dumps(doc).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _get(url, raw=False):
    try:
        with urllib.request.urlopen(url, timeout=30) as reply:
            data = reply.read()
            return reply.status, data if raw else json.loads(data)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _await_done(url, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, doc = _get(f"{url}/jobs/{job_id}")
        assert status == 200
        if doc["state"] in ("done", "failed"):
            return doc
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish in {timeout}s")


class TestEndToEnd:
    def test_submit_poll_fetch_and_cache_hit(self, service_url):
        status, submitted = _post(f"{service_url}/jobs", SPEC)
        assert status == 201
        assert submitted["state"] == "submitted"
        assert not submitted["cache_hit"]

        done = _await_done(service_url, submitted["job_id"])
        assert done["state"] == "done"
        assert done["simulations"] > 0

        status, report = _get(
            f"{service_url}/jobs/{submitted['job_id']}/report", raw=True
        )
        assert status == 200
        doc = json.loads(report)
        assert doc["application"]
        assert doc["best_mapping"]
        assert doc["fingerprint"] == submitted["fingerprint"]

        status, trace = _get(
            f"{service_url}/jobs/{submitted['job_id']}/trace", raw=True
        )
        assert status == 200 and json.loads(trace)
        status, metrics = _get(
            f"{service_url}/jobs/{submitted['job_id']}/metrics", raw=True
        )
        assert status == 200 and b"automap_" in metrics

        # Resubmit the same workload with reordered keys and different
        # execution knobs: served from cache, zero simulations,
        # byte-identical report.
        resubmit = {
            "checkpoint_every": 5,
            "workers": 2,
            "max_suggestions": 40,
            "app": "stencil",
            "incremental": False,
        }
        status, second = _post(f"{service_url}/jobs", resubmit)
        assert status == 201
        assert second["state"] == "done"
        assert second["cache_hit"] is True
        assert second["simulations"] == 0
        assert second["fingerprint"] == submitted["fingerprint"]
        status, report2 = _get(
            f"{service_url}/jobs/{second['job_id']}/report", raw=True
        )
        assert status == 200
        assert report2 == report

    def test_jobs_listing(self, service_url):
        _post(f"{service_url}/jobs", SPEC)
        status, listing = _get(f"{service_url}/jobs")
        assert status == 200
        assert len(listing["jobs"]) == 1

    def test_metrics_track_cache_traffic(self, service_url):
        status, first = _post(f"{service_url}/jobs", SPEC)
        assert status == 201
        _await_done(service_url, first["job_id"])
        _post(f"{service_url}/jobs", SPEC)

        status, text = _get(f"{service_url}/metrics", raw=True)
        assert status == 200
        body = text.decode()
        assert "automap_service_cache_hits 1.0" in body
        assert "automap_service_cache_misses 1.0" in body
        assert "automap_service_jobs_submitted 2.0" in body

    def test_healthz(self, service_url):
        status, doc = _get(f"{service_url}/healthz")
        assert status == 200 and doc == {"status": "ok"}


class TestErrorPaths:
    def test_invalid_spec_is_400(self, service_url):
        status, doc = _post(f"{service_url}/jobs", {"app": "nope"})
        assert status == 400
        assert "unknown application" in doc["error"]

    def test_unknown_field_is_400(self, service_url):
        status, doc = _post(
            f"{service_url}/jobs", {"app": "stencil", "bogus": 1}
        )
        assert status == 400
        assert "bogus" in doc["error"]

    def test_malformed_json_is_400(self, service_url):
        request = urllib.request.Request(
            f"{service_url}/jobs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 400

    def test_unknown_job_is_404(self, service_url):
        status, doc = _get(f"{service_url}/jobs/job-424242")
        assert status == 404
        assert "no such job" in doc["error"]

    def test_report_before_done_is_409(self, tmp_path):
        # Worker never started: the job stays queued.
        service = MappingService(tmp_path / "state")
        record = service.submit(dict(SPEC))
        with pytest.raises(Exception) as info:
            service.artifact(record.job_id, "report")
        assert getattr(info.value, "status", None) == 409

    def test_unknown_endpoint_is_404(self, service_url):
        status, doc = _get(f"{service_url}/nope")
        assert status == 404
