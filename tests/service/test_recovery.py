"""Kill-and-restart recovery: a service killed mid-job finishes the job
after restart with a result byte-identical to an uninterrupted run."""

from __future__ import annotations

from repro.core import AutoMapDriver, OracleConfig
from repro.resilience.checkpoint import (
    CHECKPOINT_FILENAME,
    try_load_checkpoint,
)
from repro.runtime import SimConfig
from repro.service import JobState, MappingService
from repro.service.result import RESULT_FILENAME
from repro.service.spec import JobSpec

SPEC = {"app": "stencil", "max_suggestions": 60, "checkpoint_every": 1}


class _KillAfter:
    """Oracle observer standing in for SIGKILL mid-tune."""

    def __init__(self, limit: int) -> None:
        self.limit = limit

    def __call__(self, oracle) -> None:
        if oracle.evaluated >= self.limit:
            raise KeyboardInterrupt


def _run_to_completion(service: MappingService) -> None:
    """Drain the queue synchronously (no worker thread, no sleeps)."""
    while True:
        record = service.store.claim_next()
        if record is None:
            return
        finished = service.worker.execute(record)
        assert finished.state is JobState.DONE, finished.error


def _crash_mid_job(service: MappingService, job_id: str) -> None:
    """Run the claimed job the way the worker would, but die after a
    few evaluations — leaving ``job.json`` saying ``running`` and a
    mid-run checkpoint on disk, exactly the post-SIGKILL state."""
    spec = JobSpec.from_doc(service.store.get(job_id).spec_doc)
    _, graph, machine, space = spec.build()
    workdir = service.store.work_dir(job_id)
    workdir.mkdir(parents=True, exist_ok=True)
    driver = AutoMapDriver(
        graph,
        machine,
        algorithm=spec.algorithm,
        oracle_config=OracleConfig(max_suggestions=spec.max_suggestions),
        sim_config=SimConfig(
            noise_sigma=spec.noise_sigma,
            seed=spec.seed,
            spill=spec.spill,
            incremental=spec.incremental,
        ),
        space=space,
        seed=spec.seed,
        checkpoint_path=workdir / CHECKPOINT_FILENAME,
        checkpoint_every=spec.checkpoint_every,
        observers=[_KillAfter(3)],
    )
    try:
        driver.tune()
    except KeyboardInterrupt:
        pass
    assert (workdir / CHECKPOINT_FILENAME).exists()


class TestKillRestart:
    def test_restarted_service_resumes_bit_identically(self, tmp_path):
        # Reference: the same workload, uninterrupted, in its own root
        # (so nothing can come from a shared cache).
        reference = MappingService(tmp_path / "ref")
        ref_record = reference.submit(dict(SPEC))
        _run_to_completion(reference)
        ref_report = reference.artifact(ref_record.job_id, "report")[0]

        # Crash run: claim the job, die mid-tune, restart the service.
        crashed = MappingService(tmp_path / "crash")
        record = crashed.submit(dict(SPEC))
        assert crashed.store.claim_next().job_id == record.job_id
        _crash_mid_job(crashed, record.job_id)

        restarted = MappingService(tmp_path / "crash")
        requeued = restarted.store.get(record.job_id)
        assert requeued.state is JobState.SUBMITTED  # recovered
        _run_to_completion(restarted)

        finished = restarted.store.get(record.job_id)
        assert finished.state is JobState.DONE
        assert finished.attempts == 2
        assert not finished.cache_hit  # computed, not served from cache
        assert (
            restarted.artifact(record.job_id, "report")[0] == ref_report
        )
        # Both roots cached the same fingerprint with identical bytes.
        assert restarted.cache.read(
            finished.fingerprint, RESULT_FILENAME
        ) == reference.cache.read(ref_record.fingerprint, RESULT_FILENAME)

    def test_worker_resumes_via_checkpoint(self, tmp_path):
        """The resumed run replays the ledger instead of restarting:
        visible as a loadable mid-run checkpoint before the rerun and
        the ``service.jobs.resumed`` counter after."""
        service = MappingService(tmp_path / "state")
        record = service.submit(dict(SPEC))
        service.store.claim_next()
        _crash_mid_job(service, record.job_id)

        checkpoint = try_load_checkpoint(
            service.store.work_dir(record.job_id) / CHECKPOINT_FILENAME
        )
        assert checkpoint is not None
        assert checkpoint.entries  # there is real progress to replay

        restarted = MappingService(tmp_path / "state")
        _run_to_completion(restarted)
        counters = restarted.metrics.as_dict()["counters"]
        assert counters["service.jobs.resumed"] == 1
        assert restarted.store.get(record.job_id).state is JobState.DONE

    def test_crash_before_any_checkpoint_restarts_clean(self, tmp_path):
        """A job killed before its first snapshot simply restarts —
        try_load_checkpoint reports nothing to resume."""
        service = MappingService(tmp_path / "state")
        record = service.submit(dict(SPEC))
        service.store.claim_next()  # claimed, then "killed" immediately

        assert (
            try_load_checkpoint(
                service.store.work_dir(record.job_id) / CHECKPOINT_FILENAME
            )
            is None
        )
        restarted = MappingService(tmp_path / "state")
        _run_to_completion(restarted)
        finished = restarted.store.get(record.job_id)
        assert finished.state is JobState.DONE
        assert finished.attempts == 2
