"""The cache-key contract: canonically-equivalent workloads hash to the
same fingerprint, inequivalent ones do not."""

from __future__ import annotations

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Canonicalizer
from repro.analysis.symmetry import MachineSymmetry
from repro.machine import shepard, single_node
from repro.mapping import SearchSpace
from repro.mapping.io import mapping_to_doc
from repro.service.fingerprint import (
    spec_fingerprint,
    workload_fingerprint,
)
from repro.service.spec import JobSpec
from repro.taskgraph import ArgSlot, GraphBuilder, Privilege
from repro.util.rng import RngStream


def _graph(kinds: int = 2, name: str = "fp"):
    b = GraphBuilder(name)
    data = b.collection("data", nbytes=1 << 20)
    for i in range(kinds):
        kind = b.task_kind(
            f"k{i}", slots=[ArgSlot("d", Privilege.READ_WRITE)]
        )
        b.launch(kind, [data], size=4, flops=1e6)
    return b.build()


_CONFIG = {"algorithm": "ccd", "seed": 0, "max_suggestions": 100}


class TestStartMappingEquivalence:
    """Equivalent start mappings — same fingerprint."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_canonical_fold_collapses_fingerprint(self, seed):
        """A start mapping and its canonicalized form (dead distribute
        bits and dead memory coordinates folded) are one workload."""
        graph, machine = _graph(), shepard(2)
        mapping = SearchSpace(graph, machine).random_mapping(
            RngStream(seed)
        )
        folded = Canonicalizer(graph, machine).canonical(mapping)
        fps = {
            workload_fingerprint(
                graph, machine, _CONFIG, mapping_to_doc(m)
            )
            for m in (mapping, folded)
        }
        assert len(fps) == 1

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_machine_relabeling_collapses_fingerprint(self, seed):
        """Relabeling kinds across a verified machine automorphism
        cannot split the cache."""
        graph, machine = _graph(), shepard(2)
        mapping = SearchSpace(graph, machine).random_mapping(
            RngStream(seed)
        )
        base = workload_fingerprint(
            graph, machine, _CONFIG, mapping_to_doc(mapping)
        )
        for rel in MachineSymmetry(graph, machine).automorphisms():
            relabeled = rel.apply(mapping)
            assert (
                workload_fingerprint(
                    graph, machine, _CONFIG, mapping_to_doc(relabeled)
                )
                == base
            )

    def test_dead_distribute_bit_folded(self):
        """On a single node every distribute bit is provably dead:
        flipping one must not change the fingerprint."""
        graph, machine = _graph(), single_node(cpus=4, gpus=1)
        mapping = SearchSpace(graph, machine).default_mapping()
        doc = mapping_to_doc(mapping)
        flipped = json.loads(json.dumps(doc))
        flipped["k0"]["distribute"] = not flipped["k0"]["distribute"]
        assert workload_fingerprint(
            graph, machine, _CONFIG, doc
        ) == workload_fingerprint(graph, machine, _CONFIG, flipped)

    def test_live_decision_changes_fingerprint(self):
        """A semantically different start (different processor kind)
        is a different workload."""
        graph, machine = _graph(), shepard(2)
        space = SearchSpace(graph, machine)
        docs = [
            mapping_to_doc(
                space.default_mapping().with_proc("k0", proc)
            )
            for proc in space.searched_proc_options("k0")
        ]
        fps = {
            workload_fingerprint(graph, machine, _CONFIG, d)
            for d in docs
        }
        assert len(fps) == len(docs)


class TestSubmissionNormalization:
    """Textual differences in the submitted document never split the
    cache; semantic differences always do."""

    def test_reordered_keys_and_explicit_defaults_hash_equal(self):
        terse = {"app": "stencil", "machine": "shepard"}
        explicit = JobSpec.from_doc(terse).to_doc()
        shuffled_items = list(explicit.items())
        random.Random(7).shuffle(shuffled_items)
        shuffled = dict(shuffled_items)
        fps = {
            spec_fingerprint(JobSpec.from_doc(d))
            for d in (terse, explicit, shuffled)
        }
        assert len(fps) == 1

    def test_execution_knobs_do_not_enter_fingerprint(self):
        base = JobSpec(app="stencil")
        for changes in (
            {"workers": 4},
            {"incremental": False},
            {"checkpoint_every": 1},
        ):
            assert spec_fingerprint(
                base.with_(**changes)
            ) == spec_fingerprint(base)

    def test_semantic_knobs_enter_fingerprint(self):
        base = JobSpec(app="stencil")
        for changes in (
            {"seed": 1},
            {"algorithm": "random"},
            {"max_suggestions": 99},
            {"noise_sigma": 0.1},
            {"spill": False},
            {"static_prune": False},
            {"bound_prune": False},
            {"machine": "lassen"},
            {"nodes": 2},
            {"input": "500x500"},
        ):
            assert spec_fingerprint(
                base.with_(**changes)
            ) != spec_fingerprint(base)

    def test_different_graphs_hash_differently(self):
        machine = shepard(1)
        fps = {
            workload_fingerprint(_graph(kinds=k), machine, _CONFIG)
            for k in (1, 2, 3)
        }
        assert len(fps) == 3

    def test_fingerprint_is_stable_across_calls(self):
        spec = JobSpec(app="stencil", input="500x500")
        assert spec_fingerprint(spec) == spec_fingerprint(spec)
