"""The stateless tuning engine: one prepared request can be run any
number of times, always reproducing the same report."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import TuneRequest, TuningEngine
from repro.runtime import SimConfig


def _request(graph, machine):
    return TuneRequest(
        graph=graph,
        machine=machine,
        algorithm="ccd",
        sim_config=SimConfig(noise_sigma=0.02, seed=9),
    )


def _report_key(report):
    """The deterministic-contract fields, as one comparable value."""
    return (
        report.best_mapping.key(),
        report.best_mean,
        report.best_stddev,
        report.search.trace,
        report.suggested,
        report.evaluated,
        report.invalid_suggestions,
        report.failed_evaluations,
        report.search_seconds,
        [(m.key(), a, b, c) for m, a, b, c in report.finalists],
    )


class TestStatelessness:
    def test_request_is_immutable(self, diamond_graph, mini_machine):
        request = _request(diamond_graph, mini_machine)
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.seed = 1

    def test_with_returns_new_request(self, diamond_graph, mini_machine):
        request = _request(diamond_graph, mini_machine)
        changed = request.with_(seed=3)
        assert changed.seed == 3
        assert request.seed == 0

    def test_rerun_of_prepared_request_is_identical(
        self, diamond_graph, mini_machine
    ):
        """run() keeps all mutable state in locals: the same prepared
        workload replayed on the same engine yields a bit-identical
        report — the property the service's worker relies on when a
        recovered job re-runs."""
        engine = TuningEngine()
        prepared = engine.prepare(_request(diamond_graph, mini_machine))
        first = engine.run(prepared)
        second = engine.run(prepared)
        assert _report_key(first) == _report_key(second)

    def test_independent_prepares_are_identical(
        self, diamond_graph, mini_machine
    ):
        request = _request(diamond_graph, mini_machine)
        engine = TuningEngine()
        first = engine.run(engine.prepare(request))
        second = engine.run(engine.prepare(request))
        assert _report_key(first) == _report_key(second)

    def test_one_engine_serves_distinct_workloads(
        self, diamond_graph, mini_machine, shepard1
    ):
        """Engines hold no per-workload state, so interleaving two
        different workloads cannot cross-contaminate either result."""
        engine = TuningEngine()
        a1 = engine.run(
            engine.prepare(_request(diamond_graph, mini_machine))
        )
        b1 = engine.run(engine.prepare(_request(diamond_graph, shepard1)))
        a2 = engine.run(
            engine.prepare(_request(diamond_graph, mini_machine))
        )
        assert _report_key(a1) == _report_key(a2)
        assert a1.machine_name != b1.machine_name

    def test_tune_is_prepare_plus_run(self, diamond_graph, mini_machine):
        engine = TuningEngine()
        request = _request(diamond_graph, mini_machine)
        assert _report_key(engine.tune(request)) == _report_key(
            engine.run(engine.prepare(request))
        )

    def test_measure_on_prepared(self, diamond_graph, mini_machine):
        engine = TuningEngine()
        prepared = engine.prepare(_request(diamond_graph, mini_machine))
        mapping = prepared.space.default_mapping()
        assert engine.measure(prepared, mapping, runs=5) > 0
