"""Integration tests for §5.3: CCD vs CD vs the generic ensemble."""

import pytest

from repro.apps import PennantApp
from repro.core import AutoMapDriver, OracleConfig
from repro.machine import shepard
from repro.runtime import SimConfig


@pytest.fixture(scope="module")
def reports():
    app = PennantApp(zx=320, zy=90)
    machine = shepard(1)
    graph = app.graph(machine)
    out = {}
    for algo in ("ccd", "cd", "opentuner"):
        driver = AutoMapDriver(
            graph,
            machine,
            algorithm=algo,
            oracle_config=OracleConfig(max_suggestions=4000),
            sim_config=SimConfig(noise_sigma=0.03, seed=23, spill=True),
            # §5.3 characterizes the searches as the paper ran them —
            # every candidate simulated.  Bound pruning skips provably
            # dominated simulations and so lowers evaluation_fraction.
            bound_prune=False,
        )
        out[algo] = driver.tune()
    return out


class TestSearchAlgorithmComparison:
    def test_ccd_at_least_as_good(self, reports):
        assert reports["ccd"].best_mean <= reports["cd"].best_mean * 1.02
        assert (
            reports["ccd"].best_mean
            <= reports["opentuner"].best_mean * 1.02
        )

    def test_suggestion_ordering(self, reports):
        """§5.3: OpenTuner suggests orders of magnitude more than CCD,
        which suggests more than CD."""
        assert reports["cd"].suggested < reports["ccd"].suggested
        assert reports["ccd"].suggested < reports["opentuner"].suggested

    def test_evaluation_fractions(self, reports):
        """§5.3: CCD and CD spend ~99% of search time evaluating; the
        generic tuner far less (13-45% in the paper)."""
        assert reports["ccd"].evaluation_fraction > 0.9
        assert reports["cd"].evaluation_fraction > 0.9
        assert (
            reports["opentuner"].evaluation_fraction
            < reports["ccd"].evaluation_fraction
        )

    def test_dedup_gap(self, reports):
        """Suggested > evaluated for every algorithm (repeats/invalid)."""
        for algo, report in reports.items():
            assert report.suggested >= report.evaluated, algo

    def test_traces_monotone(self, reports):
        for report in reports.values():
            bests = [p.best_performance for p in report.search.trace]
            assert bests == sorted(bests, reverse=True)
