"""Acceptance tests for the static pre-simulation pruning layer.

On a memory-constrained Figure-8-style search (Pennant sized ~1% past
the frame buffer), static pruning must cut the simulations the search
pays by at least 20% while finding the *identical* best mapping — and
stay bit-identical across worker counts.
"""

from __future__ import annotations

import pytest

from repro.apps import PennantApp
from repro.core import AutoMapDriver, OracleConfig
from repro.machine import shepard
from repro.runtime import SimConfig

from tests.integration.test_memory_constrained import max_fitting_zy


@pytest.fixture(scope="module")
def machine():
    return shepard(1)


@pytest.fixture(scope="module")
def graph_and_space(machine):
    # ~5% past the all-framebuffer limit: tight enough that many
    # framebuffer placements are provably dead, loose enough that the
    # coordinate descent can still escape the failing default.
    zy = int(max_fitting_zy(machine) * 1.05)
    app = PennantApp(320, zy, iterations=1)
    return app.graph(machine), app.space(machine)


def _tune(graph, space, machine, static_prune, workers=1):
    driver = AutoMapDriver(
        graph,
        machine,
        algorithm="cd",
        oracle_config=OracleConfig(max_suggestions=3000),
        sim_config=SimConfig(noise_sigma=0.03, seed=31, spill=False),
        space=space,
        workers=workers,
        static_prune=static_prune,
        # This suite measures the static-pruning layer in isolation;
        # best-bound-first ordering would dodge most of the dead
        # candidates before the pruner ever sees them.
        bound_order=False,
    )
    return driver.tune()


@pytest.fixture(scope="module")
def reports(graph_and_space, machine):
    graph, space = graph_and_space
    pruned = _tune(graph, space, machine, static_prune=True)
    plain = _tune(graph, space, machine, static_prune=False)
    return pruned, plain


def test_static_pruning_cuts_simulations_at_least_20pct(reports):
    pruned, plain = reports
    assert pruned.static_oom_pruned > 0
    assert plain.static_oom_pruned == 0
    assert pruned.simulations <= 0.8 * plain.simulations, (
        f"static pruning saved too little: {pruned.simulations} vs "
        f"{plain.simulations} simulations"
    )


def test_static_pruning_finds_identical_best_mapping(reports):
    pruned, plain = reports
    assert pruned.best_mapping.key() == plain.best_mapping.key()
    assert pruned.best_mean == plain.best_mean
    assert pruned.best_stddev == plain.best_stddev
    # Every failed evaluation the plain search paid was either proven
    # statically or never enumerated by the pruned search.
    assert pruned.failed_evaluations <= plain.failed_evaluations


def test_static_pruning_bit_identical_across_workers(
    graph_and_space, machine, reports
):
    graph, space = graph_and_space
    serial, _plain = reports
    parallel = _tune(
        graph, space, machine, static_prune=True, workers=2
    )
    assert parallel.best_mapping.key() == serial.best_mapping.key()
    assert parallel.best_mean == serial.best_mean
    assert parallel.best_stddev == serial.best_stddev
    assert parallel.suggested == serial.suggested
    assert parallel.evaluated == serial.evaluated
    assert parallel.static_oom_pruned == serial.static_oom_pruned
    assert parallel.canonical_folds == serial.canonical_folds
    assert [f[1] for f in parallel.finalists] == [
        f[1] for f in serial.finalists
    ]
