"""Integration tests: full AutoMap runs on the benchmark applications."""

import pytest

from repro.apps import CircuitApp, HTRApp, MaestroApp, PennantApp, StencilApp
from repro.core import AutoMapDriver, AutoMapSession, OracleConfig
from repro.machine import lassen, shepard
from repro.machine.kinds import ProcKind
from repro.runtime import SimConfig


def tune(app, machine, algorithm="ccd", metric=None, **oracle_kwargs):
    driver = AutoMapDriver(
        app.graph(machine),
        machine,
        algorithm=algorithm,
        oracle_config=OracleConfig(
            max_suggestions=8000, metric=metric, **oracle_kwargs
        ),
        sim_config=SimConfig(noise_sigma=0.03, seed=17, spill=True),
        space=app.space(machine),
    )
    return driver, driver.tune()


class TestAutoMapBeatsOrMatchesDefault:
    """§5 headline: AutoMap finds mappings at least as fast as the
    default mapper on every application."""

    @pytest.mark.parametrize(
        "app",
        [
            CircuitApp(nodes=400, wires=1600),
            StencilApp(nx=700, ny=700),
            PennantApp(zx=320, zy=90),
            HTRApp(x=8, y=8, z=9),
        ],
        ids=lambda a: a.name,
    )
    def test_vs_default(self, app):
        machine = shepard(1)
        driver, report = tune(app, machine)
        default_mean = driver.measure(app.default_mapping(machine))
        assert report.best_mean <= default_mean * 1.02

    def test_small_inputs_move_work_to_cpu(self):
        """Small inputs are overhead-bound: the best mapping places work
        on CPUs (Figures 6c/6d discussion)."""
        machine = shepard(1)
        _, report = tune(PennantApp(zx=320, zy=90), machine)
        assert report.best_mapping is not None
        assert report.best_mapping.count_proc(ProcKind.CPU) > 0

    def test_large_inputs_stay_on_gpu(self):
        machine = shepard(1)
        _, report = tune(StencilApp(nx=5000, ny=5000), machine)
        assert report.best_mapping is not None
        gpu_kinds = report.best_mapping.count_proc(ProcKind.GPU)
        assert gpu_kinds == len(report.best_mapping)


class TestCustomMapperComparison:
    def test_automap_at_least_matches_custom(self):
        machine = shepard(1)
        app = CircuitApp(nodes=200, wires=800)
        driver, report = tune(app, machine)
        custom_mean = driver.measure(app.custom_mapping(machine))
        assert report.best_mean <= custom_mean * 1.02


class TestMaestroEndToEnd:
    def test_automap_beats_both_strategies(self):
        machine = lassen(1)
        app = MaestroApp(lf_count=8, lf_res=32, hf_res=96)
        driver, report = tune(
            app, machine, metric=MaestroApp.hf_metric
        )
        cpu = MaestroApp.hf_metric(
            driver.simulator.run(app.strategy_cpu_system(machine)).report
        )
        gpu = MaestroApp.hf_metric(
            driver.simulator.run(app.strategy_gpu_zero_copy(machine)).report
        )
        assert report.best_mean <= min(cpu, gpu) * 1.05

    def test_hf_mapping_untouched(self):
        machine = lassen(1)
        app = MaestroApp(lf_count=4, lf_res=16, hf_res=64)
        _, report = tune(app, machine, metric=MaestroApp.hf_metric)
        fixed = app.fixed_hf_decisions()
        for name, decision in fixed.items():
            assert report.best_mapping.decision(name) == decision


class TestSessionOnApp:
    def test_session_quickstart_flow(self, tmp_path):
        machine = shepard(1)
        app = StencilApp(nx=500, ny=500)
        session = AutoMapSession(
            app.graph(machine),
            machine,
            workdir=tmp_path / "stencil",
            oracle_config=OracleConfig(max_suggestions=4000),
            sim_config=SimConfig(noise_sigma=0.03, seed=5, spill=True),
        )
        report = session.tune()
        assert report.best_mapping is not None
        assert (tmp_path / "stencil" / "search_space.json").exists()
