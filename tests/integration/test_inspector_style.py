"""Integration test for the inspector-executor style of use (§6).

The paper notes AutoMap "could be used in an inspector-executor style,
where AutoMap is run on-line during an initial portion of a production
run to select a fast mapping for the remainder".  This test exercises
that pattern with the public API: a short time-limited search (the
inspector) followed by executing the remainder under the selected
mapping, and checks the combined run beats staying on the default.
"""


from repro.apps import StencilApp
from repro.core import AutoMapDriver, OracleConfig
from repro.machine import shepard
from repro.runtime import SimConfig


class TestInspectorExecutor:
    def test_time_limited_search_pays_off(self):
        machine = shepard(1)
        app = StencilApp(nx=800, ny=800)
        graph = app.graph(machine)
        driver = AutoMapDriver(
            graph,
            machine,
            algorithm="ccd",
            # Inspector phase: a tight simulated-time budget (§3.3:
            # "the search can be time-limited if desired").
            oracle_config=OracleConfig(max_sim_seconds=0.5),
            sim_config=SimConfig(noise_sigma=0.03, seed=41, spill=True),
        )
        default = driver.space.default_mapping()
        per_iteration_default = driver.simulator.run(default).makespan

        report = driver.tune(start=default)
        per_iteration_best = driver.simulator.run(
            report.best_mapping
        ).makespan

        # The search honoured its budget...
        assert report.search_seconds <= 0.5 * 1.5
        # ...and still found a mapping at least as good as the default.
        assert per_iteration_best <= per_iteration_default

        # Executor phase arithmetic: amortised over a long production
        # run, inspector cost + tuned iterations beat the default.
        production_iterations = 10_000
        tuned_total = (
            report.search_seconds
            + production_iterations * per_iteration_best
        )
        default_total = production_iterations * per_iteration_default
        assert tuned_total < default_total

    def test_budget_zero_returns_start(self):
        machine = shepard(1)
        app = StencilApp(nx=500, ny=500)
        driver = AutoMapDriver(
            app.graph(machine),
            machine,
            algorithm="ccd",
            oracle_config=OracleConfig(max_sim_seconds=1e-9),
            sim_config=SimConfig(noise_sigma=0.03, seed=41, spill=True),
        )
        report = driver.tune()
        # With no budget, the only measured mapping is the start.
        assert report.evaluated <= 1
        assert report.best_mapping is not None
