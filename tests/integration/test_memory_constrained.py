"""Integration tests for §5.2: memory-constrained mappings (Figure 8)."""

import pytest

from repro.apps import PennantApp
from repro.core import AutoMapDriver, OracleConfig
from repro.machine import shepard
from repro.machine.kinds import MemKind
from repro.runtime import SimConfig
from repro.runtime.memory import MemoryPlanner, OOMError


def max_fitting_zy(machine, zx=320, lo=1000, hi=500_000):
    """Largest zy whose all-Frame-Buffer mapping fits (bisection)."""
    def fits(zy):
        app = PennantApp(zx, zy, iterations=1)
        graph = app.graph(machine)
        planner = MemoryPlanner(graph, machine)
        try:
            planner.ensure_fits(app.space(machine).default_mapping())
            return True
        except OOMError:
            return False

    while lo < hi:
        mid = (lo + hi + 1) // 2
        if fits(mid):
            lo = mid
        else:
            hi = mid - 1
    return lo


@pytest.fixture(scope="module")
def machine():
    return shepard(1)


@pytest.fixture(scope="module")
def max_zy(machine):
    return max_fitting_zy(machine)


class TestMemoryConstrained:
    def test_oversized_default_fails(self, machine, max_zy):
        app = PennantApp(320, int(max_zy * 1.013), iterations=1)
        graph = app.graph(machine)
        planner = MemoryPlanner(graph, machine)
        with pytest.raises(OOMError):
            planner.ensure_fits(app.space(machine).default_mapping())

    def test_all_zero_copy_valid_but_slow(self, machine, max_zy):
        app = PennantApp(320, int(max_zy * 1.013), iterations=1)
        graph = app.graph(machine)
        space = app.space(machine)
        zc = space.default_mapping()
        for kind in zc.kind_names():
            for i in range(zc.decision(kind).num_slots):
                zc = zc.with_mem(kind, i, MemKind.ZERO_COPY)
        planner = MemoryPlanner(graph, machine)
        planner.ensure_fits(zc)  # everything fits in the 60 GB pool

    def test_automap_beats_all_zero_copy_4x(self, machine, max_zy):
        """Figure 8: AutoMap >= 4x faster than GPU + all-Zero-Copy."""
        app = PennantApp(320, int(max_zy * 1.013), iterations=1)
        graph = app.graph(machine)
        space = app.space(machine)
        driver = AutoMapDriver(
            graph,
            machine,
            algorithm="ccd",
            oracle_config=OracleConfig(max_suggestions=6000),
            sim_config=SimConfig(noise_sigma=0.03, seed=31, spill=False),
            space=space,
        )
        zc = space.default_mapping()
        for kind in zc.kind_names():
            for i in range(zc.decision(kind).num_slots):
                zc = zc.with_mem(kind, i, MemKind.ZERO_COPY)
        t_zc = driver.measure(zc)
        report = driver.tune(start=zc)
        assert report.best_mean * 4 < t_zc
        # The discovered mapping demotes a subset of slots out of FB.
        non_fb = report.best_mapping.count_mem(
            MemKind.ZERO_COPY
        ) + report.best_mapping.count_mem(MemKind.SYSTEM)
        assert non_fb > 0

    def test_search_skips_oom_mappings(self, machine, max_zy):
        """§5.2: the search detects OOM and moves on."""
        app = PennantApp(320, int(max_zy * 1.013), iterations=1)
        graph = app.graph(machine)
        driver = AutoMapDriver(
            graph,
            machine,
            algorithm="cd",
            oracle_config=OracleConfig(max_suggestions=3000),
            sim_config=SimConfig(noise_sigma=0.03, seed=31, spill=False),
        )
        # Start from the (failing) default explicitly: the driver's
        # bound-guided seed would otherwise sidestep the OOM region this
        # test exists to exercise.
        report = driver.tune(start=driver.space.default_mapping())
        assert report.failed_evaluations > 0
        assert report.best_mapping is not None
        assert report.best_mean > 0
