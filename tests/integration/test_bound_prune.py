"""Bound-based pruning is result-preserving — the acceptance criterion.

A bound-pruned tune must return the byte-identical best mapping, best
statistics, search trajectory, and finalists as the same tune with
``bound_prune=False``, while performing strictly fewer simulations on
at least two of the four stencil/circuit x shepard/lassen configs (in
practice: on all of them).  Pruning only skips candidates whose static
lower bound proves they cannot beat the incumbent, so the searches
take the same trajectory; the pruned run simply does not pay for the
doomed simulations.
"""

from __future__ import annotations

import pytest

from repro.apps import make_app
from repro.core import AutoMapDriver, OracleConfig
from repro.machine import lassen, shepard
from repro.runtime import SimConfig

SEED = 11

#: (application, machine factory, algorithm) — cd and ccd both appear
#: on both machine models.
CONFIGS = [
    ("stencil", shepard, "cd"),
    ("stencil", lassen, "ccd"),
    ("circuit", shepard, "ccd"),
    ("circuit", lassen, "cd"),
]


def _tune(app_name, machine_factory, algorithm, bound_prune):
    machine = machine_factory(2)
    app = make_app(app_name)
    driver = AutoMapDriver(
        app.graph(machine),
        machine,
        algorithm=algorithm,
        oracle_config=OracleConfig(max_suggestions=600),
        sim_config=SimConfig(noise_sigma=0.04, seed=SEED, spill=True),
        space=app.space(machine),
        seed=SEED,
        bound_prune=bound_prune,
    )
    return driver.tune()


def _improvements(report):
    """The distinct best-so-far values, in order of discovery."""
    bests = []
    for point in report.search.trace:
        if not bests or point.best_performance != bests[-1]:
            bests.append(point.best_performance)
    return bests


@pytest.fixture(scope="module")
def report_pairs():
    return {
        (app, factory.__name__, algo): (
            _tune(app, factory, algo, True),
            _tune(app, factory, algo, False),
        )
        for app, factory, algo in CONFIGS
    }


class TestBoundPruneAcceptance:
    def test_results_identical(self, report_pairs):
        for config, (pruned, full) in report_pairs.items():
            assert pruned.best_mapping.key() == full.best_mapping.key(), (
                config
            )
            assert pruned.best_mean == full.best_mean, config
            assert pruned.best_stddev == full.best_stddev, config
            assert pruned.suggested == full.suggested, config
            assert pruned.invalid_suggestions == full.invalid_suggestions
            # The trace logs one point per *simulated* evaluation, so
            # the pruned run's is shorter — but the sequence of
            # incumbent improvements must match exactly.
            assert _improvements(pruned) == _improvements(full), config
            assert [
                (m.key(), mean, stddev, count)
                for m, mean, stddev, count in pruned.finalists
            ] == [
                (m.key(), mean, stddev, count)
                for m, mean, stddev, count in full.finalists
            ], config

    def test_strictly_fewer_simulations(self, report_pairs):
        fewer = sum(
            pruned.simulations < full.simulations
            for pruned, full in report_pairs.values()
        )
        for config, (pruned, full) in report_pairs.items():
            assert pruned.simulations <= full.simulations, config
        assert fewer >= 2, "pruning must save simulations somewhere"

    def test_prunes_reported(self, report_pairs):
        total = sum(p.bound_pruned for p, _ in report_pairs.values())
        assert total > 0
        for config, (pruned, full) in report_pairs.items():
            assert full.bound_pruned == 0, config
            assert pruned.bound_pruned >= 0, config
            # Accounting: every suggestion is evaluated, folded,
            # rejected, failed, or bound-pruned — never dropped.
            assert pruned.evaluated <= full.evaluated, config

    def test_disabled_flag_reaches_report(self, report_pairs):
        for pruned, full in report_pairs.values():
            assert full.bound_settled == 0
            assert "bound pruning" not in full.describe()
            if pruned.bound_pruned:
                assert "bound pruning" in pruned.describe()
