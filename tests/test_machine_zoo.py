"""The machine zoo: Helix mixed cluster, mirrored/lopsided nodes.

Three load-bearing properties: the Helix model reproduces the 4/8/12
A100/L4/T4 composition with heterogeneity expressed *inside* the GPU
kind; the mirrored machine has exactly the cpu<->gpu automorphism (the
symmetry-folding stress case); and the lopsided machine — one GPU 25%
faster — defeats that fold.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.analysis.symmetry import MachineSymmetry
from repro.machine import (
    MACHINE_ZOO,
    helix,
    heterogeneous_cluster,
    lopsided_node,
    mirrored_node,
)
from repro.machine.builders import (
    HELIX_A100_NODE,
    HELIX_L4_NODE,
    HELIX_T4_NODE,
)
from repro.machine.kinds import MemKind, ProcKind
from repro.util.units import GIB

from tests.conftest import build_diamond_graph


class TestHelix:
    def test_full_cluster_composition(self):
        machine = helix(24)
        assert machine.num_nodes == 24
        gpus = machine.processors_of_kind(ProcKind.GPU)
        assert len(gpus) == 24
        mix = Counter(p.throughput for p in gpus)
        assert mix[HELIX_A100_NODE.gpu_throughput] == 4
        assert mix[HELIX_L4_NODE.gpu_throughput] == 8
        assert mix[HELIX_T4_NODE.gpu_throughput] == 12

    def test_framebuffers_match_node_types(self):
        machine = helix(6)
        fbs = sorted(
            m.capacity
            for m in machine.memories_of_kind(MemKind.FRAMEBUFFER)
        )
        assert fbs == [16 * GIB] * 3 + [24 * GIB] * 2 + [40 * GIB]

    def test_prefix_sizes_stay_mixed(self):
        assert helix(1).num_nodes == 1
        six = helix(6)
        mix = Counter(
            p.throughput for p in six.processors_of_kind(ProcKind.GPU)
        )
        assert mix[HELIX_A100_NODE.gpu_throughput] == 1
        assert mix[HELIX_L4_NODE.gpu_throughput] == 2
        assert mix[HELIX_T4_NODE.gpu_throughput] == 3

    def test_heterogeneity_does_not_fake_symmetry(self):
        assert MachineSymmetry(build_diamond_graph(), helix(6)).is_trivial()

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            helix(0)
        with pytest.raises(ValueError):
            heterogeneous_cluster("empty", [])


class TestMirroredAndLopsided:
    @pytest.mark.parametrize("pairs", [1, 2, 3])
    def test_mirror_automorphism(self, pairs):
        sym = MachineSymmetry(build_diamond_graph(), mirrored_node(pairs))
        assert [rel.describe() for rel in sym.automorphisms()] == [
            "cpu->gpu, gpu->cpu, system->framebuffer, framebuffer->system"
        ]

    @pytest.mark.parametrize("pairs", [1, 2, 3])
    def test_lopsided_defeats_folding(self, pairs):
        sym = MachineSymmetry(build_diamond_graph(), lopsided_node(pairs))
        assert sym.is_trivial()

    def test_lopsided_differs_only_in_one_throughput(self):
        a, b = mirrored_node(2), lopsided_node(2)
        diff = [
            (pa.uid, pa.throughput, pb.throughput)
            for pa, pb in zip(a.processors, b.processors)
            if pa.throughput != pb.throughput
        ]
        assert len(diff) == 1
        assert diff[0][0].startswith("gpu")

    def test_pair_count_validated(self):
        with pytest.raises(ValueError):
            mirrored_node(0)


class TestZooRegistry:
    def test_all_factories_build(self):
        for name, factory in MACHINE_ZOO.items():
            machine = factory(1)
            assert machine.processors, name
            assert machine.memories, name

    def test_paper_machines_still_present(self):
        assert {"shepard", "lassen"} <= set(MACHINE_ZOO)
        assert {"helix", "mirrored", "lopsided"} <= set(MACHINE_ZOO)
