"""Unit tests for the reference numerical kernels (physics invariants)."""

import numpy as np
import pytest

from repro.kernels import (
    CircuitState,
    HydroState,
    NSState,
    calc_new_currents,
    calibrate_host,
    distribute_charge,
    hydro_step,
    ns_step,
    star_stencil,
    stencil_flops,
    update_voltages,
)
from repro.kernels.hydro import total_energy
from repro.kernels.navier_stokes import total_mass
from repro.kernels.stencil2d import increment, star_weights


class TestStencil:
    def test_weights_star_shape(self):
        w = star_weights(radius=2)
        assert w.shape == (5, 5)
        assert w[2, 2] == 0.0
        assert w[0, 0] == 0.0  # corners empty in a star
        assert w[2, 4] != 0.0

    def test_constant_field_zero_response(self):
        """A star stencil with antisymmetric weights annihilates
        constants — the PRK correctness property."""
        grid = np.ones((32, 32))
        out = np.zeros_like(grid)
        star_stencil(grid, star_weights(2), out)
        interior = out[2:-2, 2:-2]
        assert np.allclose(interior, 0.0)

    def test_linear_gradient_constant_response(self):
        x = np.arange(32, dtype=float)
        grid = np.tile(x, (32, 1))
        out = np.zeros_like(grid)
        star_stencil(grid, star_weights(2), out)
        interior = out[2:-2, 2:-2]
        assert np.allclose(interior, interior[0, 0])
        assert interior[0, 0] == pytest.approx(1.0)

    def test_increment(self):
        grid = np.zeros((8, 8))
        increment(grid)
        assert np.all(grid == 1.0)

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError):
            star_stencil(np.ones((3, 3)), star_weights(2), np.zeros((3, 3)))

    def test_flop_count_positive(self):
        stencil_f, inc_f = stencil_flops(100)
        assert stencil_f > 0 and inc_f == 100 * 100


class TestCircuitKernels:
    def test_charge_conservation(self):
        """distribute_charge moves charge between nodes; the total is
        conserved exactly (scatter of +dq and -dq)."""
        state = CircuitState.random(nodes=100, wires=300, seed=1)
        calc_new_currents(state)
        before = state.charge.sum()
        distribute_charge(state)
        assert state.charge.sum() == pytest.approx(before, abs=1e-12)

    def test_currents_decay_without_voltage(self):
        state = CircuitState.random(nodes=50, wires=100, seed=2)
        state.voltage[:] = 0.0
        state.current[:] = 1.0
        calc_new_currents(state)
        assert np.all(np.abs(state.current) < 1.0)

    def test_update_voltages_resets_charge(self):
        state = CircuitState.random(nodes=50, wires=100, seed=3)
        state.charge[:] = 1.0
        update_voltages(state)
        assert np.all(state.charge == 0.0)

    def test_full_iteration_stable(self):
        state = CircuitState.random(nodes=200, wires=800, seed=4)
        for _ in range(100):
            calc_new_currents(state)
            distribute_charge(state)
            update_voltages(state)
        assert np.all(np.isfinite(state.voltage))


class TestHydro:
    def test_energy_conserved(self):
        state = HydroState.sod(zones=200)
        e0 = total_energy(state)
        for _ in range(500):
            hydro_step(state, dt=1e-4)
        assert total_energy(state) == pytest.approx(e0, rel=1e-10)

    def test_shock_propagates(self):
        state = HydroState.sod(zones=200)
        for _ in range(500):
            hydro_step(state, dt=1e-4)
        # The interface moved: velocity is nonzero in the middle.
        assert np.max(np.abs(state.u)) > 0.1

    def test_density_positive(self):
        state = HydroState.sod(zones=100)
        for _ in range(1000):
            hydro_step(state, dt=5e-5)
        assert np.all(state.rho > 0)

    def test_tangle_detected(self):
        state = HydroState.sod(zones=100)
        with pytest.raises(FloatingPointError):
            for _ in range(100):
                hydro_step(state, dt=1.0)


class TestNavierStokes:
    def test_mass_conserved(self):
        state = NSState.acoustic_pulse((12, 12, 12))
        m0 = total_mass(state)
        for _ in range(50):
            ns_step(state, dt=1e-3)
        assert total_mass(state) == pytest.approx(m0, rel=1e-12)

    def test_pulse_oscillates(self):
        state = NSState.acoustic_pulse((12, 12, 12))
        peak0 = float(np.max(np.abs(state.rho - 1.0)))
        for _ in range(30):
            ns_step(state, dt=1e-3)
        # Still finite, bounded dynamics.
        assert np.all(np.isfinite(state.rho))
        assert float(np.max(np.abs(state.rho - 1.0))) < 10 * peak0

    def test_momentum_develops(self):
        state = NSState.acoustic_pulse((12, 12, 12))
        for _ in range(10):
            ns_step(state, dt=1e-3)
        assert np.max(np.abs(state.mom)) > 0


class TestCalibration:
    def test_reports_all_kernels(self):
        results = calibrate_host(scale=1)
        assert set(results) == {
            "stencil",
            "circuit",
            "hydro",
            "navier_stokes",
        }
        for result in results.values():
            assert result.flops_per_second > 1e6  # sanity: > 1 MFLOP/s
