"""Unit tests for the executor and simulator facade."""

import pytest

from repro.machine import shepard, single_node
from repro.machine.kinds import MemKind, ProcKind
from repro.mapping import SearchSpace
from repro.mapping.validate import MappingError
from repro.runtime import OOMError, SimConfig, Simulator
from repro.taskgraph import GraphBuilder, Privilege
from repro.util.units import MIB


def chain_graph(nbytes=4 * MIB, iterations=3):
    """producer -> consumer chain over one collection."""
    b = GraphBuilder("chain")
    c = b.collection("c", nbytes=nbytes)
    prod = b.task_kind("prod", slots=[("c", Privilege.WRITE)])
    cons = b.task_kind("cons", slots=[("c", Privilege.READ)])
    for _ in range(iterations):
        b.launch(prod, [c], size=2, flops=1e8)
        b.launch(cons, [c], size=2, flops=1e8)
    return b.build()


class TestExecutorSemantics:
    def test_deterministic(self, mini_machine):
        graph = chain_graph()
        sim = Simulator(graph, mini_machine, SimConfig(noise_sigma=0))
        space = SearchSpace(graph, mini_machine)
        mapping = space.default_mapping()
        a = sim.run(mapping).makespan
        sim.clear_cache()
        b = sim.run(mapping).makespan
        assert a == b

    def test_same_memory_no_copies(self, mini_machine):
        graph = chain_graph()
        sim = Simulator(graph, mini_machine, SimConfig(noise_sigma=0))
        mapping = SearchSpace(graph, mini_machine).default_mapping()
        result = sim.run(mapping)
        assert result.report.copy_stats.num_copies == 0

    def test_mismatched_memory_costs_copies(self, mini_machine):
        graph = chain_graph()
        sim = Simulator(graph, mini_machine, SimConfig(noise_sigma=0))
        space = SearchSpace(graph, mini_machine)
        base = space.default_mapping()
        split = base.with_proc("cons", ProcKind.CPU).with_mem(
            "cons", 0, MemKind.SYSTEM
        )
        sim.run(base)
        r_split = sim.run(split)
        assert r_split.report.copy_stats.num_copies > 0
        assert r_split.report.copy_stats.bytes_moved > 0

    def test_dependences_respected(self, mini_machine):
        graph = chain_graph(iterations=1)
        sim = Simulator(graph, mini_machine, SimConfig(noise_sigma=0))
        mapping = SearchSpace(graph, mini_machine).default_mapping()
        report = sim.run(mapping).report
        assert (
            report.kind_finish["cons"] > report.kind_finish["prod"]
        )

    def test_makespan_grows_with_work(self, mini_machine):
        small = chain_graph(nbytes=MIB)
        big = chain_graph(nbytes=64 * MIB)
        t_small = Simulator(small, mini_machine, SimConfig(noise_sigma=0)).run(
            SearchSpace(small, mini_machine).default_mapping()
        )
        t_big = Simulator(big, mini_machine, SimConfig(noise_sigma=0)).run(
            SearchSpace(big, mini_machine).default_mapping()
        )
        assert t_big.makespan > t_small.makespan

    def test_zero_copy_slower_than_framebuffer_for_gpu(self, mini_machine):
        graph = chain_graph(nbytes=64 * MIB)
        sim = Simulator(graph, mini_machine, SimConfig(noise_sigma=0))
        space = SearchSpace(graph, mini_machine)
        fb = space.default_mapping()
        zc = fb.with_mem("prod", 0, MemKind.ZERO_COPY).with_mem(
            "cons", 0, MemKind.ZERO_COPY
        )
        assert sim.run(zc).makespan > sim.run(fb).makespan

    def test_colocated_zero_copy_beats_split(self, mini_machine):
        """The §4.2 motivating example: CPU consumer + GPU producer —
        sharing Zero-Copy beats producer-in-FB + copies."""
        graph = chain_graph(nbytes=256 * MIB, iterations=4)
        sim = Simulator(graph, mini_machine, SimConfig(noise_sigma=0))
        space = SearchSpace(graph, mini_machine)
        base = space.default_mapping().with_proc(
            "cons", ProcKind.CPU
        )
        split = base.with_mem("cons", 0, MemKind.SYSTEM)
        shared = base.with_mem("prod", 0, MemKind.ZERO_COPY).with_mem(
            "cons", 0, MemKind.ZERO_COPY
        )
        assert sim.run(shared).makespan < sim.run(split).makespan

    def test_group_points_share_processors(self):
        machine = shepard(1)
        b = GraphBuilder("wide")
        c = b.collection("c", nbytes=MIB)
        k = b.task_kind("k", slots=[("c", Privilege.READ)])
        b.launch(k, [c], size=8, flops=1e9)
        graph = b.build()
        sim = Simulator(graph, machine, SimConfig(noise_sigma=0))
        mapping = SearchSpace(graph, machine).default_mapping()
        report = sim.run(mapping).report
        # 8 points on the single GPU -> serialized there.
        assert report.proc_busy["n0.gpu0"] > 0
        assert report.kind_points["k"] == 8

    def test_distribution_uses_both_nodes(self):
        machine = shepard(2)
        graph = chain_graph(nbytes=MIB)
        sim = Simulator(graph, machine, SimConfig(noise_sigma=0))
        space = SearchSpace(graph, machine)
        dist = space.default_mapping()
        report = sim.run(dist).report
        assert any(
            uid.startswith("n1.") and busy > 0
            for uid, busy in report.proc_busy.items()
        )

    def test_leader_only_when_undistributed(self):
        machine = shepard(2)
        graph = chain_graph(nbytes=MIB)
        sim = Simulator(graph, machine, SimConfig(noise_sigma=0))
        space = SearchSpace(graph, machine)
        mapping = space.default_mapping()
        for kind in space.kind_names():
            mapping = mapping.with_distribute(kind, False)
        report = sim.run(mapping).report
        assert not any(
            uid.startswith("n1.") and busy > 0
            for uid, busy in report.proc_busy.items()
        )


class TestSimulatorFacade:
    def test_invalid_mapping_raises(self, mini_machine):
        graph = chain_graph()
        sim = Simulator(graph, mini_machine, SimConfig(noise_sigma=0))
        space = SearchSpace(graph, mini_machine)
        bad = space.default_mapping().with_proc("prod", ProcKind.CPU)
        with pytest.raises(MappingError):
            sim.run(bad)

    def test_oom_raises_without_spill(self):
        machine = single_node(
            cpus=2, gpus=1, framebuffer_capacity=MIB,
            sysmem_capacity=256 * MIB, zero_copy_capacity=256 * MIB,
        )
        graph = chain_graph(nbytes=16 * MIB)
        sim = Simulator(graph, machine, SimConfig(noise_sigma=0, spill=False))
        with pytest.raises(OOMError):
            sim.run(SearchSpace(graph, machine).default_mapping())

    def test_spill_executes_demoted(self):
        machine = single_node(
            cpus=2, gpus=1, framebuffer_capacity=MIB,
            sysmem_capacity=256 * MIB, zero_copy_capacity=256 * MIB,
        )
        graph = chain_graph(nbytes=16 * MIB)
        sim = Simulator(graph, machine, SimConfig(noise_sigma=0, spill=True))
        result = sim.run(SearchSpace(graph, machine).default_mapping())
        executed = result.executed_mapping
        assert executed.count_mem(MemKind.ZERO_COPY) > 0

    def test_noisy_samples_average_near_base(self, mini_machine):
        graph = chain_graph()
        sim = Simulator(
            graph, mini_machine, SimConfig(noise_sigma=0.05, seed=3)
        )
        mapping = SearchSpace(graph, mini_machine).default_mapping()
        result = sim.run(mapping, runs=200)
        assert result.mean == pytest.approx(result.makespan, rel=0.05)
        assert len(set(result.samples)) == 200

    def test_cache_counts_executions(self, mini_machine):
        graph = chain_graph()
        sim = Simulator(graph, mini_machine, SimConfig(noise_sigma=0))
        mapping = SearchSpace(graph, mini_machine).default_mapping()
        sim.run(mapping)
        sim.run(mapping)
        assert sim.executions == 1

    def test_memory_demand_reporting(self, mini_machine):
        graph = chain_graph(nbytes=8 * MIB)
        sim = Simulator(graph, mini_machine, SimConfig(noise_sigma=0))
        demand = sim.memory_demand(
            SearchSpace(graph, mini_machine).default_mapping()
        )
        assert demand.per_memory
        assert "OVERFLOW" not in demand.describe()
