"""Unit tests for the text visualisation helpers."""

import pytest

from repro.machine.kinds import MemKind, ProcKind
from repro.viz import Table, render_mapping, render_mapping_diff


class TestRenderMapping:
    def test_contains_kinds_and_marks(self, diamond_graph, diamond_space):
        mapping = diamond_space.default_mapping()
        text = render_mapping(diamond_graph, mapping, title="demo")
        assert "demo" in text
        for kind in ("source", "left", "right", "sink"):
            assert kind in text
        assert "GPU" in text
        assert " F " in text  # frame-buffer marker
        assert "Frame-Buffer" in text

    def test_bars_scale_with_size(self, diamond_graph, diamond_space):
        mapping = diamond_space.default_mapping()
        text = render_mapping(diamond_graph, mapping)
        lines = [line for line in text.splitlines() if "█" in line]
        grid_line = next(line for line in lines if line.strip().startswith("grid"))
        acc_line = next(line for line in lines if line.strip().startswith("acc"))
        assert grid_line.count("█") > acc_line.count("█")


class TestRenderDiff:
    def test_identical(self, diamond_graph, diamond_space):
        mapping = diamond_space.default_mapping()
        assert "identical" in render_mapping_diff(
            diamond_graph, mapping, mapping
        )

    def test_shows_changes_only(self, diamond_graph, diamond_space):
        base = diamond_space.default_mapping()
        other = base.with_proc("sink", ProcKind.CPU).with_mem(
            "sink", 0, MemKind.SYSTEM
        )
        text = render_mapping_diff(diamond_graph, base, other)
        assert "sink" in text
        assert "gpu -> cpu" in text
        assert "source" not in text


class TestTable:
    def test_render_aligned(self):
        t = Table(["a", "bbbb"])
        t.add_row(["x", 1.5])
        t.add_row(["longer", 2.0])
        text = t.render(title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(
            len(line) == len(lines[1]) for line in lines[1:]
        )
        assert "1.50" in text

    def test_row_arity_checked(self):
        t = Table(["a"])
        with pytest.raises(ValueError):
            t.add_row([1, 2])

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            Table([])
