"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, parse_app_input


class TestParseAppInput:
    @pytest.mark.parametrize(
        "app,label,expected",
        [
            ("circuit", "n50w200", {"nodes": 50, "wires": 200}),
            ("stencil", "1000x500", {"nx": 1000, "ny": 500}),
            ("pennant", "320x90", {"zx": 320, "zy": 90}),
            ("htr", "8x8y9z", {"x": 8, "y": 8, "z": 9}),
            ("maestro", "16x32", {"lf_count": 16, "lf_res": 32}),
        ],
    )
    def test_labels(self, app, label, expected):
        assert parse_app_input(app, label) == expected

    def test_none_keeps_defaults(self):
        assert parse_app_input("pennant", None) == {}

    def test_bad_label_exits(self):
        with pytest.raises(SystemExit):
            parse_app_input("htr", "320x90")


class TestParser:
    def test_tune_defaults(self):
        args = build_parser().parse_args(
            ["tune", "--app", "stencil"]
        )
        assert args.algorithm == "ccd"
        assert args.machine == "shepard"
        assert args.nodes == 1

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "--app", "linpack"])

    def test_serve_requires_root(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--root", "state"])
        assert args.host == "127.0.0.1"
        assert args.port == 8432

    def test_submit_defaults(self):
        args = build_parser().parse_args(["submit", "--app", "stencil"])
        assert args.url == "http://127.0.0.1:8432"
        assert args.algorithm == "ccd"
        assert not args.wait
        assert args.checkpoint_every == 10

    def test_submit_execution_flags(self):
        args = build_parser().parse_args(
            [
                "submit",
                "--app",
                "stencil",
                "--workers",
                "2",
                "--no-incremental",
                "--wait",
            ]
        )
        assert args.workers == 2
        assert args.no_incremental
        assert args.wait

    def test_fuzz_accepts_parallel_invariant(self):
        args = build_parser().parse_args(
            ["fuzz", "--invariant", "parallel"]
        )
        assert args.invariant == ["parallel"]


class TestCommands:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "shepard" in out and "lassen" in out

    def test_inspect(self, capsys):
        code = main(
            ["inspect", "--app", "circuit", "--input", "n50w200"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 tasks, 15 collection arguments" in out
        assert "default mapping" in out

    def test_tune_small(self, capsys, tmp_path):
        code = main(
            [
                "tune",
                "--app",
                "stencil",
                "--input",
                "500x500",
                "--max-suggestions",
                "300",
                "--workdir",
                str(tmp_path / "w"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert (tmp_path / "w" / "report.txt").exists()
        # A workdir always gets telemetry; a trace only with --trace.
        assert (tmp_path / "w" / "telemetry.jsonl").exists()
        assert not (tmp_path / "w" / "trace.json").exists()

    def test_tune_with_trace_and_trace_subcommand(self, capsys, tmp_path):
        code = main(
            [
                "tune",
                "--app",
                "stencil",
                "--input",
                "200x200",
                "--max-suggestions",
                "150",
                "--workdir",
                str(tmp_path / "w"),
                "--trace",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "best-mapping time:" in out
        trace_path = tmp_path / "w" / "trace.json"
        assert trace_path.exists()

        import json

        from repro.obs.trace import validate_chrome_trace

        assert validate_chrome_trace(json.loads(trace_path.read_text())) > 0

        assert main(["trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "breakdown:" in out

    def test_trace_subcommand_rejects_garbage(self, tmp_path):
        bad = tmp_path / "not-a-trace.json"
        bad.write_text('{"foo": 1}')
        with pytest.raises(SystemExit):
            main(["trace", str(bad)])


class TestAnalyzeCommand:
    def test_list_rules_grouped_by_pass(self, capsys):
        assert main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        # One section per analysis pass, in rule-id order.
        headers = [
            line for line in out.splitlines() if line.startswith("-- ")
        ]
        assert headers == [
            "-- mapping validity (AM0xx)",
            "-- memory feasibility (AM1xx)",
            "-- canonicalization (AM2xx)",
            "-- graph sanitizer (AM3xx)",
            "-- cost bounds (AM4xx)",
            "-- routing & symmetry (AM5xx)",
            "-- workload equivalence (AM6xx)",
        ]
        from repro.analysis import RULES

        for rule_id, rule in RULES.items():
            assert rule_id in out
            assert rule.doc in out

    def test_analyze_with_bounds(self, capsys):
        code = main(
            [
                "analyze",
                "--app",
                "stencil",
                "--input",
                "200x200",
                "--bounds",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        # The default stencil mapping leaves shepard's CPUs idle.
        assert "AM403" in out

    def test_analyze_bounds_on_mapping_file(self, capsys, tmp_path):
        from repro.apps import make_app
        from repro.machine import shepard
        from repro.mapping.io import save_mapping

        machine = shepard(1)
        app = make_app("stencil", nx=200, ny=200)
        space = app.space(machine)
        mapping = space.default_mapping()
        path = tmp_path / "m.json"
        save_mapping(mapping, path, application=app.graph(machine).name)
        code = main(
            [
                "analyze",
                "--app",
                "stencil",
                "--input",
                "200x200",
                "--bounds",
                "--mapping",
                str(path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert str(path) in out


class TestTuneBoundPruneFlags:
    def _tune(self, tmp_path, *extra):
        return main(
            [
                "tune",
                "--app",
                "stencil",
                "--input",
                "200x200",
                "--max-suggestions",
                "150",
                "--workdir",
                str(tmp_path / "w"),
                *extra,
            ]
        )

    def test_metrics_out_writes_prometheus_text(self, capsys, tmp_path):
        metrics = tmp_path / "metrics.prom"
        assert self._tune(tmp_path, "--metrics-out", str(metrics)) == 0
        text = metrics.read_text()
        assert "# TYPE automap_oracle_suggested counter" in text
        assert "automap_oracle_bound_pruned" in text

    def test_no_bound_prune_disables_pruning(self, capsys, tmp_path):
        metrics = tmp_path / "metrics.prom"
        code = self._tune(
            tmp_path, "--no-bound-prune", "--metrics-out", str(metrics)
        )
        assert code == 0
        text = metrics.read_text()
        assert "automap_oracle_bound_pruned 0.0" in text


class TestGenParams:
    def test_coercion(self):
        from repro.cli import parse_gen_params

        assert parse_gen_params(
            ["layers=8", "noise=0.5", "flag=true", "tag=abc"]
        ) == {"layers": 8, "noise": 0.5, "flag": True, "tag": "abc"}

    def test_malformed_pairs_exit(self):
        from repro.cli import parse_gen_params

        for bad in ["layers", "=3", "2x=5"]:
            with pytest.raises(SystemExit):
                parse_gen_params([bad])

    def test_inspect_generator_with_params(self, capsys):
        code = main(
            [
                "inspect",
                "--app",
                "pipeline",
                "--machine",
                "mirrored",
                "--gen-param",
                "layers=3",
                "--gen-param",
                "parts=2",
            ]
        )
        assert code == 0
        assert "3 tasks" in capsys.readouterr().out

    def test_bad_generator_param_is_clean_error(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "inspect",
                    "--app",
                    "reduction",
                    "--gen-param",
                    "levels=0",
                ]
            )

    def test_label_on_generator_is_clean_error(self):
        with pytest.raises(SystemExit):
            main(["inspect", "--app", "forkjoin", "--input", "n50w200"])

    def test_analyze_generator_on_zoo_machine(self, capsys):
        code = main(
            [
                "analyze",
                "--app",
                "halo",
                "--machine",
                "helix",
                "--nodes",
                "3",
                "--gen-param",
                "parts=1",
                "--bounds",
            ]
        )
        assert code == 0


class TestMachineParams:
    def test_coercion(self):
        from repro.cli import parse_machine_params

        assert parse_machine_params(
            [
                "memory_capacity:n0.sys0=128 GiB",
                "proc_throughput:n0.gpu0=1.5e12",
                "name=shepard-fat",
            ]
        ) == {
            "memory_capacity": {"n0.sys0": "128 GiB"},
            "proc_throughput": {"n0.gpu0": 1.5e12},
            "name": "shepard-fat",
        }

    def test_malformed_pairs_exit(self):
        from repro.cli import parse_machine_params

        for bad in [
            "memory_capacity:n0.sys0",  # no value
            "nokey=1",  # only 'name' takes a bare value
            ":x=1",  # empty section
            "a:=1",  # empty key
        ]:
            with pytest.raises(SystemExit):
                parse_machine_params([bad])

    def test_submit_parser_accepts_machine_params(self):
        args = build_parser().parse_args(
            [
                "submit",
                "--app",
                "stencil",
                "--machine-param",
                "memory_capacity:n0.sys0=128 GiB",
                "--machine-param",
                "name=shepard-fat",
            ]
        )
        assert len(args.machine_param) == 2

    def test_serve_worker_and_cache_flags(self):
        args = build_parser().parse_args(["serve", "--root", "s"])
        assert args.workers == 1
        assert args.cache_max_bytes is None
        args = build_parser().parse_args(
            [
                "serve",
                "--root",
                "s",
                "--workers",
                "4",
                "--cache-max-bytes",
                "64 MiB",
            ]
        )
        assert args.workers == 4
        assert args.cache_max_bytes == "64 MiB"

    def test_fuzz_accepts_equivalence_invariant(self):
        args = build_parser().parse_args(
            ["fuzz", "--invariant", "equivalence"]
        )
        assert args.invariant == ["equivalence"]


class TestEquivalenceCommands:
    def test_analyze_equivalence_reports_slack(self, capsys):
        code = main(
            [
                "analyze",
                "--app",
                "forkjoin",
                "--machine",
                "shepard",
                "--equivalence",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        # The zoo machine is GiB-scale; the toy footprint is KiB-scale.
        assert "AM601" in out
        assert "footprint bound" in out

    def test_cache_ls_and_purge(self, capsys, tmp_path):
        from repro.service import ResultCache

        cache = ResultCache(tmp_path)
        cache.put("a" * 64, {"result.json": b"{}\n"})
        cache.put(
            "b" * 64, {"result.json": b"{}\n", "proof.json": b"{}\n"}
        )
        assert main(["cache", "ls", "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out
        assert "equiv" in out and "run" in out

        assert main(["cache", "purge", "--root", str(tmp_path)]) == 0
        assert "purged 2" in capsys.readouterr().out
        assert main(["cache", "ls", "--root", str(tmp_path)]) == 0
        assert "0 entries" in capsys.readouterr().out
