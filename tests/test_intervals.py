"""Unit tests for the interval-set substrate."""


from repro.runtime.intervals import IntervalSet


class TestConstruction:
    def test_normalizes_overlaps(self):
        s = IntervalSet([(0, 10), (5, 15)])
        assert list(s) == [(0, 15)]

    def test_coalesces_adjacent(self):
        s = IntervalSet([(0, 5), (5, 10)])
        assert list(s) == [(0, 10)]

    def test_drops_empty(self):
        assert not IntervalSet([(5, 5), (7, 3)])

    def test_sorts(self):
        s = IntervalSet([(20, 30), (0, 10)])
        assert list(s) == [(0, 10), (20, 30)]


class TestOperations:
    def test_total(self):
        assert IntervalSet([(0, 10), (20, 25)]).total == 15

    def test_union(self):
        a = IntervalSet([(0, 10)])
        b = IntervalSet([(5, 20)])
        assert list(a.union(b)) == [(0, 20)]

    def test_intersection(self):
        a = IntervalSet([(0, 10), (20, 30)])
        b = IntervalSet([(5, 25)])
        assert list(a.intersection(b)) == [(5, 10), (20, 25)]

    def test_intersection_empty(self):
        a = IntervalSet([(0, 10)])
        b = IntervalSet([(10, 20)])
        assert not a.intersection(b)

    def test_subtract_middle(self):
        a = IntervalSet([(0, 30)])
        b = IntervalSet([(10, 20)])
        assert list(a.subtract(b)) == [(0, 10), (20, 30)]

    def test_subtract_everything(self):
        a = IntervalSet([(0, 10)])
        assert not a.subtract(IntervalSet([(0, 100)]))

    def test_subtract_nothing(self):
        a = IntervalSet([(0, 10)])
        assert a.subtract(IntervalSet([(50, 60)])) == a

    def test_subtract_multiple_holes(self):
        a = IntervalSet([(0, 100)])
        b = IntervalSet([(10, 20), (30, 40), (90, 95)])
        assert list(a.subtract(b)) == [
            (0, 10),
            (20, 30),
            (40, 90),
            (95, 100),
        ]

    def test_contains(self):
        s = IntervalSet([(0, 10), (20, 30)])
        assert s.contains(2, 8)
        assert s.contains(5, 5)  # empty range always contained
        assert not s.contains(8, 22)

    def test_overlap_length(self):
        s = IntervalSet([(0, 10), (20, 30)])
        assert s.overlap(5, 25) == 10

    def test_equality_and_hash(self):
        a = IntervalSet([(0, 5), (5, 10)])
        b = IntervalSet([(0, 10)])
        assert a == b
        assert hash(a) == hash(b)
