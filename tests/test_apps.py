"""Unit tests for the five benchmark applications."""

import pytest

from repro.apps import (
    APP_REGISTRY,
    CircuitApp,
    HTRApp,
    MaestroApp,
    PennantApp,
    StencilApp,
    make_app,
)
from repro.machine import lassen, shepard
from repro.machine.kinds import MemKind, ProcKind
from repro.mapping import is_valid
from repro.runtime import SimConfig, Simulator


ALL_APPS = [
    CircuitApp(nodes=200, wires=800),
    StencilApp(nx=500, ny=500),
    PennantApp(zx=320, zy=90),
    HTRApp(x=8, y=8, z=9),
    MaestroApp(lf_count=4, lf_res=16, hf_res=32),
]


class TestFigure5Inventory:
    """The task/argument counts and space sizes of Figure 5."""

    @pytest.mark.parametrize(
        "app,tasks,args",
        [
            (CircuitApp(), 3, 15),
            (StencilApp(), 2, 12),
            (PennantApp(), 31, 97),
            (HTRApp(), 28, 72),
            (MaestroApp(), 13, 30),
        ],
        ids=["circuit", "stencil", "pennant", "htr", "maestro"],
    )
    def test_counts(self, app, tasks, args):
        assert app.num_tasks() == tasks
        assert app.num_collection_arguments() == args

    @pytest.mark.parametrize(
        "app,lo,hi",
        [
            (CircuitApp(), 14, 24),
            (StencilApp(), 10, 20),
            (PennantApp(), 110, 150),
            (HTRApp(), 85, 115),
            (MaestroApp(), 35, 50),
        ],
        ids=["circuit", "stencil", "pennant", "htr", "maestro"],
    )
    def test_space_size_order(self, app, lo, hi):
        space = app.space(shepard(1))
        assert lo <= space.log2_size() <= hi


@pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.name)
class TestAppGraphs:
    def test_graph_builds_and_is_acyclic(self, app):
        graph = app.graph(shepard(1))
        assert len(graph.topological_order()) == len(graph)

    def test_mappings_valid(self, app):
        machine = shepard(1)
        graph = app.graph(machine)
        assert is_valid(graph, machine, app.default_mapping(machine))
        assert is_valid(graph, machine, app.custom_mapping(machine))

    def test_default_mapping_executes(self, app):
        machine = shepard(1)
        graph = app.graph(machine)
        sim = Simulator(graph, machine, SimConfig(noise_sigma=0, spill=True))
        result = sim.run(app.default_mapping(machine))
        assert result.makespan > 0

    def test_custom_mapping_executes(self, app):
        machine = shepard(1)
        graph = app.graph(machine)
        sim = Simulator(graph, machine, SimConfig(noise_sigma=0, spill=True))
        result = sim.run(app.custom_mapping(machine))
        assert result.makespan > 0

    def test_multi_node_graph_scales_parts(self, app):
        g1 = app.graph(shepard(1))
        g2 = app.graph(shepard(2))
        assert sum(t.size for t in g2.launches) >= sum(
            t.size for t in g1.launches
        )


class TestCircuit:
    def test_label(self):
        assert CircuitApp(50, 200).input_label() == "n50w200"

    def test_bigger_input_slower(self):
        machine = shepard(1)
        small = CircuitApp(50, 200)
        big = CircuitApp(12800, 51200)
        t_small = Simulator(
            small.graph(machine), machine, SimConfig(noise_sigma=0)
        ).run(small.default_mapping(machine))
        t_big = Simulator(
            big.graph(machine), machine, SimConfig(noise_sigma=0)
        ).run(big.default_mapping(machine))
        assert t_big.makespan > t_small.makespan

    def test_custom_uses_zero_copy_ghosts(self):
        machine = shepard(1)
        mapping = CircuitApp().custom_mapping(machine)
        assert mapping.count_mem(MemKind.ZERO_COPY) >= 3


class TestStencil:
    def test_label(self):
        assert StencilApp(2000, 1000).input_label() == "2000x1000"

    def test_custom_equals_default(self):
        machine = shepard(1)
        app = StencilApp()
        assert app.custom_mapping(machine) == app.default_mapping(machine)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            StencilApp(nx=4, ny=4)


class TestPennant:
    def test_label(self):
        assert PennantApp(320, 46080).input_label() == "320x46080"

    def test_point_arrays_shared_across_pieces(self):
        from repro.taskgraph import induced_collection_graph

        graph = PennantApp(320, 90).graph(shepard(1))
        C = induced_collection_graph(graph)
        assert C.num_edges > 10  # rich co-location structure


class TestHTR:
    def test_label(self):
        assert HTRApp(8, 8, 9).input_label() == "8x8y9z"

    def test_q_heavily_shared(self):
        from repro.taskgraph import induced_collection_graph

        graph = HTRApp(8, 8, 9).graph(shepard(1))
        C = induced_collection_graph(graph)
        q_slots = [
            (kind.name, i)
            for kind in graph.task_kinds
            for i, _slot in enumerate(kind.slots)
            if graph.launches_of_kind(kind.name)[0].args[i].name == "Q"
        ]
        # Q's slots form a big connected cluster.
        sample = q_slots[0]
        assert len(C.neighbors(sample)) >= 10


class TestMaestro:
    def test_hf_kinds_fixed(self):
        machine = lassen(1)
        app = MaestroApp(lf_count=4, lf_res=16, hf_res=32)
        space = app.space(machine)
        assert "hf_flux" not in space.kind_names()
        assert all(k.startswith("lf_") for k in space.kind_names())

    def test_hf_alone_excludes_lf(self):
        machine = lassen(1)
        alone = MaestroApp(lf_count=4, lf_res=16, hf_res=32).hf_alone()
        graph = alone.graph(machine)
        assert all(
            t.kind.name.startswith("hf_") for t in graph.launches
        )

    def test_hf_metric_below_makespan(self):
        machine = lassen(1)
        app = MaestroApp(lf_count=4, lf_res=16, hf_res=32)
        graph = app.graph(machine)
        sim = Simulator(graph, machine, SimConfig(noise_sigma=0, spill=True))
        result = sim.run(app.space(machine).default_mapping())
        assert 0 < MaestroApp.hf_metric(result.report) <= result.makespan

    def test_strategies_differ(self):
        machine = lassen(1)
        app = MaestroApp(lf_count=4, lf_res=16, hf_res=32)
        cpu = app.strategy_cpu_system(machine)
        gpu = app.strategy_gpu_zero_copy(machine)
        assert cpu != gpu
        assert cpu.decision("lf_update").proc_kind is ProcKind.CPU
        assert gpu.decision("lf_update").proc_kind is ProcKind.GPU
        # HF decisions identical in both (fixed).
        assert cpu.decision("hf_flux") == gpu.decision("hf_flux")

    def test_interference_slows_hf(self):
        machine = lassen(1)
        app = MaestroApp(lf_count=8, lf_res=32, hf_res=64)
        alone = app.hf_alone()
        sim_alone = Simulator(
            alone.graph(machine), machine, SimConfig(noise_sigma=0, spill=True)
        )
        t_alone = MaestroApp.hf_metric(
            sim_alone.run(alone.space(machine).default_mapping()).report
        )
        sim = Simulator(
            app.graph(machine), machine, SimConfig(noise_sigma=0, spill=True)
        )
        t_with = MaestroApp.hf_metric(
            sim.run(app.strategy_gpu_zero_copy(machine)).report
        )
        assert t_with > t_alone


class TestRegistry:
    def test_all_registered(self):
        assert set(APP_REGISTRY) == {
            "circuit",
            "stencil",
            "pennant",
            "htr",
            "maestro",
            # synthetic generator families (repro.generators)
            "forkjoin",
            "halo",
            "pipeline",
            "reduction",
        }

    def test_make_app_kwargs(self):
        app = make_app("stencil", nx=600, ny=300)
        assert app.input_label() == "600x300"

    def test_make_app_unknown(self):
        with pytest.raises(ValueError):
            make_app("linpack")
