"""Unit tests for the SearchSpace (sizes, codecs, fixed kinds, files)."""

import math

import pytest

from repro.machine.kinds import MemKind, ProcKind
from repro.mapping import MappingDecision, SearchSpace, is_valid


class TestSizes:
    def test_single_node_collapses_distribution(self, diamond_graph, mini_machine):
        space = SearchSpace(diamond_graph, mini_machine)
        for name in space.kind_names():
            assert space.dims(name).distribute_options == (True,)

    def test_multi_node_has_distribution(self, diamond_graph, shepard2):
        space = SearchSpace(diamond_graph, shepard2)
        assert space.dims("source").distribute_options == (True, False)

    def test_size_formula(self, diamond_graph, mini_machine):
        space = SearchSpace(diamond_graph, mini_machine)
        # Per kind with s slots: 2 procs x 2 mems^s (no distribution dim).
        expected = 1
        for name in space.kind_names():
            s = space.dims(name).num_slots
            expected *= 2 * 2**s + 0  # GPU options + ...
        # source:1, left:2, right:2, sink:3 slots
        manual = (2 * 2) * (2 * 4) * (2 * 4) * (2 * 8)
        assert space.size() == manual

    def test_log2_size(self, diamond_graph, mini_machine):
        space = SearchSpace(diamond_graph, mini_machine)
        assert space.log2_size() == pytest.approx(math.log2(space.size()))

    def test_unconstrained_larger(self, diamond_graph, shepard2):
        space = SearchSpace(diamond_graph, shepard2)
        assert space.unconstrained_size() > space.size()


class TestCanonicalMappings:
    def test_default_is_gpu_framebuffer(self, diamond_space):
        mapping = diamond_space.default_mapping()
        for name in diamond_space.kind_names():
            decision = mapping.decision(name)
            assert decision.proc_kind is ProcKind.GPU
            assert all(m is MemKind.FRAMEBUFFER for m in decision.mem_kinds)
            assert decision.distribute

    def test_random_valid(self, diamond_space, diamond_graph, mini_machine, rng):
        for i in range(25):
            mapping = diamond_space.random_mapping(rng.fork(str(i)))
            assert is_valid(diamond_graph, mini_machine, mapping)

    def test_random_invalid_mode_produces_invalid(self, diamond_space, rng):
        # With memory kinds drawn from all three, invalid mappings appear.
        from repro.mapping.validate import is_valid as valid

        seen_invalid = False
        for i in range(50):
            mapping = diamond_space.random_mapping(
                rng.fork("inv", str(i)), valid=False
            )
            if not valid(
                diamond_space.graph, diamond_space.machine, mapping
            ):
                seen_invalid = True
                break
        assert seen_invalid

    def test_enumerate_matches_size(self, diamond_graph, mini_machine):
        space = SearchSpace(diamond_graph, mini_machine)
        count = sum(1 for _ in space.enumerate_valid())
        assert count == space.size()

    def test_enumerate_all_distinct_and_valid(self, diamond_graph, mini_machine):
        space = SearchSpace(diamond_graph, mini_machine)
        seen = set()
        for mapping in space.enumerate_valid():
            assert is_valid(diamond_graph, mini_machine, mapping)
            seen.add(mapping.key())
        assert len(seen) == space.size()


class TestVectorCodec:
    def test_roundtrip(self, diamond_space, rng):
        mapping = diamond_space.random_mapping(rng)
        vec = diamond_space.encode(mapping)
        assert diamond_space.decode(vec) == mapping

    def test_dims_shape(self, diamond_space):
        dims = diamond_space.vector_dims()
        # Per kind: dist + proc + one per slot; slots = 1+2+2+3 = 8.
        assert len(dims) == 2 * 4 + 8

    def test_decode_wraps_out_of_range(self, diamond_space):
        dims = diamond_space.vector_dims()
        vec = [d * 3 + 1 for d in dims]
        mapping = diamond_space.decode(vec)  # no raise
        assert len(mapping) == 4

    def test_wrong_length_rejected(self, diamond_space):
        with pytest.raises(ValueError):
            diamond_space.decode([0])


class TestFixedDecisions:
    def test_fixed_excluded_from_search(self, diamond_graph, mini_machine):
        fixed = {
            "source": MappingDecision(
                True, ProcKind.GPU, (MemKind.FRAMEBUFFER,)
            )
        }
        space = SearchSpace(diamond_graph, mini_machine, fixed_decisions=fixed)
        assert "source" not in space.kind_names()
        assert not space.is_tunable("source")
        assert space.num_tasks == 3

    def test_fixed_present_in_mappings(self, diamond_graph, mini_machine, rng):
        fixed = {
            "source": MappingDecision(
                True, ProcKind.GPU, (MemKind.ZERO_COPY,)
            )
        }
        space = SearchSpace(diamond_graph, mini_machine, fixed_decisions=fixed)
        for mapping in (
            space.default_mapping(),
            space.random_mapping(rng),
            space.decode(space.encode(space.default_mapping())),
        ):
            assert mapping.decision("source").mem_kinds[0] is MemKind.ZERO_COPY

    def test_unknown_fixed_kind_rejected(self, diamond_graph, mini_machine):
        with pytest.raises(ValueError, match="unknown task kind"):
            SearchSpace(
                diamond_graph,
                mini_machine,
                fixed_decisions={
                    "ghost": MappingDecision(
                        True, ProcKind.CPU, (MemKind.SYSTEM,)
                    )
                },
            )


class TestSpaceFileIO:
    def test_roundtrip(self, diamond_space, tmp_path):
        path = tmp_path / "space.json"
        diamond_space.to_file(path)
        doc = SearchSpace.summary_from_file(path)
        assert doc["graph"] == "diamond"
        assert len(doc["kinds"]) == 4

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            SearchSpace.summary_from_file(path)


class _ProcDropStub:
    """A canonicalizer double proposing arbitrary symmetric proc drops."""

    def __init__(self, drops):
        self._drops = drops

    def dead_distribute_kinds(self):
        return frozenset()

    def canonical_mem(self, kind_name, slot_index, proc_kind):
        return None

    def symmetric_proc_drops(self, space):
        return dict(self._drops)


class TestSymmetryFoldNeverEmptiesProcs:
    """A symmetry fold must never drop the last remaining processor
    option — on a single-processor machine an overzealous drop table
    would leave move enumeration with nothing to enumerate."""

    def _single_proc_space(self):
        from repro.machine.builders import single_node
        from repro.mapping.space import SearchSpace as SS
        from repro.taskgraph import ArgSlot, GraphBuilder, Privilege

        machine = single_node(cpus=1, gpus=0)
        b = GraphBuilder("lone")
        data = b.collection("data", nbytes=1 << 20)
        work = b.task_kind("work", slots=[ArgSlot("data", Privilege.READ_WRITE)])
        b.launch(work, [data], size=2, flops=1e8)
        return SS(b.build(), machine)

    def test_total_drop_is_discarded(self):
        space = self._single_proc_space()
        assert space.dims("work").proc_options == (ProcKind.CPU,)
        pruned = space.prune_infeasible(
            feasibility=None,
            canonicalizer=_ProcDropStub({"work": (ProcKind.CPU,)}),
        )
        assert pruned.searched_proc_options("work") == (ProcKind.CPU,)

    def test_partial_drop_survives(self):
        from repro.machine.builders import single_node
        from repro.taskgraph import ArgSlot, GraphBuilder, Privilege

        machine = single_node(cpus=2, gpus=1)
        b = GraphBuilder("duo")
        data = b.collection("data", nbytes=1 << 20)
        work = b.task_kind("work", slots=[ArgSlot("data", Privilege.READ_WRITE)])
        b.launch(work, [data], size=2, flops=1e8)
        space = SearchSpace(b.build(), machine)
        pruned = space.prune_infeasible(
            feasibility=None,
            canonicalizer=_ProcDropStub({"work": (ProcKind.GPU,)}),
        )
        assert pruned.searched_proc_options("work") == (ProcKind.CPU,)

    def test_read_time_guard_still_holds(self):
        space = self._single_proc_space()
        # Even a table injected behind the write-time guard cannot
        # empty the searched options.
        space._sym_procs = {"work": (ProcKind.CPU,)}
        assert space.searched_proc_options("work") == (ProcKind.CPU,)
