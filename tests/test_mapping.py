"""Unit tests for mapping decisions, the Mapping type, and validation."""

import pytest

from repro.machine.kinds import MemKind, ProcKind
from repro.mapping import (
    Mapping,
    MappingDecision,
    MappingError,
    explain_invalid,
    is_valid,
    validate,
)


@pytest.fixture
def decision():
    return MappingDecision(
        distribute=True,
        proc_kind=ProcKind.GPU,
        mem_kinds=(MemKind.FRAMEBUFFER, MemKind.ZERO_COPY),
    )


class TestDecision:
    def test_with_mem(self, decision):
        new = decision.with_mem(1, MemKind.FRAMEBUFFER)
        assert new.mem_kinds == (MemKind.FRAMEBUFFER, MemKind.FRAMEBUFFER)
        assert decision.mem_kinds[1] is MemKind.ZERO_COPY  # original intact

    def test_with_mem_bounds(self, decision):
        with pytest.raises(IndexError):
            decision.with_mem(2, MemKind.SYSTEM)

    def test_with_proc_keeps_mems(self, decision):
        new = decision.with_proc(ProcKind.CPU)
        assert new.mem_kinds == decision.mem_kinds

    def test_key_hashable_and_stable(self, decision):
        assert decision.key() == decision.with_distribute(True).key()
        assert decision.key() != decision.with_distribute(False).key()

    def test_empty_mems_rejected(self):
        with pytest.raises(ValueError):
            MappingDecision(True, ProcKind.CPU, ())


class TestMapping:
    @pytest.fixture
    def mapping(self, decision):
        return Mapping({"a": decision, "b": decision.with_proc(ProcKind.CPU)})

    def test_lookup(self, mapping, decision):
        assert mapping.decision("a") == decision

    def test_functional_update_isolated(self, mapping):
        new = mapping.with_proc("a", ProcKind.CPU)
        assert mapping.decision("a").proc_kind is ProcKind.GPU
        assert new.decision("a").proc_kind is ProcKind.CPU
        assert new.decision("b") == mapping.decision("b")

    def test_equality_and_hash(self, mapping):
        again = Mapping({k: mapping.decision(k) for k in mapping})
        assert mapping == again
        assert hash(mapping) == hash(again)

    def test_update_changes_key(self, mapping):
        assert mapping.with_distribute("b", False) != mapping

    def test_unknown_kind_rejected(self, mapping):
        with pytest.raises(KeyError):
            mapping.with_proc("ghost", ProcKind.CPU)

    def test_counts(self, mapping):
        assert mapping.count_proc(ProcKind.GPU) == 1
        assert mapping.count_mem(MemKind.FRAMEBUFFER) == 2

    def test_describe_lists_all_kinds(self, mapping):
        text = mapping.describe()
        assert "a " in text and "b " in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Mapping({})


class TestValidation:
    def test_default_mapping_valid(self, diamond_space, diamond_graph, mini_machine):
        mapping = diamond_space.default_mapping()
        validate(diamond_graph, mini_machine, mapping)  # no raise
        assert is_valid(diamond_graph, mini_machine, mapping)

    def test_unaddressable_mem_invalid(
        self, diamond_space, diamond_graph, mini_machine
    ):
        mapping = diamond_space.default_mapping().with_proc(
            "source", ProcKind.CPU
        )
        # source slot stays FRAMEBUFFER -> CPU cannot address it.
        assert not is_valid(diamond_graph, mini_machine, mapping)
        reason = explain_invalid(diamond_graph, mini_machine, mapping)
        assert reason is not None and "not addressable" in reason

    def test_missing_kind_invalid(self, diamond_graph, mini_machine, diamond_space):
        full = diamond_space.default_mapping()
        partial = Mapping(
            {k: full.decision(k) for k in full if k != "sink"}
        )
        with pytest.raises(MappingError, match="no decision"):
            validate(diamond_graph, mini_machine, partial)

    def test_missing_variant_invalid(self, mini_machine):
        from repro.taskgraph import GraphBuilder, Privilege

        b = GraphBuilder("cpu_only")
        c = b.collection("c", nbytes=1 << 10)
        k = b.task_kind(
            "k", slots=[("c", Privilege.READ)], variants=[ProcKind.CPU]
        )
        b.launch(k, [c])
        g = b.build()
        bad = Mapping(
            {
                "k": MappingDecision(
                    True, ProcKind.GPU, (MemKind.FRAMEBUFFER,)
                )
            }
        )
        assert not is_valid(g, mini_machine, bad)

    def test_slot_count_mismatch(self, diamond_graph, mini_machine, diamond_space):
        full = diamond_space.default_mapping()
        bad = full.with_decision(
            "sink",
            MappingDecision(True, ProcKind.GPU, (MemKind.FRAMEBUFFER,)),
        )
        reason = explain_invalid(diamond_graph, mini_machine, bad)
        assert reason is not None and "slots" in reason
