"""Unit tests for channel-path routing."""

import pytest

from repro.machine import Topology, lassen, shepard
from repro.util.units import MIB


@pytest.fixture
def topo2():
    return Topology(shepard(2))


class TestCopyPath:
    def test_self_path_free(self, topo2):
        path = topo2.copy_path("n0.fb0", "n0.fb0")
        assert path is not None
        assert path.hops == ()
        assert path.transfer_time(10 * MIB) == 0.0

    def test_direct_channel(self, topo2):
        path = topo2.copy_path("n0.fb0", "n0.zc")
        assert path is not None
        assert len(path.hops) == 1

    def test_cross_node_routed(self, topo2):
        path = topo2.copy_path("n0.fb0", "n1.fb0")
        assert path is not None
        assert len(path.hops) >= 2  # fb -> host -> network -> ... -> fb

    def test_bottleneck_bandwidth(self, topo2):
        path = topo2.copy_path("n0.fb0", "n1.fb0")
        assert path.bandwidth == min(h.bandwidth for h in path.hops)

    def test_latency_sums(self, topo2):
        path = topo2.copy_path("n0.fb0", "n1.zc")
        assert path.latency == pytest.approx(
            sum(h.latency for h in path.hops)
        )

    def test_transfer_time_monotone_in_bytes(self, topo2):
        t1 = topo2.transfer_time("n0.fb0", "n1.zc", MIB)
        t2 = topo2.transfer_time("n0.fb0", "n1.zc", 64 * MIB)
        assert t2 > t1

    def test_cross_node_slower_than_local(self, topo2):
        local = topo2.transfer_time("n0.fb0", "n0.zc", 64 * MIB)
        remote = topo2.transfer_time("n0.fb0", "n1.zc", 64 * MIB)
        assert remote > local

    def test_connected(self, topo2):
        assert topo2.connected()

    def test_lassen_peer_gpu_copies(self):
        topo = Topology(lassen(1))
        path = topo.copy_path("n0.fb0", "n0.fb3")
        assert path is not None
        # Peer channel exists -> one hop.
        assert len(path.hops) == 1

    def test_caching_returns_same_object(self, topo2):
        a = topo2.copy_path("n0.fb0", "n1.zc")
        b = topo2.copy_path("n0.fb0", "n1.zc")
        assert a is b
