"""Unit tests for repro.util.rng — determinism and stream independence."""

import pytest

from repro.util.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_differs_by_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_differs_by_name(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_path_not_concatenation(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")

    def test_non_negative(self):
        for seed in (0, 1, 2**62, 123456789):
            assert derive_seed(seed, "x") >= 0


class TestRngStream:
    def test_same_seed_same_sequence(self):
        a = RngStream(42)
        b = RngStream(42)
        assert [a.integers(0, 100) for _ in range(10)] == [
            b.integers(0, 100) for _ in range(10)
        ]

    def test_fork_is_pure(self):
        root = RngStream(7)
        x = root.fork("child").uniform()
        y = root.fork("child").uniform()
        assert x == y

    def test_fork_independent_of_parent_draws(self):
        root = RngStream(7)
        before = root.fork("child").uniform()
        root.uniform()  # advance parent
        after = root.fork("child").uniform()
        assert before == after

    def test_forks_differ(self):
        root = RngStream(7)
        assert root.fork("a").uniform() != root.fork("b").uniform()

    def test_fork_requires_name(self):
        with pytest.raises(ValueError):
            RngStream(1).fork()

    def test_choice(self):
        stream = RngStream(3)
        options = ["x", "y", "z"]
        for _ in range(20):
            assert stream.choice(options) in options

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            RngStream(1).choice([])

    def test_lognormal_positive(self):
        stream = RngStream(5)
        assert all(stream.lognormal(0, 0.1) > 0 for _ in range(20))

    def test_shuffle_permutes(self):
        stream = RngStream(9)
        items = list(range(50))
        shuffled = list(items)
        stream.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity
