"""Unit tests for the profiles database."""

import math

import pytest

from repro.core import ProfileDatabase
from repro.machine.kinds import MemKind, ProcKind
from repro.mapping import Mapping, MappingDecision


def make_mapping(proc=ProcKind.GPU):
    mem = (
        MemKind.FRAMEBUFFER if proc is ProcKind.GPU else MemKind.SYSTEM
    )
    return Mapping({"k": MappingDecision(True, proc, (mem,))})


class TestProfileDatabase:
    def test_lookup_missing(self):
        db = ProfileDatabase()
        assert db.lookup(make_mapping()) is None

    def test_record_and_stats(self):
        db = ProfileDatabase()
        record = db.record(make_mapping(), [1.0, 2.0, 3.0])
        assert record.count == 3
        assert record.mean == pytest.approx(2.0)
        assert record.variance == pytest.approx(1.0)
        assert record.stddev == pytest.approx(1.0)

    def test_record_extends(self):
        db = ProfileDatabase()
        db.record(make_mapping(), [1.0])
        record = db.record(make_mapping(), [3.0])
        assert record.count == 2
        assert record.mean == pytest.approx(2.0)

    def test_identity_by_key(self):
        db = ProfileDatabase()
        db.record(make_mapping(), [1.0])
        assert make_mapping() in db
        assert make_mapping(ProcKind.CPU) not in db

    def test_empty_record_mean_inf(self):
        db = ProfileDatabase()
        record = db.record(make_mapping(), [], failed=True, reason="oom")
        assert math.isinf(record.mean)
        assert record.failed and record.reason == "oom"

    def test_best_excludes_failed(self):
        db = ProfileDatabase()
        db.record(make_mapping(ProcKind.GPU), [5.0])
        db.record(make_mapping(ProcKind.CPU), [], failed=True)
        best = db.best(5)
        assert len(best) == 1
        assert best[0].mean == pytest.approx(5.0)

    def test_best_ranks_by_mean(self):
        db = ProfileDatabase()
        db.record(make_mapping(ProcKind.GPU), [5.0])
        db.record(make_mapping(ProcKind.CPU), [2.0])
        best = db.best(2)
        assert [r.mean for r in best] == [2.0, 5.0]

    def test_save_load_roundtrip(self, tmp_path):
        db = ProfileDatabase()
        db.record(make_mapping(), [1.5, 1.6])
        path = tmp_path / "profiles.json"
        db.save(path)
        records = ProfileDatabase.load_summary(path)
        assert len(records) == 1
        assert records[0]["samples"] == [1.5, 1.6]

    def test_load_rejects_foreign(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"format": "nope"}')
        with pytest.raises(ValueError):
            ProfileDatabase.load_summary(path)
