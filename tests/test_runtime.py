"""Unit tests for placement, events, copies, noise, memory planning."""

import pytest

from repro.machine import shepard, single_node
from repro.machine.kinds import MemKind, ProcKind
from repro.mapping import MappingDecision
from repro.runtime.events import ResourceTimeline, TimelinePool
from repro.runtime.memory import MemoryPlanner, OOMError
from repro.runtime.noise import NoiseModel
from repro.runtime.placement import Placer
from repro.taskgraph import GraphBuilder, Privilege
from repro.util.units import MIB


class TestResourceTimeline:
    def test_serializes(self):
        t = ResourceTimeline("r")
        s1, f1 = t.reserve(0.0, 2.0)
        s2, f2 = t.reserve(0.0, 3.0)
        assert (s1, f1) == (0.0, 2.0)
        assert (s2, f2) == (2.0, 5.0)

    def test_respects_ready_time(self):
        t = ResourceTimeline("r")
        s, f = t.reserve(10.0, 1.0)
        assert s == 10.0

    def test_utilization(self):
        t = ResourceTimeline("r")
        t.reserve(0.0, 2.0)
        assert t.utilization(4.0) == pytest.approx(0.5)
        assert t.utilization(0.0) == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            ResourceTimeline("r").reserve(0.0, -1.0)

    def test_pool_total_busy_prefix(self):
        pool = TimelinePool()
        pool.reserve("chan:a", 0.0, 1.0)
        pool.reserve("chan:b", 0.0, 2.0)
        pool.reserve("proc:x", 0.0, 5.0)
        assert pool.total_busy("chan:") == pytest.approx(3.0)


class TestPlacer:
    def make_launch(self, machine, size=4):
        b = GraphBuilder("p")
        c = b.collection("c", nbytes=1 << 20)
        k = b.task_kind("k", slots=[("c", Privilege.READ_WRITE)])
        launch = b.launch(k, [c], size=size, flops=1.0)
        return launch

    def test_distributed_blocked_across_nodes(self):
        machine = shepard(2)
        placer = Placer(machine)
        launch = self.make_launch(machine, size=4)
        decision = MappingDecision(
            True, ProcKind.GPU, (MemKind.FRAMEBUFFER,)
        )
        nodes = [
            p.proc.node for p in placer.place_launch(launch, decision)
        ]
        assert nodes == [0, 0, 1, 1]

    def test_leader_node_when_not_distributed(self):
        machine = shepard(2)
        placer = Placer(machine)
        launch = self.make_launch(machine, size=4)
        decision = MappingDecision(
            False, ProcKind.GPU, (MemKind.FRAMEBUFFER,)
        )
        nodes = [
            p.proc.node for p in placer.place_launch(launch, decision)
        ]
        assert nodes == [0, 0, 0, 0]

    def test_round_robin_within_node(self):
        machine = shepard(1)  # 2 CPU sockets
        placer = Placer(machine)
        launch = self.make_launch(machine, size=4)
        decision = MappingDecision(True, ProcKind.CPU, (MemKind.SYSTEM,))
        procs = [
            p.proc.uid for p in placer.place_launch(launch, decision)
        ]
        assert procs == ["n0.cpu0", "n0.cpu1", "n0.cpu0", "n0.cpu1"]

    def test_memory_closest_to_proc(self):
        machine = shepard(1)
        placer = Placer(machine)
        launch = self.make_launch(machine, size=2)
        decision = MappingDecision(True, ProcKind.CPU, (MemKind.SYSTEM,))
        placements = placer.place_launch(launch, decision)
        for placement in placements:
            assert placement.mems[0].socket == placement.proc.socket

    def test_deterministic(self):
        machine = shepard(2)
        placer = Placer(machine)
        launch = self.make_launch(machine, size=8)
        decision = MappingDecision(
            True, ProcKind.GPU, (MemKind.ZERO_COPY,)
        )
        a = placer.place_launch(launch, decision)
        b = placer.place_launch(launch, decision)
        assert [(p.proc.uid, p.mems[0].uid) for p in a] == [
            (p.proc.uid, p.mems[0].uid) for p in b
        ]


class TestNoise:
    def test_zero_sigma_exact(self):
        noise = NoiseModel(sigma=0.0, seed=1)
        assert noise.sample(2.0, "ctx", 0) == 2.0

    def test_deterministic_per_run_index(self):
        noise = NoiseModel(sigma=0.05, seed=1)
        assert noise.sample(2.0, "ctx", 3) == noise.sample(2.0, "ctx", 3)

    def test_varies_across_runs(self):
        noise = NoiseModel(sigma=0.05, seed=1)
        samples = noise.samples(2.0, "ctx", 10)
        assert len(set(samples)) == 10

    def test_mean_unbiased(self):
        noise = NoiseModel(sigma=0.05, seed=2)
        samples = noise.samples(1.0, "ctx", 4000)
        assert sum(samples) / len(samples) == pytest.approx(1.0, rel=0.01)

    def test_context_changes_draws(self):
        noise = NoiseModel(sigma=0.05, seed=1)
        assert noise.sample(1.0, "a", 0) != noise.sample(1.0, "b", 0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(sigma=-0.1)


class TestMemoryPlanner:
    def small_machine(self):
        return single_node(
            cpus=2,
            gpus=1,
            framebuffer_capacity=int(1.5 * MIB),
            sysmem_capacity=64 * MIB,
            zero_copy_capacity=64 * MIB,
        )

    def make(self, nbytes):
        b = GraphBuilder("mem")
        c = b.collection("c", nbytes=nbytes)
        k = b.task_kind("k", slots=[("c", Privilege.READ_WRITE)])
        b.launch(k, [c], size=2, flops=1.0)
        return b.build()

    def test_fits(self):
        machine = self.small_machine()
        graph = self.make(MIB)
        planner = MemoryPlanner(graph, machine)
        from repro.mapping import SearchSpace

        demand = planner.check(SearchSpace(graph, machine).default_mapping())
        assert demand.ok
        assert sum(demand.per_memory.values()) == MIB

    def test_overflow_detected(self):
        machine = self.small_machine()
        graph = self.make(4 * MIB)
        planner = MemoryPlanner(graph, machine)
        from repro.mapping import SearchSpace

        mapping = SearchSpace(graph, machine).default_mapping()
        demand = planner.check(mapping)
        assert not demand.ok
        with pytest.raises(OOMError):
            planner.ensure_fits(mapping)

    def test_spill_demotes_to_zero_copy(self):
        machine = self.small_machine()
        graph = self.make(4 * MIB)
        planner = MemoryPlanner(graph, machine)
        from repro.mapping import SearchSpace

        mapping = SearchSpace(graph, machine).default_mapping()
        spilled = planner.apply_spill(mapping)
        assert spilled.decision("k").mem_kinds[0] is MemKind.ZERO_COPY
        planner.ensure_fits(spilled)

    def test_spill_keeps_fitting_slots(self):
        machine = self.small_machine()
        b = GraphBuilder("mem2")
        small = b.collection("small", nbytes=MIB // 2)
        big = b.collection("big", nbytes=8 * MIB)
        k = b.task_kind(
            "k", slots=[("small", Privilege.READ), ("big", Privilege.READ)]
        )
        b.launch(k, [small, big], size=2, flops=1.0)
        graph = b.build()
        from repro.mapping import SearchSpace

        planner = MemoryPlanner(graph, machine)
        spilled = planner.apply_spill(
            SearchSpace(graph, machine).default_mapping()
        )
        mems = spilled.decision("k").mem_kinds
        assert mems[0] is MemKind.FRAMEBUFFER  # still fits
        assert mems[1] is MemKind.ZERO_COPY  # demoted

    def test_spill_raises_when_nothing_fits(self):
        machine = single_node(
            cpus=2,
            gpus=1,
            framebuffer_capacity=MIB,
            sysmem_capacity=MIB,
            zero_copy_capacity=MIB,
        )
        graph = self.make(64 * MIB)
        planner = MemoryPlanner(graph, machine)
        from repro.mapping import SearchSpace

        with pytest.raises(OOMError):
            planner.apply_spill(
                SearchSpace(graph, machine).default_mapping()
            )

    def test_overlapping_collections_not_double_counted(self):
        machine = self.small_machine()
        b = GraphBuilder("overlap")
        parts = b.partition("root", nbytes=MIB, parts=2, halo_bytes=1024)
        k = b.task_kind("k", slots=[("c", Privilege.READ_WRITE)])
        b.launch(k, [parts[0]], size=1, flops=1.0)
        b.launch(k, [parts[1]], size=1, flops=1.0)
        graph = b.build()
        from repro.mapping import SearchSpace

        planner = MemoryPlanner(graph, machine)
        demand = planner.check(SearchSpace(graph, machine).default_mapping())
        # Union of the two halo-widened parts is exactly the root.
        assert sum(demand.per_memory.values()) == MIB
