"""Unit tests for Algorithm 1's orderings (tasks by runtime, collections
by size) and the search-result plumbing."""


from repro.core import OracleConfig, SimulationOracle
from repro.mapping import SearchSpace
from repro.runtime import SimConfig, Simulator
from repro.search.base import SearchAlgorithm
from repro.taskgraph import GraphBuilder, Privilege


def make_graph():
    """Two kinds with very different work, slots of different sizes."""
    b = GraphBuilder("order")
    big = b.collection("big", nbytes=1 << 24)
    small = b.collection("small", nbytes=1 << 12)
    heavy = b.task_kind(
        "heavy", slots=[("small", Privilege.READ), ("big", Privilege.READ_WRITE)]
    )
    light = b.task_kind("light", slots=[("small", Privilege.READ_WRITE)])
    b.launch(heavy, [small, big], size=2, flops=5e9)
    b.launch(light, [small], size=2, flops=1e6)
    return b.build()


class TestOrderings:
    def test_tasks_ordered_by_runtime_desc(self, mini_machine):
        graph = make_graph()
        sim = Simulator(graph, mini_machine, SimConfig(noise_sigma=0))
        oracle = SimulationOracle(sim, OracleConfig(runs_per_eval=1))
        space = SearchSpace(graph, mini_machine)
        order = SearchAlgorithm.ordered_kinds(
            space, oracle, space.default_mapping()
        )
        assert order == ["heavy", "light"]

    def test_slots_ordered_by_size_desc(self, mini_machine):
        graph = make_graph()
        space = SearchSpace(graph, mini_machine)
        slots = SearchAlgorithm.ordered_slots(space, "heavy")
        # Slot 1 binds the 16 MiB collection, slot 0 the 4 KiB one.
        assert slots == [1, 0]

    def test_order_deterministic_tiebreak(self, mini_machine):
        b = GraphBuilder("tie")
        c = b.collection("c", nbytes=1 << 12)
        ka = b.task_kind("a_kind", slots=[("c", Privilege.READ)])
        kb = b.task_kind("b_kind", slots=[("c", Privilege.READ)])
        b.launch(ka, [c], size=1, flops=1e6)
        b.launch(kb, [c], size=1, flops=1e6)
        graph = b.build()
        sim = Simulator(graph, mini_machine, SimConfig(noise_sigma=0))
        oracle = SimulationOracle(sim, OracleConfig(runs_per_eval=1))
        space = SearchSpace(graph, mini_machine)
        order = SearchAlgorithm.ordered_kinds(
            space, oracle, space.default_mapping()
        )
        # Equal runtimes fall back to name order — stable across runs.
        assert order == ["a_kind", "b_kind"]
