"""Unit tests for repro.util.timer with a fake clock."""

import pytest

from repro.util.timer import Budget, Stopwatch


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestStopwatch:
    def test_accumulates(self):
        clock = FakeClock()
        watch = Stopwatch(clock).start()
        clock.advance(2.0)
        assert watch.elapsed == pytest.approx(2.0)
        watch.stop()
        clock.advance(5.0)
        assert watch.elapsed == pytest.approx(2.0)
        watch.start()
        clock.advance(1.0)
        assert watch.elapsed == pytest.approx(3.0)

    def test_reset(self):
        clock = FakeClock()
        watch = Stopwatch(clock).start()
        clock.advance(1.0)
        watch.reset()
        assert watch.elapsed == 0.0
        assert not watch.running

    def test_double_start_is_noop(self):
        clock = FakeClock()
        watch = Stopwatch(clock).start().start()
        clock.advance(1.0)
        assert watch.elapsed == pytest.approx(1.0)


class TestBudget:
    def test_time_limit(self):
        clock = FakeClock()
        budget = Budget(max_seconds=10.0, clock=clock)
        assert not budget.exhausted
        clock.advance(10.1)
        assert budget.exhausted

    def test_eval_limit(self):
        budget = Budget(max_evaluations=2)
        with budget.evaluation():
            pass
        assert not budget.exhausted
        with budget.evaluation():
            pass
        assert budget.exhausted
        assert budget.evaluations == 2

    def test_unlimited(self):
        clock = FakeClock()
        budget = Budget(clock=clock)
        clock.advance(1e9)
        assert not budget.exhausted
        assert budget.remaining_evaluations == float("inf")

    def test_evaluation_fraction(self):
        clock = FakeClock()
        budget = Budget(clock=clock)
        with budget.evaluation():
            clock.advance(3.0)
        clock.advance(1.0)
        assert budget.evaluation_fraction == pytest.approx(0.75)

    def test_failed_evaluation_not_counted(self):
        budget = Budget()
        with pytest.raises(RuntimeError):
            with budget.evaluation():
                raise RuntimeError("boom")
        assert budget.evaluations == 0

    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError):
            Budget(max_seconds=-1)
        with pytest.raises(ValueError):
            Budget(max_evaluations=-1)
