"""Regression test: noise draws are stable across *processes*.

``NoiseModel`` once derived its per-context stream from ``hash(context)``;
Python randomises string hashing per process (PYTHONHASHSEED), so
identically-seeded experiments produced different measurements in
different runs.  The fix derives the stream from ``repr(context)``.
"""

import os
import subprocess
import sys
from pathlib import Path

import repro

SNIPPET = r"""
from repro.runtime.noise import NoiseModel
noise = NoiseModel(sigma=0.05, seed=42)
context = (("kind", ("a", "b")), ("other", (1, 2)))
print(repr([noise.sample(1.0, context, i) for i in range(3)]))
"""


def run_subprocess(hash_seed: str) -> str:
    # A minimal env isolates the hash-seed override, but the subprocess
    # still needs to find the repro package: put the directory we
    # imported it from (plus any caller-configured PYTHONPATH) back.
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    python_path = os.pathsep.join(
        [src_dir] + [p for p in [os.environ.get("PYTHONPATH")] if p]
    )
    result = subprocess.run(
        [sys.executable, "-c", SNIPPET],
        capture_output=True,
        text=True,
        env={
            "PYTHONHASHSEED": hash_seed,
            "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
            "PYTHONPATH": python_path,
        },
        check=True,
    )
    return result.stdout.strip()


def test_noise_stable_across_hash_seeds():
    a = run_subprocess("1")
    b = run_subprocess("2")
    assert a == b
    assert "[" in a  # sanity: produced a list
