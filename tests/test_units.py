"""Unit tests for repro.util.units."""

import pytest

from repro.util.units import (
    GIB,
    KIB,
    MIB,
    format_bytes,
    format_rate,
    format_time,
    parse_bytes,
)


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kib(self):
        assert format_bytes(2 * KIB) == "2.0 KiB"

    def test_gib(self):
        assert format_bytes(16 * GIB) == "16.0 GiB"

    def test_fractional(self):
        assert format_bytes(1536) == "1.5 KiB"

    def test_negative(self):
        assert format_bytes(-MIB) == "-1.0 MiB"

    def test_zero(self):
        assert format_bytes(0) == "0 B"


class TestParseBytes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("512", 512),
            ("512B", 512),
            ("2 KiB", 2 * KIB),
            ("2kb", 2 * KIB),
            ("16 GiB", 16 * GIB),
            ("1.5 MiB", int(1.5 * MIB)),
        ],
    )
    def test_roundtrip(self, text, expected):
        assert parse_bytes(text) == expected

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            parse_bytes("sixteen gigabytes")

    def test_parse_format_roundtrip(self):
        assert parse_bytes(format_bytes(4 * GIB)) == 4 * GIB


class TestFormatTime:
    def test_seconds(self):
        assert format_time(1.5) == "1.50 s"

    def test_millis(self):
        assert format_time(1.24e-3) == "1.24 ms"

    def test_micros(self):
        assert format_time(3.2e-6) == "3.20 us"

    def test_nanos(self):
        assert "ns" in format_time(5e-9)

    def test_minutes(self):
        assert format_time(90.0) == "1m30.0s"

    def test_negative(self):
        assert format_time(-0.5).startswith("-")


def test_format_rate():
    assert format_rate(2 * GIB) == "2.0 GiB/s"
