"""Unit tests for logging helpers and the copy engine."""

import logging

import pytest

from repro.machine import Topology, shepard
from repro.runtime.copies import DMA_EFFICIENCY, CopyEngine
from repro.runtime.events import TimelinePool
from repro.runtime.instances import CopyNeed
from repro.util.logging import configure, get_logger, kv
from repro.util.units import MIB


class TestLogging:
    def test_namespacing(self):
        assert get_logger("search.ccd").name == "repro.search.ccd"
        assert get_logger("repro.core").name == "repro.core"

    def test_configure_idempotent(self):
        configure()
        configure()
        root = logging.getLogger("repro")
        stream_handlers = [
            h for h in root.handlers if isinstance(h, logging.StreamHandler)
        ]
        assert len(stream_handlers) == 1

    def test_kv_formatting(self):
        line = kv("eval", n=3, t=0.5, note="two words", empty="")
        assert line.startswith("eval ")
        assert "n=3" in line and "t=0.5" in line
        assert "note='two words'" in line and "empty=''" in line

    def test_kv_compact_floats(self):
        assert "x=1.23457e-07" in kv("e", x=1.234567e-7)


class TestCopyEngine:
    @pytest.fixture
    def engine(self):
        machine = shepard(2)
        return CopyEngine(Topology(machine), TimelinePool())

    def test_duration_includes_dma_efficiency(self, engine):
        need = CopyNeed(src_mem="n0.fb0", lo=0, hi=64 * MIB, src_time=0.0)
        done = engine.execute(need, "n0.zc", ready=0.0)
        link_bw = 1.2e10  # host-device channel
        expected = 1e-5 + 64 * MIB / (link_bw * DMA_EFFICIENCY)
        assert done == pytest.approx(expected, rel=1e-6)

    def test_respects_src_time_and_ready(self, engine):
        need = CopyNeed(src_mem="n0.fb0", lo=0, hi=MIB, src_time=5.0)
        done = engine.execute(need, "n0.zc", ready=2.0)
        assert done > 5.0
        need2 = CopyNeed(src_mem="n0.fb0", lo=0, hi=MIB, src_time=0.0)
        done2 = engine.execute(need2, "n0.zc", ready=20.0)
        assert done2 > 20.0

    def test_channel_contention_serializes(self, engine):
        a = CopyNeed(src_mem="n0.fb0", lo=0, hi=64 * MIB, src_time=0.0)
        b = CopyNeed(src_mem="n0.fb0", lo=0, hi=64 * MIB, src_time=0.0)
        t1 = engine.execute(a, "n0.zc", ready=0.0)
        t2 = engine.execute(b, "n0.zc", ready=0.0)
        assert t2 >= 2 * t1 * 0.99  # second copy queued behind the first

    def test_same_memory_free(self, engine):
        need = CopyNeed(src_mem="n0.zc", lo=0, hi=MIB, src_time=3.0)
        assert engine.execute(need, "n0.zc", ready=1.0) == 3.0
        assert engine.stats.num_copies == 0

    def test_stats_accumulate(self, engine):
        need = CopyNeed(src_mem="n0.fb0", lo=0, hi=MIB, src_time=0.0)
        engine.execute(need, "n0.zc", ready=0.0)
        assert engine.stats.num_copies == 1
        assert engine.stats.bytes_moved == MIB
        assert engine.stats.copy_seconds > 0

    def test_cross_node_multi_hop(self, engine):
        need = CopyNeed(src_mem="n0.fb0", lo=0, hi=MIB, src_time=0.0)
        done = engine.execute(need, "n1.fb0", ready=0.0)
        assert done > 0
        assert engine.stats.num_copies == 1
