"""The bound soundness contract: ``LB(mapping) <= simulated makespan``.

This is the property every other use of :mod:`repro.analysis.bounds`
rests on — bound-based search pruning is result-preserving *only*
because the lower bound never exceeds what the simulator would have
measured.  The sweep here covers every bundled application on both
machine models with randomly drawn valid mappings, always pricing the
mapping the simulator actually executed (spill demotions applied), and
tolerates zero violations.

A second property pins the bound's direction: upgrading the machine
(faster processors, fatter links, lower latencies and overheads) can
only lower the bound for the same mapping.
"""

import random
from dataclasses import replace

import pytest

from repro.analysis.bounds import StaticBoundAnalyzer
from repro.apps import make_app
from repro.machine import lassen, shepard
from repro.machine.model import Machine
from repro.mapping.mapping import Mapping
from repro.mapping.space import SearchSpace
from repro.runtime.simulator import SimConfig, Simulator

#: Small inputs so the full sweep stays a few seconds per case
#: (mirrors benchmarks/smoke.py).
APP_INPUTS = {
    "circuit": {"nodes": 200, "wires": 800},
    "stencil": {"nx": 200, "ny": 200},
    "pennant": {"zx": 64, "zy": 36},
    "htr": {"x": 8, "y": 8, "z": 9},
    "maestro": {"lf_count": 4, "lf_res": 16},
}

MACHINES = {"shepard": lambda: shepard(2), "lassen": lambda: lassen(2)}

MAPPINGS_PER_CASE = 8


def _upgrade(machine: Machine, speedup: float) -> Machine:
    """The same machine with every rate scaled up and every fixed cost
    scaled down by ``speedup``."""
    return Machine(
        name=f"{machine.name}-x{speedup:g}",
        processors=[
            replace(
                p,
                throughput=p.throughput * speedup,
                launch_overhead=p.launch_overhead / speedup,
            )
            for p in machine.processors
        ],
        memories=list(machine.memories),
        access_links=[
            replace(
                link,
                bandwidth=link.bandwidth * speedup,
                latency=link.latency / speedup,
            )
            for link in machine.access_links
        ],
        channels=[
            replace(
                chan,
                bandwidth=chan.bandwidth * speedup,
                latency=chan.latency / speedup,
            )
            for chan in machine.channels
        ],
    )


def _mappings(space: SearchSpace, seed: int = 20240917):
    rng = random.Random(seed)
    yield space.default_mapping()
    for _ in range(MAPPINGS_PER_CASE):
        yield space.random_mapping(rng, valid=True)


@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("app_name", sorted(APP_INPUTS))
def test_lower_bound_never_exceeds_makespan(app_name, machine_name):
    machine = MACHINES[machine_name]()
    graph = make_app(app_name, **APP_INPUTS[app_name]).graph(machine)
    space = SearchSpace(graph, machine)
    simulator = Simulator(
        graph, machine, SimConfig(noise_sigma=0.0, spill=True)
    )
    analyzer = StaticBoundAnalyzer(graph, machine)
    checked = 0
    for mapping in _mappings(space):
        result = simulator.run(mapping)
        bd = analyzer.breakdown(result.executed_mapping)
        lb = bd.total
        assert lb <= result.makespan, (
            f"{app_name}/{machine_name}: LB {lb!r} exceeds simulated "
            f"makespan {result.makespan!r} for {mapping.key()}"
        )
        assert lb > 0.0
        # Per-component soundness: every component is itself a lower
        # bound, and channel-path routing can only tighten (never
        # loosen) the incident-bandwidth communication aggregate.
        assert bd.communication <= result.makespan
        assert bd.schedule <= result.makespan
        assert bd.communication >= bd.communication_incident
        checked += 1
    assert checked == MAPPINGS_PER_CASE + 1


@pytest.mark.parametrize("app_name", ["stencil", "maestro"])
def test_lower_bound_monotone_under_machine_upgrade(app_name):
    base = shepard(2)
    graph = make_app(app_name, **APP_INPUTS[app_name]).graph(base)
    space = SearchSpace(graph, base)
    analyzer = StaticBoundAnalyzer(graph, base)
    upgrades = [
        StaticBoundAnalyzer(graph, _upgrade(base, k)) for k in (2.0, 8.0)
    ]
    for mapping in _mappings(space):
        bound = analyzer.lower_bound(mapping)
        previous = bound
        for upgraded in upgrades:
            faster = upgraded.lower_bound(mapping)
            assert faster <= previous, (
                f"{app_name}: bound rose from {previous!r} to {faster!r} "
                "on an upgraded machine"
            )
            previous = faster


def test_partial_mapping_bound_is_sound():
    """A mapping that omits kinds still yields a positive bound no
    larger than the full mapping's bound (fewer constraints can only
    loosen a lower bound)."""
    machine = shepard(2)
    graph = make_app("stencil", **APP_INPUTS["stencil"]).graph(machine)
    space = SearchSpace(graph, machine)
    analyzer = StaticBoundAnalyzer(graph, machine)
    full = space.default_mapping()
    kinds = full.kind_names()
    partial = Mapping(
        {k: full.decision(k) for k in kinds[: max(1, len(kinds) // 2)]}
    )
    lb_partial = analyzer.lower_bound(partial)
    lb_full = analyzer.lower_bound(full)
    assert 0.0 < lb_partial <= lb_full
