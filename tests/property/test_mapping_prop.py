"""Property-based tests on mappings and the search-space codec."""

from hypothesis import given
from hypothesis import strategies as st

from repro.machine import single_node
from repro.machine.kinds import MemKind
from repro.mapping import SearchSpace, is_valid
from repro.taskgraph import GraphBuilder, Privilege
from repro.util.rng import RngStream

_MACHINE = single_node(cpus=4, gpus=1)


def _graph():
    b = GraphBuilder("prop")
    c1 = b.collection("c1", nbytes=1 << 20)
    c2 = b.collection("c2", nbytes=1 << 18)
    k1 = b.task_kind(
        "k1", slots=[("a", Privilege.READ_WRITE), ("b", Privilege.READ)]
    )
    k2 = b.task_kind("k2", slots=[("a", Privilege.READ)])
    b.launch(k1, [c1, c2], size=2, flops=1e6)
    b.launch(k2, [c1], size=2, flops=1e6)
    return b.build()


_GRAPH = _graph()
_SPACE = SearchSpace(_GRAPH, _MACHINE)


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_random_mappings_always_valid(seed):
    mapping = _SPACE.random_mapping(RngStream(seed))
    assert is_valid(_GRAPH, _MACHINE, mapping)


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_encode_decode_roundtrip(seed):
    mapping = _SPACE.random_mapping(RngStream(seed))
    assert _SPACE.decode(_SPACE.encode(mapping)) == mapping


_VECTOR_LEN = len(_SPACE.vector_dims())


@given(
    st.lists(
        st.integers(min_value=0, max_value=1000),
        min_size=_VECTOR_LEN,
        max_size=_VECTOR_LEN,
    )
)
def test_decode_total(vector):
    """Any integer vector decodes into a structurally complete mapping."""
    mapping = _SPACE.decode(vector)
    assert set(mapping.kind_names()) == {"k1", "k2"}
    for name in mapping.kind_names():
        decision = mapping.decision(name)
        assert decision.num_slots == _GRAPH.kind(name).num_slots


@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.sampled_from(list(MemKind)),
    st.integers(min_value=0, max_value=1),
)
def test_functional_update_changes_only_target(seed, mem, slot):
    mapping = _SPACE.random_mapping(RngStream(seed))
    new = mapping.with_mem("k1", slot, mem)
    assert new.decision("k2") == mapping.decision("k2")
    assert new.decision("k1").mem_kinds[slot] is mem


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_mapping_key_is_identity(seed):
    a = _SPACE.random_mapping(RngStream(seed))
    b = _SPACE.random_mapping(RngStream(seed))
    assert a == b and a.key() == b.key() and hash(a) == hash(b)
