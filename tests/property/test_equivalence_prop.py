"""Property test for the AM6xx equivalence prover's service contract:
whenever the prover says *equivalent*, fresh noise-free tuning runs of
the two workloads bit-compare identical — and engineered inequivalent
pairs are rejected with the right blocking witness.

200 seeded (workload, slack-perturbation) pairs are drawn from a small
pool of base workloads; every tune is memoized by (base, perturbation)
so the wall-clock cost is bounded by the number of *distinct* tunes,
not the number of pairs.
"""

from __future__ import annotations

import json
import random

from repro.analysis.equivalence import (
    Workload,
    footprint_bounds,
    prove_equivalent,
    touchable_resources,
)
from repro.analysis.routing import channel_key
from repro.apps import make_app
from repro.core import AutoMapDriver, OracleConfig
from repro.machine import MACHINE_ZOO
from repro.machine.overrides import apply_machine_params
from repro.runtime import SimConfig
from repro.util.units import GIB

PAIRS = 200

#: Base workload pool: (app kwargs, machine, nodes, algorithm, seed).
BASES = [
    ("forkjoin", dict(width=2, iterations=1, elems=4096), "shepard", 1, "ccd", 3),
    ("forkjoin", dict(width=2, iterations=2, elems=65536), "mirrored", 1, "cd", 5),
    ("halo", dict(parts=2, elems=512, halo=1, iterations=1), "lopsided", 1, "ccd", 7),
    ("reduction", dict(fanout=2, levels=2, elems=4096), "helix", 1, "random", 11),
]


def _build(base_index):
    app_name, kwargs, machine_name, nodes, algorithm, seed = BASES[base_index]
    machine = MACHINE_ZOO[machine_name](nodes)
    app = make_app(app_name, **kwargs)
    config = {
        "algorithm": algorithm,
        "seed": seed,
        "max_suggestions": 6,
        "noise_sigma": 0.0,
        "spill": True,
    }
    return app, machine, config


def _materialize(base_index, params):
    """(graph, machine, space) of a base workload with overrides."""
    app, machine, config = _build(base_index)
    if params:
        machine = apply_machine_params(machine, params)
    graph = app.graph(machine)
    space = app.space(machine)
    return graph, machine, space, config


def _perturbation(base_index, rng):
    """A seeded slack perturbation document for one base workload.
    Capacity slack and renames are engineered to be provable;
    off-route channel tweaks may legitimately fail to prove (weighted
    routing) and are only checked when they do prove."""
    _, machine, _ = _build(base_index)
    graph, machine, space, _ = _materialize(base_index, {})
    kind = rng.choice(("capacity", "rename", "channel", "combo"))
    if kind in ("capacity", "combo"):
        bounds = footprint_bounds(graph, machine, space)
        if any(m.capacity < bounds[m.uid] for m in machine.memories):
            kind = "rename"  # slack lemma inapplicable; fall back
    params = {}
    if kind in ("capacity", "combo"):
        slack = rng.choice((GIB, 2 * GIB, 4 * GIB))
        params["memory_capacity"] = {
            m.uid: m.capacity + slack for m in machine.memories
        }
    if kind in ("rename", "combo"):
        params["name"] = f"{machine.name}-v{rng.randrange(1000)}"
    if kind == "channel":
        touch = touchable_resources(graph, machine, space)
        off = [
            c
            for c in machine.channels
            if channel_key(c.mem_a, c.mem_b) not in touch.channel_keys
        ]
        if off:
            chan = rng.choice(off)
            params["channel_bandwidth"] = {
                f"{chan.mem_a}|{chan.mem_b}": chan.bandwidth
                * rng.choice((2, 3, 5))
            }
            return params, False  # accepted => must bit-match
        params["name"] = f"{machine.name}-v{rng.randrange(1000)}"
    return params, True  # engineered to be provable


class _TuneCache:
    """Memoized fresh tunes keyed by (base, perturbation-doc)."""

    def __init__(self):
        self._reports = {}

    def report(self, base_index, params):
        key = (base_index, json.dumps(params, sort_keys=True))
        if key not in self._reports:
            graph, machine, space, config = _materialize(
                base_index, params
            )
            self._reports[key] = AutoMapDriver(
                graph,
                machine,
                algorithm=config["algorithm"],
                oracle_config=OracleConfig(
                    max_suggestions=config["max_suggestions"]
                ),
                sim_config=SimConfig(
                    noise_sigma=0.0,
                    seed=config["seed"],
                    spill=True,
                    incremental=True,
                ),
                space=space,
                seed=config["seed"],
            ).tune()
        return self._reports[key]


def _report_key(report):
    """The bit-comparable identity of a tuning report."""
    return (
        report.best_mapping.key(),
        report.best_mean,
        report.best_stddev,
        report.suggested,
        report.evaluated,
        report.invalid_suggestions,
        report.failed_evaluations,
        tuple(report.search.trace),
        tuple((m.key(), a, b, c) for m, a, b, c in report.finalists),
    )


class TestEquivalenceImpliesBitIdentity:
    def test_200_seeded_pairs(self):
        tunes = _TuneCache()
        proved = 0
        for i in range(PAIRS):
            rng = random.Random(f"equiv-prop:{i}")
            base_index = rng.randrange(len(BASES))
            params, must_prove = _perturbation(base_index, rng)

            graph, machine, space, config = _materialize(base_index, {})
            p_graph, p_machine, p_space, _ = _materialize(
                base_index, params
            )
            proof = prove_equivalent(
                Workload(graph, machine, config, None, space),
                Workload(p_graph, p_machine, config, None, p_space),
            )
            if not proof.equivalent:
                assert not must_prove, (
                    f"pair {i}: engineered slack rejected: {proof.witness}"
                )
                continue
            proved += 1
            base_report = tunes.report(base_index, {})
            pert_report = tunes.report(base_index, params)
            assert _report_key(base_report) == _report_key(pert_report), (
                f"pair {i}: proved equivalent but tunes differ "
                f"(params {params})"
            )
            if params.get("name"):
                assert proof.relabel.get("machine") == params["name"]
            else:
                assert proof.relabel == {}
        # The sampler is engineered so most pairs prove: a silent
        # all-rejected run would make the test vacuous.
        assert proved >= PAIRS // 2


class TestEngineeredInequivalence:
    def test_capacity_below_bound_rejected(self):
        graph, machine, space, config = _materialize(1, {})
        bounds = footprint_bounds(graph, machine, space)
        touch = touchable_resources(graph, machine, space)
        uid = sorted(touch.mem_uids)[0]
        assert bounds[uid] > 1024
        p_graph, p_machine, p_space, _ = _materialize(
            1, {"memory_capacity": {uid: 1024}}
        )
        proof = prove_equivalent(
            Workload(graph, machine, config, None, space),
            Workload(p_graph, p_machine, config, None, p_space),
        )
        assert not proof.equivalent
        assert "below the footprint bound" in proof.witness
        assert uid in proof.witness

    def test_on_route_channel_rejected(self):
        graph, machine, space, config = _materialize(0, {})
        touch = touchable_resources(graph, machine, space)
        chan = next(
            c
            for c in machine.channels
            if channel_key(c.mem_a, c.mem_b) in touch.channel_keys
        )
        p_graph, p_machine, p_space, _ = _materialize(
            0,
            {
                "channel_bandwidth": {
                    f"{chan.mem_a}|{chan.mem_b}": chan.bandwidth * 2
                }
            },
        )
        proof = prove_equivalent(
            Workload(graph, machine, config, None, space),
            Workload(p_graph, p_machine, config, None, p_space),
        )
        assert not proof.equivalent
        assert "reachable route" in proof.witness

    def test_config_mismatch_rejected(self):
        graph, machine, space, config = _materialize(0, {})
        other = dict(config, max_suggestions=7)
        proof = prove_equivalent(
            Workload(graph, machine, config, None, space),
            Workload(graph, machine, other, None, space),
        )
        assert not proof.equivalent
        assert "max_suggestions" in proof.witness
