"""The fuzz harness and its soundness invariants (the tentpole).

Three layers of coverage:

* the harness machinery itself — case determinism, JSON round-trip,
  shrinking, corpus IO, and detection (a deliberately broken invariant
  check must produce violations, not silence);
* a small seeded fuzz run that must come back with zero violations;
* replay of the committed seed corpus (``tests/property/corpus/``) —
  every shrunk reproducer ever committed stays green forever.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.fuzz import (
    INVARIANTS,
    FuzzCase,
    build_case,
    fuzz,
    load_corpus,
    run_case,
    sample_case,
    save_case,
    shrink_case,
)
from repro.fuzz.harness import Violation

CORPUS = Path(__file__).parent / "corpus"

SMALL = FuzzCase(
    generator="forkjoin",
    gen_params={"width": 2, "elems": 4096, "iterations": 1},
    machine="shepard",
    machine_arg=1,
    algorithm="ccd",
    seed=13,
    noise_sigma=0.0,
    max_suggestions=10,
    kill_after=2,
    mappings=2,
)


class TestCaseModel:
    def test_sampling_is_deterministic(self):
        a = sample_case(random.Random("7:3"))
        b = sample_case(random.Random("7:3"))
        assert a == b

    def test_distinct_indices_vary(self):
        docs = {
            json.dumps(sample_case(random.Random(f"0:{i}")).to_doc(),
                       sort_keys=True)
            for i in range(20)
        }
        assert len(docs) > 10

    def test_doc_round_trip(self):
        for i in range(10):
            case = sample_case(random.Random(f"1:{i}"))
            doc = json.loads(json.dumps(case.to_doc()))
            assert FuzzCase.from_doc(doc) == case

    def test_from_doc_rejects_foreign_format(self):
        with pytest.raises(ValueError):
            FuzzCase.from_doc({"format": "something-else"})

    def test_sampled_cases_build(self):
        for i in range(10):
            case = sample_case(random.Random(f"2:{i}"))
            _, graph, machine = build_case(case)
            assert len(graph) > 0
            assert machine.num_nodes >= 1

    def test_build_rejects_unknown_machine(self):
        with pytest.raises(ValueError):
            build_case(SMALL.with_(machine="nonesuch"))

    def test_build_rejects_bad_generator_knob(self):
        with pytest.raises(ValueError):
            build_case(SMALL.with_(gen_params={"width": -1}))


class TestInvariantChecks:
    def test_small_case_is_sound(self):
        result = run_case(SMALL)
        assert result.ok, result.violations

    def test_static_only_selection(self):
        result = run_case(SMALL, invariants=("bound", "canonical"))
        assert result.ok, result.violations

    def test_resume_only_selection(self, tmp_path):
        result = run_case(SMALL, workdir=tmp_path, invariants=("resume",))
        assert result.ok, result.violations

    def test_crash_reported_not_raised(self):
        result = run_case(SMALL.with_(generator="nonesuch"))
        assert result.violated() == {"crash"}

    def test_broken_bound_is_detected(self, monkeypatch):
        """The harness must actually be able to fail: inflate the
        reported critical-path bound past any makespan and the bound
        invariant has to fire on every sampled mapping."""
        from repro.analysis.bounds import StaticBoundAnalyzer

        real = StaticBoundAnalyzer.breakdown

        def inflated(self, mapping):
            bd = real(self, mapping)
            object.__setattr__(bd, "critical_path", 1e30)
            return bd

        monkeypatch.setattr(StaticBoundAnalyzer, "breakdown", inflated)
        result = run_case(SMALL, invariants=("bound",))
        assert result.violated() == {"bound"}
        assert len(result.violations) == SMALL.mappings + 1

    def test_broken_relabel_is_detected(self, monkeypatch):
        """A relabeling that swaps kinds on an asymmetric machine must
        be flagged — makespans genuinely differ under it."""
        from repro.analysis.symmetry import KindRelabeling, MachineSymmetry
        from repro.machine.model import ProcKind

        bogus = KindRelabeling(
            proc_map={ProcKind.CPU: ProcKind.GPU, ProcKind.GPU: ProcKind.CPU}
        )
        monkeypatch.setattr(
            MachineSymmetry, "automorphisms", lambda self: (bogus,)
        )
        result = run_case(SMALL, invariants=("relabel",))
        assert result.violated() == {"relabel"}


class TestShrinking:
    def test_shrinks_toward_minimal(self):
        """With a checker that fails on any forkjoin case, shrinking
        must strip every optional knob and cheapen the search config."""
        case = FuzzCase(
            generator="forkjoin",
            gen_params={"width": 8, "elems": 65536, "iterations": 3},
            machine="helix",
            machine_arg=6,
            algorithm="opentuner",
            seed=1,
            noise_sigma=0.04,
            max_suggestions=40,
            kill_after=5,
            mappings=6,
        )
        check = lambda c: (  # noqa: E731
            {"bound"} if c.generator == "forkjoin" else set()
        )
        small = shrink_case(case, {"bound"}, check=check)
        assert small.gen_params == {}
        assert small.machine_arg == 1
        assert small.algorithm == "ccd"
        assert small.noise_sigma == 0.0
        assert small.mappings == 1
        assert small.max_suggestions == 6

    def test_shrink_preserves_failure(self):
        """Shrinking never walks off the failing region: a checker that
        only fails above a width threshold keeps width above it."""
        case = FuzzCase(
            generator="forkjoin", gen_params={"width": 8}, machine="shepard"
        )
        check = lambda c: (  # noqa: E731
            {"bound"} if c.gen_params.get("width", 0) >= 4 else set()
        )
        small = shrink_case(case, {"bound"}, check=check)
        assert small.gen_params.get("width") == 4

    def test_sound_case_shrinks_to_itself(self):
        check = lambda c: set()  # noqa: E731
        assert shrink_case(SMALL, {"bound"}, check=check) == SMALL


class TestFuzzLoop:
    def test_short_run_is_clean_and_deterministic(self):
        a = fuzz(seed=7, budget=4)
        b = fuzz(seed=7, budget=4)
        assert a.ok, [r.violations for r in a.failures()]
        assert [r.case for r in a.results] == [r.case for r in b.results]

    def test_failures_are_shrunk_and_saved(self, tmp_path):
        """End to end on an injected bug: fuzz() shrinks the failure and
        save_case/load_corpus round-trips it as a replayable file."""
        fail = FuzzCase(generator="halo", gen_params={"halo": 64})
        viol = [Violation("bound", "injected")]
        check = lambda c: (  # noqa: E731
            {"bound"} if c.generator == "halo" else set()
        )
        small = shrink_case(fail, {"bound"}, check=check)
        path = save_case(small, tmp_path, invariant="bound")
        assert path.name.startswith("case-bound-halo-")
        [(loaded_path, loaded)] = load_corpus(tmp_path)
        assert loaded_path == path
        assert loaded == small
        assert viol[0].invariant in check(loaded)


class TestCorpusReplay:
    """The committed seed corpus is the regression gate: every case in
    ``tests/property/corpus/`` must replay with zero violations."""

    def corpus(self):
        cases = load_corpus(CORPUS)
        assert len(cases) >= 5, "seed corpus went missing"
        return cases

    def test_corpus_is_non_empty_and_documented(self):
        for path, case in self.corpus():
            assert case.note, f"{path.name} lacks a provenance note"

    @pytest.mark.parametrize(
        "name", sorted(p.name for p in CORPUS.glob("*.json"))
    )
    def test_replays_clean(self, name):
        [case] = [c for p, c in load_corpus(CORPUS) if p.name == name]
        result = run_case(case, invariants=INVARIANTS)
        assert result.ok, (case.label(), result.violations)
