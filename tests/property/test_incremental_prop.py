"""Extended incremental-identity sweep (nightly; ``slow`` marker).

The per-push identity tests (``tests/test_incremental.py``) cover short
mutation chains; this sweep runs the full matrix the incremental engine
was validated against — every app on both machine families, spill on
and off, 40-step chains with random jumps and revisits — comparing
reports, noise samples and raised errors float-for-float.
"""

from __future__ import annotations

import pytest

from repro.apps import make_app
from repro.machine import lassen, shepard
from repro.mapping import SearchSpace
from repro.runtime import SimConfig, Simulator
from repro.util.rng import RngStream

from tests.test_incremental import (
    APP_INPUTS,
    _chain,
    _run_both,
)

pytestmark = pytest.mark.slow

MACHINES = {"shepard": shepard, "lassen": lassen}


@pytest.mark.parametrize("spill", [True, False])
@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("app_name", sorted(APP_INPUTS))
def test_long_chain_identity(app_name, machine_name, spill):
    machine = MACHINES[machine_name](2)
    app = make_app(app_name, **APP_INPUTS[app_name])
    graph = app.graph(machine)
    space = SearchSpace(graph, machine)
    sim_inc = Simulator(
        graph, machine, SimConfig(seed=3, spill=spill, incremental=True)
    )
    sim_full = Simulator(
        graph, machine, SimConfig(seed=3, spill=spill, incremental=False)
    )
    rng = RngStream(42).fork(app_name, machine_name, str(spill))
    executed = 0
    for mapping in _chain(space, rng, length=40):
        if _run_both(sim_inc, sim_full, mapping):
            executed += 1
    assert executed > 0
