"""Property-based tests: canonicalization is idempotent and
runtime-preserving (``simulate(m) == simulate(canonical(m))``)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Canonicalizer
from repro.machine import shepard, single_node
from repro.mapping import SearchSpace
from repro.runtime import SimConfig, Simulator
from repro.taskgraph import ArgSlot, GraphBuilder, Privilege
from repro.util.rng import RngStream

_MACHINES = {
    "single": single_node(cpus=4, gpus=1),
    "shepard2": shepard(2),
}


def _graph(sizes, zero_byte_slot):
    """A chain of kinds with configurable group sizes; optionally the
    last kind carries an extra zero-byte argument (a foldable memory
    coordinate)."""
    b = GraphBuilder("prop")
    data = b.collection("data", nbytes=1 << 20)
    extra = (
        b.collection("empty", nbytes=0) if zero_byte_slot else None
    )
    for i, size in enumerate(sizes):
        slots = [ArgSlot("d", Privilege.READ_WRITE)]
        args = [data]
        if zero_byte_slot and i == len(sizes) - 1:
            slots.append(ArgSlot("e", Privilege.READ))
            args.append(extra)
        kind = b.task_kind(f"k{i}", slots=slots)
        b.launch(kind, args, size=size, flops=1e6)
    return b.build()


graph_st = st.tuples(
    st.lists(
        st.integers(min_value=1, max_value=4), min_size=1, max_size=4
    ),
    st.booleans(),
)


@settings(max_examples=60, deadline=None)
@given(
    graph_st,
    st.sampled_from(sorted(_MACHINES)),
    st.integers(min_value=0, max_value=2**31),
)
def test_canonical_is_idempotent(params, machine_name, seed):
    sizes, zero_byte = params
    machine = _MACHINES[machine_name]
    graph = _graph(sizes, zero_byte)
    canon = Canonicalizer(graph, machine)
    mapping = SearchSpace(graph, machine).random_mapping(RngStream(seed))
    once = canon.canonical(mapping)
    assert canon.canonical(once).key() == once.key()


@settings(max_examples=40, deadline=None)
@given(
    graph_st,
    st.sampled_from(sorted(_MACHINES)),
    st.integers(min_value=0, max_value=2**31),
    st.booleans(),
)
def test_canonical_preserves_simulated_runtime(
    params, machine_name, seed, spill
):
    sizes, zero_byte = params
    machine = _MACHINES[machine_name]
    graph = _graph(sizes, zero_byte)
    canon = Canonicalizer(graph, machine)
    mapping = SearchSpace(graph, machine).random_mapping(RngStream(seed))
    folded = canon.canonical(mapping)
    sim = Simulator(
        graph, machine, SimConfig(noise_sigma=0.0, spill=spill)
    )
    assert sim.run(mapping).makespan == sim.run(folded).makespan
