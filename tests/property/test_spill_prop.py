"""Property-based tests for the priority-list spill fallback (§3.1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import single_node
from repro.mapping import SearchSpace, is_valid
from repro.runtime.memory import MemoryPlanner
from repro.taskgraph import GraphBuilder, Privilege
from repro.util.rng import RngStream
from repro.util.units import MIB

#: Frame buffer sized so that some — but not all — random workloads
#: overflow it.
_MACHINE = single_node(
    cpus=2,
    gpus=1,
    framebuffer_capacity=8 * MIB,
    sysmem_capacity=512 * MIB,
    zero_copy_capacity=512 * MIB,
)


def _graph(sizes):
    b = GraphBuilder("spill")
    colls = [
        b.collection(f"c{i}", nbytes=size * MIB)
        for i, size in enumerate(sizes)
    ]
    for i, coll in enumerate(colls):
        kind = b.task_kind(
            f"k{i}", slots=[("c", Privilege.READ_WRITE)]
        )
        b.launch(kind, [coll], size=2, flops=1e6)
    return b.build()


sizes_st = st.lists(
    st.integers(min_value=1, max_value=12), min_size=1, max_size=6
)


@settings(max_examples=80, deadline=None)
@given(sizes_st, st.integers(min_value=0, max_value=2**31))
def test_spill_output_always_fits_and_valid(sizes, seed):
    graph = _graph(sizes)
    space = SearchSpace(graph, _MACHINE)
    planner = MemoryPlanner(graph, _MACHINE)
    mapping = space.random_mapping(RngStream(seed))
    spilled = planner.apply_spill(mapping)
    planner.ensure_fits(spilled)  # no OOM
    assert is_valid(graph, _MACHINE, spilled)


@settings(max_examples=50, deadline=None)
@given(sizes_st, st.integers(min_value=0, max_value=2**31))
def test_spill_idempotent(sizes, seed):
    graph = _graph(sizes)
    space = SearchSpace(graph, _MACHINE)
    planner = MemoryPlanner(graph, _MACHINE)
    mapping = space.random_mapping(RngStream(seed))
    once = planner.apply_spill(mapping)
    twice = planner.apply_spill(once)
    assert once == twice


@settings(max_examples=50, deadline=None)
@given(sizes_st)
def test_spill_noop_when_everything_fits(sizes):
    small = [max(1, s // 16) for s in sizes]
    graph = _graph(small)
    space = SearchSpace(graph, _MACHINE)
    planner = MemoryPlanner(graph, _MACHINE)
    mapping = space.default_mapping()
    if planner.check(mapping).ok:
        assert planner.apply_spill(mapping) == mapping
