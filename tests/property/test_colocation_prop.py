"""Property-based tests for Algorithm 2 (co-location constraints).

The critical invariants: starting from *any* mapping and *any* single
(task, collection, proc kind, mem kind) move, the propagation terminates
and returns a mapping satisfying constraint (1) globally, with the
origin's decision preserved.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import single_node
from repro.machine.kinds import ADDRESSABLE, ProcKind
from repro.mapping import SearchSpace, is_valid
from repro.search.colocation import apply_colocation_constraints
from repro.taskgraph import GraphBuilder, Privilege, induced_collection_graph
from repro.util.rng import RngStream

_MACHINE = single_node(cpus=4, gpus=1)


def _graph():
    """Overlapping halo partitions shared across three kinds."""
    b = GraphBuilder("coloc")
    parts = b.partition("field", nbytes=1 << 20, parts=3, halo_bytes=1 << 14)
    aux = b.collection("aux", nbytes=1 << 16)
    k1 = b.task_kind(
        "k1", slots=[("f", Privilege.READ_WRITE), ("x", Privilege.READ)]
    )
    k2 = b.task_kind("k2", slots=[("f", Privilege.READ)])
    k3 = b.task_kind(
        "k3", slots=[("f", Privilege.READ), ("x", Privilege.READ_WRITE)]
    )
    for p in parts:
        b.launch(k1, [p, aux], size=2, flops=1e6)
        b.launch(k2, [p], size=2, flops=1e6)
        b.launch(k3, [p, aux], size=2, flops=1e6)
    return b.build()


_GRAPH = _graph()
_SPACE = SearchSpace(_GRAPH, _MACHINE)
_COLGRAPH = induced_collection_graph(_GRAPH)

_kind_slot = st.sampled_from(
    [
        (name, slot)
        for name in _SPACE.kind_names()
        for slot in range(_SPACE.dims(name).num_slots)
    ]
)


@settings(max_examples=200, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    origin=_kind_slot,
    proc=st.sampled_from(list(ProcKind)),
    mem_index=st.integers(min_value=0, max_value=1),
)
def test_colocation_terminates_and_legal(seed, origin, proc, mem_index):
    kind_name, slot = origin
    dims = _SPACE.dims(kind_name)
    if proc not in dims.proc_options:
        proc = dims.proc_options[0]
    mem = dims.mem_options[proc][mem_index % len(dims.mem_options[proc])]
    start = (
        _SPACE.random_mapping(RngStream(seed))
        .with_proc(kind_name, proc)
        .with_mem(kind_name, slot, mem)
    )
    out = apply_colocation_constraints(
        _SPACE, _COLGRAPH.copy(), start, kind_name, slot, proc, mem
    )
    # Constraint (1) holds globally.
    assert is_valid(_GRAPH, _MACHINE, out)
    # The origin move is preserved.
    assert out.decision(kind_name).proc_kind is proc
    assert out.decision(kind_name).mem_kinds[slot] is mem


@settings(max_examples=100, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    origin=_kind_slot,
)
def test_colocation_constraint_two_best_effort(seed, origin):
    """After propagation, slots overlapping the origin share its memory
    kind whenever their processor can address it (constraint 2)."""
    kind_name, slot = origin
    dims = _SPACE.dims(kind_name)
    proc = dims.proc_options[0]
    mem = dims.mem_options[proc][0]
    start = (
        _SPACE.random_mapping(RngStream(seed))
        .with_proc(kind_name, proc)
        .with_mem(kind_name, slot, mem)
    )
    out = apply_colocation_constraints(
        _SPACE, _COLGRAPH.copy(), start, kind_name, slot, proc, mem
    )
    for n_kind, n_slot in _COLGRAPH.neighbors((kind_name, slot)):
        decision = out.decision(n_kind)
        if (decision.proc_kind, mem) in ADDRESSABLE:
            assert decision.mem_kinds[n_slot] is mem
