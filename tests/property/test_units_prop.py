"""``format_bytes``/``parse_bytes`` round-trip and sign handling.

A formatted byte count must parse back to (approximately) the same
value — the 1-decimal rendering loses at most 5% of the leading unit —
and negative quantities must be rejected loudly: capacities and sizes
are never negative, and a ``-16 GiB`` that silently parsed would build
a nonsense machine model.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.units import GIB, KIB, MIB, TIB, format_bytes, parse_bytes


@given(st.integers(min_value=0, max_value=64 * TIB))
@settings(max_examples=200, deadline=None)
def test_format_parse_round_trip(n):
    text = format_bytes(n)
    back = parse_bytes(text)
    # format_bytes renders one decimal of the leading binary unit, so
    # the round-trip error is bounded by half a decimal step of that
    # unit (plus the int truncation in parse_bytes).
    unit = max(
        [1] + [f for f in (KIB, MIB, GIB, TIB) if n >= f]
    )
    assert abs(back - n) <= unit * 0.05 + 1
    assert back >= 0


@given(
    st.integers(min_value=1, max_value=64 * TIB),
    st.sampled_from(["", "-", "+"]),
)
@settings(max_examples=100, deadline=None)
def test_negative_quantities_rejected_positive_accepted(n, sign):
    text = f"{sign}{format_bytes(n)}"
    if sign == "-":
        with pytest.raises(ValueError, match="non-negative"):
            parse_bytes(text)
    else:
        assert parse_bytes(text) == parse_bytes(format_bytes(n))


@pytest.mark.parametrize(
    "text",
    ["-16 GiB", "-1B", " -0.5 MiB", "-3", "- 2 KiB"],
)
def test_negative_literals_raise_value_error(text):
    with pytest.raises(ValueError, match="non-negative"):
        parse_bytes(text)


@pytest.mark.parametrize(
    "text,expected",
    [("16 GiB", 16 * GIB), ("+2 KiB", 2 * KIB), ("0 B", 0), ("0.5 MiB", MIB // 2)],
)
def test_signless_and_plus_parse(text, expected):
    assert parse_bytes(text) == expected


def test_garbage_still_unparseable():
    for text in ["", "GiB", "--1 GiB", "1..2 GiB", "1 XiB"]:
        with pytest.raises(ValueError, match="cannot parse"):
            parse_bytes(text)
