"""Property-based tests for IntervalSet (set-algebra laws)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.runtime.intervals import IntervalSet

intervals_st = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=500),
    ).map(lambda t: (min(t), max(t))),
    max_size=12,
)


def to_points(s: IntervalSet) -> set:
    return {x for lo, hi in s for x in range(lo, hi)}


@given(intervals_st)
def test_normalization_preserves_points(raw):
    s = IntervalSet(raw)
    expected = {x for lo, hi in raw for x in range(lo, hi)}
    assert to_points(s) == expected


@given(intervals_st)
def test_disjoint_and_sorted(raw):
    s = IntervalSet(raw)
    items = list(s)
    for (lo1, hi1), (lo2, hi2) in zip(items, items[1:]):
        assert hi1 < lo2  # disjoint AND non-adjacent after coalescing
    assert all(lo < hi for lo, hi in items)


@given(intervals_st, intervals_st)
def test_union_is_set_union(raw_a, raw_b):
    a, b = IntervalSet(raw_a), IntervalSet(raw_b)
    assert to_points(a.union(b)) == to_points(a) | to_points(b)


@given(intervals_st, intervals_st)
def test_intersection_is_set_intersection(raw_a, raw_b):
    a, b = IntervalSet(raw_a), IntervalSet(raw_b)
    assert to_points(a.intersection(b)) == to_points(a) & to_points(b)


@given(intervals_st, intervals_st)
def test_subtract_is_set_difference(raw_a, raw_b):
    a, b = IntervalSet(raw_a), IntervalSet(raw_b)
    assert to_points(a.subtract(b)) == to_points(a) - to_points(b)


@given(intervals_st, intervals_st)
def test_total_consistent_with_points(raw_a, raw_b):
    a, b = IntervalSet(raw_a), IntervalSet(raw_b)
    assert a.union(b).total == len(to_points(a) | to_points(b))


@given(intervals_st, intervals_st)
def test_partition_identity(raw_a, raw_b):
    """(a - b) ∪ (a ∩ b) == a."""
    a, b = IntervalSet(raw_a), IntervalSet(raw_b)
    rebuilt = a.subtract(b).union(a.intersection(b))
    assert rebuilt == a


@given(intervals_st)
def test_self_subtract_empty(raw):
    a = IntervalSet(raw)
    assert not a.subtract(a)
