"""Property-based tests on the simulator's global invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import single_node
from repro.mapping import SearchSpace
from repro.runtime import SimConfig, Simulator
from repro.taskgraph import GraphBuilder, Privilege
from repro.util.rng import RngStream

_MACHINE = single_node(cpus=4, gpus=1)


def _graph():
    b = GraphBuilder("simprop")
    parts = b.partition("field", nbytes=1 << 22, parts=2, halo_bytes=1 << 12)
    out = b.collection("out", nbytes=1 << 20)
    k1 = b.task_kind("k1", slots=[("f", Privilege.READ_WRITE)])
    k2 = b.task_kind(
        "k2", slots=[("f", Privilege.READ), ("o", Privilege.READ_WRITE)]
    )
    for _ in range(2):
        for p in parts:
            b.launch(k1, [p], size=2, flops=3e7)
        b.launch(k2, [parts[0], out], size=2, flops=1e7)
    return b.build()


_GRAPH = _graph()
_SPACE = SearchSpace(_GRAPH, _MACHINE)
_SIM = Simulator(_GRAPH, _MACHINE, SimConfig(noise_sigma=0.0, spill=True))


@settings(max_examples=120, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_every_valid_mapping_executes(seed):
    mapping = _SPACE.random_mapping(RngStream(seed))
    result = _SIM.run(mapping)
    assert result.makespan > 0


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_makespan_bounds(seed):
    """Makespan >= critical-path compute on the fastest processor and
    >= the busiest processor's total work (list-scheduling bounds)."""
    mapping = _SPACE.random_mapping(RngStream(seed))
    result = _SIM.run(mapping)
    report = result.report
    busiest = max(report.proc_busy.values(), default=0.0)
    assert result.makespan + 1e-12 >= busiest
    assert result.makespan >= max(report.kind_finish.values()) - 1e-12


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_deterministic_across_instances(seed):
    mapping = _SPACE.random_mapping(RngStream(seed))
    fresh = Simulator(_GRAPH, _MACHINE, SimConfig(noise_sigma=0.0, spill=True))
    assert fresh.run(mapping).makespan == _SIM.run(mapping).makespan


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=1, max_value=9),
)
def test_noise_mean_tracks_base(seed, runs):
    noisy = Simulator(
        _GRAPH, _MACHINE, SimConfig(noise_sigma=0.05, seed=3, spill=True)
    )
    mapping = _SPACE.random_mapping(RngStream(seed))
    result = noisy.run(mapping, runs=runs)
    assert len(result.samples) == runs
    for sample in result.samples:
        assert 0.7 * result.makespan < sample < 1.4 * result.makespan
