"""Unit tests for the coherence layer (segments, caches, invalidation)."""


from repro.runtime.instances import CoherenceState, SegmentMap


class TestSegmentMap:
    def test_virgin_read_is_free(self):
        seg = SegmentMap()
        ready, copies = seg.plan_read(0, 100, "mem_a")
        assert ready == 0.0
        assert copies == []

    def test_virgin_read_materialises_locally(self):
        seg = SegmentMap()
        seg.plan_read(0, 100, "mem_a")
        # Second read of the same range in the same memory: still free.
        ready, copies = seg.plan_read(0, 100, "mem_a")
        assert copies == []

    def test_read_after_local_write_is_free(self):
        seg = SegmentMap()
        seg.write(0, 100, "mem_a", time=5.0)
        ready, copies = seg.plan_read(0, 100, "mem_a")
        assert ready == 5.0
        assert copies == []

    def test_read_from_remote_requires_copy(self):
        seg = SegmentMap()
        seg.write(0, 100, "mem_a", time=5.0)
        ready, copies = seg.plan_read(0, 100, "mem_b")
        assert len(copies) == 1
        need = copies[0]
        assert (need.src_mem, need.lo, need.hi) == ("mem_a", 0, 100)
        assert need.src_time == 5.0

    def test_partial_overlap_copies_only_missing(self):
        seg = SegmentMap()
        seg.write(0, 50, "mem_a", time=1.0)
        seg.write(50, 100, "mem_b", time=2.0)
        ready, copies = seg.plan_read(0, 100, "mem_b")
        assert ready == 2.0
        assert len(copies) == 1
        assert (copies[0].lo, copies[0].hi) == (0, 50)

    def test_cache_satisfies_later_reads(self):
        seg = SegmentMap()
        seg.write(0, 100, "mem_a", time=1.0)
        _, copies = seg.plan_read(0, 100, "mem_b")
        seg.commit_cache(0, 100, "mem_b", time=3.0)
        ready, copies = seg.plan_read(0, 100, "mem_b")
        assert copies == []
        assert ready == 3.0

    def test_write_invalidates_caches(self):
        seg = SegmentMap()
        seg.write(0, 100, "mem_a", time=1.0)
        seg.commit_cache(0, 100, "mem_b", time=2.0)
        seg.write(0, 100, "mem_a", time=5.0)
        _, copies = seg.plan_read(0, 100, "mem_b")
        assert len(copies) == 1
        assert copies[0].src_time == 5.0

    def test_partial_write_splits_segments(self):
        seg = SegmentMap()
        seg.write(0, 100, "mem_a", time=1.0)
        seg.write(40, 60, "mem_b", time=2.0)
        _, copies = seg.plan_read(0, 100, "mem_a")
        # Only the middle was invalidated in mem_a.
        assert len(copies) == 1
        assert (copies[0].src_mem, copies[0].lo, copies[0].hi) == (
            "mem_b",
            40,
            60,
        )

    def test_footprint_counts_auth_and_caches(self):
        seg = SegmentMap()
        seg.write(0, 100, "mem_a", time=1.0)
        seg.commit_cache(0, 50, "mem_b", time=2.0)
        fp = seg.footprint()
        assert fp["mem_a"] == 100
        assert fp["mem_b"] == 50

    def test_empty_range_noop(self):
        seg = SegmentMap()
        seg.write(10, 10, "mem_a", time=1.0)
        assert seg.num_segments == 0
        assert seg.plan_read(5, 5, "mem_a") == (0.0, [])


class TestCoherenceState:
    def test_roots_independent(self):
        state = CoherenceState()
        state.root("r1").write(0, 10, "mem_a", 1.0)
        _, copies = state.root("r2").plan_read(0, 10, "mem_b")
        assert copies == []

    def test_total_footprint(self):
        state = CoherenceState()
        state.root("r1").write(0, 10, "mem_a", 1.0)
        state.root("r2").write(0, 20, "mem_a", 1.0)
        assert state.footprint() == {"mem_a": 30}
