"""Unit tests for the AutoMap driver, session, mapper, and space file."""

import pytest

from repro.core import (
    AutoMapDriver,
    AutoMapMapper,
    AutoMapSession,
    generate_space_file,
    load_space_file,
)
from repro.core.driver import make_algorithm
from repro.machine.kinds import MemKind
from repro.mapping import SearchSpace
from repro.runtime import SimConfig


class TestMakeAlgorithm:
    @pytest.mark.parametrize("name", ["ccd", "cd", "opentuner", "random"])
    def test_known(self, name):
        assert make_algorithm(name).name == name

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown search algorithm"):
            make_algorithm("simulated-annealing")


class TestDriver:
    def test_tune_produces_report(self, diamond_graph, mini_machine):
        driver = AutoMapDriver(
            diamond_graph,
            mini_machine,
            algorithm="ccd",
            sim_config=SimConfig(noise_sigma=0.02, seed=9),
        )
        report = driver.tune()
        assert report.best_mapping is not None
        assert report.best_mean > 0
        assert report.evaluated > 0
        assert report.suggested >= report.evaluated
        assert 0 < report.evaluation_fraction <= 1

    def test_final_reevaluation_31_runs(self, diamond_graph, mini_machine):
        driver = AutoMapDriver(
            diamond_graph, mini_machine,
            sim_config=SimConfig(noise_sigma=0.02, seed=9),
        )
        report = driver.tune()
        # Every finalist re-measured to >= 31 samples (§5).
        for _, _, _, count in report.finalists:
            assert count >= 31
        assert len(report.finalists) <= 5

    def test_best_at_most_default(self, diamond_graph, mini_machine):
        driver = AutoMapDriver(
            diamond_graph, mini_machine,
            sim_config=SimConfig(noise_sigma=0.02, seed=9),
        )
        default_mean = driver.measure(driver.space.default_mapping())
        report = driver.tune()
        assert report.best_mean <= default_mean * 1.02

    def test_describe(self, diamond_graph, mini_machine):
        driver = AutoMapDriver(diamond_graph, mini_machine)
        report = driver.tune()
        text = report.describe()
        assert "best mean time" in text and "evaluated" in text


class TestSession:
    def test_artifacts_written(self, diamond_graph, mini_machine, tmp_path):
        session = AutoMapSession(
            diamond_graph,
            mini_machine,
            workdir=tmp_path / "work",
            sim_config=SimConfig(noise_sigma=0.02, seed=9),
        )
        report = session.tune()
        assert (tmp_path / "work" / "search_space.json").exists()
        assert (tmp_path / "work" / "finalists.json").exists()
        assert (tmp_path / "work" / "report.txt").exists()
        assert report.best_mapping is not None

    def test_measure_baseline(self, diamond_graph, mini_machine):
        session = AutoMapSession(
            diamond_graph, mini_machine,
            sim_config=SimConfig(noise_sigma=0.02, seed=9),
        )
        t = session.measure(session.default_mapping(), runs=5)
        assert t > 0


class TestSpaceFile:
    def test_generate_and_load(self, diamond_graph, mini_machine, tmp_path):
        path = tmp_path / "space.json"
        doc = generate_space_file(diamond_graph, mini_machine, path)
        loaded = load_space_file(path)
        assert loaded["application"] == "diamond"
        assert loaded["profile"]["makespan"] > 0
        assert len(loaded["kinds"]) == 4
        assert doc["size_log2"] == pytest.approx(
            SearchSpace(diamond_graph, mini_machine).log2_size()
        )

    def test_load_rejects_foreign(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"format": "nope"}')
        with pytest.raises(ValueError):
            load_space_file(path)


class TestMapper:
    def test_callbacks_consistent_with_placer(
        self, diamond_graph, mini_machine, diamond_space
    ):
        mapping = diamond_space.default_mapping()
        mapper = AutoMapMapper(mini_machine, mapping)
        launch = diamond_graph.launches[0]
        distribute, proc_kind = mapper.select_task_options(launch)
        assert distribute is True
        assert proc_kind == "gpu"
        placements = mapper.map_task(launch)
        assert len(placements) == launch.size
        assert mapper.select_processor(launch, 0) == placements[0].proc
        assert (
            mapper.select_memory(launch, 0, 0) == placements[0].mems[0]
        )
        assert placements[0].mems[0].kind is MemKind.FRAMEBUFFER
