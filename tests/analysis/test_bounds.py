"""Unit tests for the static cost-bound analyzer (AM4xx)."""

from __future__ import annotations

import pytest

from repro.analysis.bounds import (
    FLOAT_SAFETY,
    BoundBreakdown,
    StaticBoundAnalyzer,
    _FlowMap,
)
from repro.apps import make_app
from repro.machine import shepard
from repro.machine.kinds import ProcKind
from repro.mapping.mapping import Mapping
from repro.mapping.space import SearchSpace
from repro.runtime.simulator import SimConfig, Simulator


@pytest.fixture(scope="module")
def stencil():
    machine = shepard(2)
    graph = make_app("stencil", nx=200, ny=200).graph(machine)
    space = SearchSpace(graph, machine)
    return graph, machine, space


class TestFlowMap:
    """The write-only-authority coherence mirror behind the
    communication estimator."""

    def test_virgin_reads_materialise_for_free(self):
        flow = _FlowMap()
        local, pieces = flow.read(0, 100, "m0")
        assert (local, pieces) == (0.0, [])
        # The first reader's memory now owns the range (plan_read's
        # virgin-gap rule): a later reader elsewhere pays a real copy.
        _, pieces = flow.read(0, 100, "m1")
        assert pieces == [("m0", 0, 100, 0.0)]

    def test_read_after_remote_write_moves_bytes(self):
        flow = _FlowMap()
        flow.write(0, 100, "m0", 2.0)
        assert flow.read(0, 100, "m0") == (2.0, [])
        local, pieces = flow.read(0, 100, "m1")
        assert pieces == [("m0", 0, 100, 2.0)]
        # The replica becomes cached only once its copy finishes.
        flow.commit(0, 100, "m1", 5.0)
        assert flow.read(0, 100, "m1") == (5.0, [])

    def test_write_invalidates_replicas(self):
        flow = _FlowMap()
        flow.write(0, 100, "m0", 1.0)
        _, pieces = flow.read(0, 100, "m1")
        flow.commit(0, 100, "m1", 2.0)
        flow.write(0, 100, "m0", 3.0)
        _, pieces = flow.read(0, 100, "m1")
        assert pieces == [("m0", 0, 100, 3.0)]

    def test_partial_overlap_splits_segments(self):
        flow = _FlowMap()
        flow.write(0, 100, "m0", 1.0)
        flow.write(50, 150, "m1", 2.0)
        _, pieces = flow.read(0, 150, "m2")
        assert sorted(pieces) == [
            ("m0", 0, 50, 1.0),
            ("m1", 50, 150, 2.0),
        ]


class TestBreakdown:
    def test_total_is_max_of_components(self):
        bd = BoundBreakdown(
            critical_path=3.0, load=5.0, communication=4.0, schedule=6.0
        )
        assert bd.total == 6.0

    def test_full_mapping_has_all_components(self, stencil):
        graph, machine, space = stencil
        analyzer = StaticBoundAnalyzer(graph, machine)
        bd = analyzer.breakdown(space.default_mapping())
        assert bd.critical_path > 0.0
        assert bd.load > 0.0
        assert bd.schedule > 0.0
        assert bd.total == max(
            bd.critical_path, bd.load, bd.communication, bd.schedule
        )

    def test_partial_mapping_is_critical_path_only(self, stencil):
        graph, machine, space = stencil
        analyzer = StaticBoundAnalyzer(graph, machine)
        full = space.default_mapping()
        kinds = full.kind_names()
        partial = Mapping({kinds[0]: full.decision(kinds[0])})
        bd = analyzer.breakdown(partial)
        assert bd.load == 0.0
        assert bd.communication == 0.0
        assert 0.0 < bd.critical_path <= analyzer.lower_bound(full)

    def test_bound_cache_hits(self, stencil):
        graph, machine, space = stencil
        analyzer = StaticBoundAnalyzer(graph, machine)
        mapping = space.default_mapping()
        first = analyzer.lower_bound(mapping)
        checks = analyzer.checks
        assert analyzer.lower_bound(mapping) == first
        assert analyzer.checks == checks + 1
        assert analyzer.cache_hits >= 1


class TestNodeCounts:
    """The blocked point->node split must mirror the placer exactly —
    an over-count here was the one soundness bug this layer shipped
    with, so pin it against the placer's own formula."""

    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 7, 8, 16, 31])
    def test_matches_placer_split(self, stencil, size):
        graph, machine, _ = stencil
        analyzer = StaticBoundAnalyzer(graph, machine)
        nodes = machine.num_nodes
        expected = [0] * nodes
        for point in range(size):
            expected[point * nodes // size] += 1
        assert analyzer._node_counts(size, True) == tuple(expected)
        undistributed = analyzer._node_counts(size, False)
        assert undistributed[0] == size
        assert sum(undistributed) == size


class TestDiagnostics:
    def _analyze(self, stencil, mapping, incumbent=None):
        graph, machine, _ = stencil
        analyzer = StaticBoundAnalyzer(graph, machine)
        return analyzer.diagnose_mapping(mapping, incumbent=incumbent)

    def test_am401_fires_on_dominated_mapping(self, stencil):
        graph, machine, space = stencil
        simulator = Simulator(
            graph, machine, SimConfig(noise_sigma=0.0, spill=True)
        )
        default = space.default_mapping()
        incumbent = simulator.run(default).makespan
        # Serializing every launch onto one node's processors is far
        # slower than the distributed default: the load component of
        # the *lower bound* already exceeds the incumbent.
        bad = default
        for kind in default.kind_names():
            bad = bad.with_distribute(kind, False)
        report = self._analyze(stencil, bad, incumbent=incumbent)
        assert any(d.rule_id == "AM401" for d in report)

    def test_am401_silent_without_incumbent(self, stencil):
        _, _, space = stencil
        report = self._analyze(stencil, space.default_mapping())
        assert not any(d.rule_id == "AM401" for d in report)

    def test_am403_reports_idle_kind(self, stencil):
        # Stencil's default mapping is all-GPU on shepard: the CPU pool
        # is statically idle even though CPU task variants exist.
        _, _, space = stencil
        default = space.default_mapping()
        assert all(
            default.decision(k).proc_kind is ProcKind.GPU
            for k in default.kind_names()
        )
        report = self._analyze(stencil, default)
        idle = [d for d in report if d.rule_id == "AM403"]
        assert idle and any("cpu" in str(d).lower() for d in idle)


class TestFloatSafety:
    def test_deflation_is_tiny_but_strict(self):
        assert 0.0 < FLOAT_SAFETY < 1.0
        assert 1.0 - FLOAT_SAFETY < 1e-8
