"""Tests for the shared kind-level validity checker and its wrappers."""

from __future__ import annotations

import pytest

from repro.analysis import check_mapping
from repro.analysis.validity import explain_problems, validity_problems
from repro.machine import single_node
from repro.machine.kinds import MemKind, ProcKind
from repro.mapping import SearchSpace
from repro.mapping.decision import MappingDecision
from repro.mapping.mapping import Mapping
from repro.mapping.validate import (
    MappingError,
    explain_invalid,
    is_valid,
    validate,
)
from tests.conftest import build_diamond_graph


@pytest.fixture
def setup():
    graph = build_diamond_graph()
    machine = single_node(cpus=4, gpus=1)
    space = SearchSpace(graph, machine)
    return graph, machine, space.default_mapping()


def test_valid_mapping_has_no_diagnostics(setup):
    graph, machine, mapping = setup
    assert check_mapping(graph, machine, mapping) == []
    assert validity_problems(graph, machine, mapping) == []
    assert explain_problems(graph, machine, mapping) is None
    assert is_valid(graph, machine, mapping)
    assert explain_invalid(graph, machine, mapping) is None
    validate(graph, machine, mapping)  # no raise


def test_missing_decision_is_am001(setup):
    graph, machine, mapping = setup
    partial = Mapping(
        {k: d for k, d in mapping.items() if k != "sink"}
    )
    diags = check_mapping(graph, machine, partial)
    assert [d.rule_id for d in diags] == ["AM001"]
    assert diags[0].span.kind == "sink"
    assert explain_invalid(graph, machine, partial) == diags[0].message


def test_unknown_kind_is_am007(setup):
    graph, machine, mapping = setup
    decisions = dict(mapping.items())
    decisions["phantom"] = MappingDecision(
        distribute=True,
        proc_kind=ProcKind.CPU,
        mem_kinds=(MemKind.SYSTEM,),
    )
    extra = Mapping(decisions)
    diags = check_mapping(graph, machine, extra)
    assert [d.rule_id for d in diags] == ["AM007"]


def test_unaddressable_memory_is_am006(setup):
    graph, machine, mapping = setup
    bad = mapping.with_proc("left", ProcKind.GPU).with_mem(
        "left", 0, MemKind.SYSTEM
    )
    rules = [d.rule_id for d in check_mapping(graph, machine, bad)]
    assert rules == ["AM006"]
    reason = explain_invalid(graph, machine, bad)
    assert reason is not None and "not addressable" in reason
    with pytest.raises(MappingError, match="not addressable"):
        validate(graph, machine, bad)


def test_slot_count_mismatch_no_longer_hides_other_problems(setup):
    """Historically the validator ``continue``-d after a slot-count
    mismatch, hiding addressability problems on the same kind.  The
    shared checker reports both."""
    graph, machine, mapping = setup
    # 'left' has 2 slots; give it one decision slot carrying an
    # unaddressable (GPU, system) combination.
    bad = mapping.with_decision(
        "left",
        MappingDecision(
            distribute=True,
            proc_kind=ProcKind.GPU,
            mem_kinds=(MemKind.SYSTEM,),
        ),
    )
    rules = [d.rule_id for d in check_mapping(graph, machine, bad)]
    assert "AM002" in rules and "AM006" in rules
    # Both messages surface in the joined explanation, in order.
    reason = explain_invalid(graph, machine, bad)
    assert "covers 1 slots" in reason
    assert "not addressable" in reason


def test_extra_decision_slots_are_named_generically(setup):
    graph, machine, mapping = setup
    bad = mapping.with_decision(
        "sink",
        MappingDecision(
            distribute=True,
            proc_kind=ProcKind.CPU,
            mem_kinds=(MemKind.SYSTEM,) * 5,
        ),
    )
    diags = check_mapping(graph, machine, bad)
    assert [d.rule_id for d in diags] == ["AM002"]
    # 5 mem kinds vs 3 kind slots: per-slot checks still ran over all 5
    # without crashing; unknown slots would be labelled slot3/slot4.


def test_explain_invalid_joins_all_problems(setup):
    graph, machine, mapping = setup
    bad = mapping.with_decision(
        "left",
        MappingDecision(
            distribute=True,
            proc_kind=ProcKind.GPU,
            mem_kinds=(MemKind.SYSTEM, MemKind.SYSTEM, MemKind.SYSTEM),
        ),
    )
    reason = explain_invalid(graph, machine, bad)
    # slot-count mismatch + 3 unaddressable slots, semicolon-joined.
    assert reason.count(";") >= 3
    assert not is_valid(graph, machine, bad)
