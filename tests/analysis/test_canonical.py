"""Tests for equivalence canonicalization (pass 2)."""

from __future__ import annotations

import pytest

from repro.analysis import Canonicalizer
from repro.machine import shepard, single_node
from repro.machine.kinds import MemKind, ProcKind
from repro.mapping import SearchSpace
from repro.runtime import SimConfig, Simulator
from repro.taskgraph import ArgSlot, GraphBuilder, Privilege
from repro.util.rng import RngStream
from tests.conftest import build_diamond_graph


def build_zero_byte_graph():
    """One kind with a data slot and a zero-byte slot."""
    b = GraphBuilder("zb")
    data = b.collection("data", nbytes=1 << 20)
    empty = b.collection("empty", nbytes=0)
    k = b.task_kind(
        "k",
        slots=[
            ArgSlot("d", Privilege.READ_WRITE),
            ArgSlot("e", Privilege.READ),
        ],
    )
    b.launch(k, [data, empty], size=4, flops=1e6)
    return b.build()


def test_single_node_kills_every_distribute_bit():
    graph = build_diamond_graph()
    machine = single_node(cpus=4, gpus=1)
    canon = Canonicalizer(graph, machine)
    assert canon.dead_distribute_kinds() == {
        k.name for k in graph.task_kinds
    }


def test_multi_node_kills_only_size_one_kinds():
    graph = build_diamond_graph()
    canon = Canonicalizer(graph, shepard(2))
    # Only 'sink' launches with group size 1.
    assert canon.dead_distribute_kinds() == {"sink"}


def test_canonical_folds_distribute_to_true():
    graph = build_diamond_graph()
    machine = single_node(cpus=4, gpus=1)
    canon = Canonicalizer(graph, machine)
    space = SearchSpace(graph, machine)
    base = space.default_mapping()
    variant = base.with_distribute("left", False)
    folded = canon.canonical(variant)
    assert folded.decision("left").distribute is True
    assert folded.key() == canon.canonical(base).key()
    assert canon.folded >= 1


def test_canonical_is_idempotent_and_memoized():
    graph = build_diamond_graph()
    machine = single_node(cpus=4, gpus=1)
    canon = Canonicalizer(graph, machine)
    space = SearchSpace(graph, machine)
    for seed in range(20):
        m = space.random_mapping(RngStream(seed))
        once = canon.canonical(m)
        twice = canon.canonical(once)
        assert twice.key() == once.key()
        assert canon.canonical(m) is once  # memoized


def test_zero_byte_slot_memory_choice_folds():
    graph = build_zero_byte_graph()
    machine = shepard(2)
    canon = Canonicalizer(graph, machine)
    assert canon.canonical_mem("k", 1, ProcKind.GPU) is MemKind.FRAMEBUFFER
    assert canon.canonical_mem("k", 1, ProcKind.CPU) is MemKind.SYSTEM
    # The data slot is observable: no fold.
    assert canon.canonical_mem("k", 0, ProcKind.GPU) is None
    assert not canon.is_identity()

    space = SearchSpace(graph, machine)
    m = space.default_mapping().with_mem("k", 1, MemKind.ZERO_COPY)
    folded = canon.canonical(m)
    assert folded.decision("k").mem_kinds[1] is MemKind.FRAMEBUFFER


def test_folding_preserves_simulated_runtime():
    graph = build_zero_byte_graph()
    machine = shepard(2)
    canon = Canonicalizer(graph, machine)
    sim = Simulator(graph, machine, SimConfig(noise_sigma=0.0, spill=False))
    space = SearchSpace(graph, machine)
    checked = 0
    for seed in range(15):
        m = space.random_mapping(RngStream(seed))
        folded = canon.canonical(m)
        if folded.key() == m.key():
            continue
        assert (
            sim.run(m).makespan == sim.run(folded).makespan
        ), "canonicalization must be runtime-preserving"
        checked += 1
    assert checked > 0


def test_diagnose_space_reports_folds():
    graph = build_zero_byte_graph()
    machine = shepard(2)
    canon = Canonicalizer(graph, machine)
    space = SearchSpace(graph, machine)
    diags = canon.diagnose_space(space)
    am202 = [d for d in diags if d.rule_id == "AM202"]
    assert am202 and all("unobservable" in d.message for d in am202)


def test_pruned_space_searches_single_distribute_option():
    graph = build_diamond_graph()
    machine = single_node(cpus=4, gpus=1)
    canon = Canonicalizer(graph, machine)
    space = SearchSpace(graph, machine)
    pruned = space.prune_infeasible(canonicalizer=canon)
    for kind_name in pruned.kind_names():
        assert pruned.searched_distribute_options(kind_name) == (True,)
    # The base space is untouched.
    assert space.searched_distribute_options("left") == space.dims(
        "left"
    ).distribute_options


def test_pruned_space_searches_canonical_mem_only():
    graph = build_zero_byte_graph()
    machine = shepard(2)
    canon = Canonicalizer(graph, machine)
    pruned = SearchSpace(graph, machine).prune_infeasible(
        canonicalizer=canon
    )
    assert pruned.searched_mem_options("k", ProcKind.GPU, 1) == (
        MemKind.FRAMEBUFFER,
    )
    # Observable slots keep the full menu.
    assert len(pruned.searched_mem_options("k", ProcKind.GPU, 0)) > 1
