"""Unit tests for the diagnostic framework."""

from __future__ import annotations

import pytest

from repro.analysis import (
    RULES,
    Diagnostic,
    DiagnosticReport,
    Severity,
    Span,
    rule_table,
)


def test_severity_ordering_and_parse():
    assert Severity.INFO < Severity.WARNING < Severity.ERROR
    assert Severity.parse("error") is Severity.ERROR
    assert Severity.parse("WARNING") is Severity.WARNING
    with pytest.raises(ValueError, match="unknown severity"):
        Severity.parse("fatal")
    assert str(Severity.ERROR) == "error"


def test_span_rendering():
    assert str(Span()) == "-"
    assert str(Span(kind="leapfrog")) == "leapfrog"
    assert str(Span(kind="leapfrog", slot="state")) == "leapfrog[state]"
    assert "collection grid" in str(Span(collection="grid"))
    assert "memory gpu0-fb" in str(Span(memory="gpu0-fb"))


def test_rule_registry_covers_all_families():
    for rule_id in ("AM001", "AM101", "AM201", "AM301"):
        assert rule_id in RULES
    assert RULES["AM301"].severity is Severity.ERROR
    assert RULES["AM302"].severity is Severity.WARNING
    assert RULES["AM304"].severity is Severity.INFO


def test_rule_table_lists_every_rule():
    rendered = rule_table().render()
    for rule_id in RULES:
        assert rule_id in rendered


def test_diagnostic_defaults_severity_from_registry():
    d = Diagnostic("AM302", "spurious edge")
    assert d.severity is Severity.WARNING
    # explicit override wins
    d2 = Diagnostic("AM302", "promoted", severity=Severity.ERROR)
    assert d2.severity is Severity.ERROR
    assert "AM302" in str(d)


def test_diagnostic_rejects_unregistered_rule():
    with pytest.raises(ValueError, match="unregistered rule id"):
        Diagnostic("AM999", "nope")


def _sample_report() -> DiagnosticReport:
    report = DiagnosticReport()
    report.add(Diagnostic("AM301", "race", Span(kind="a")))
    report.extend(
        [
            Diagnostic("AM302", "spurious", Span(kind="b")),
            Diagnostic("AM304", "reduction", Span(kind="c")),
        ]
    )
    return report


def test_report_queries():
    report = _sample_report()
    assert len(report) == 3
    assert bool(report)
    assert not bool(DiagnosticReport())
    assert [d.rule_id for d in report.errors] == ["AM301"]
    assert [d.rule_id for d in report.at_least(Severity.WARNING)] == [
        "AM301",
        "AM302",
    ]
    assert [d.rule_id for d in report.by_rule("AM304")] == ["AM304"]
    assert report.max_severity() is Severity.ERROR
    assert DiagnosticReport().max_severity() is None
    counts = report.counts()
    assert counts[Severity.ERROR] == 1
    assert counts[Severity.WARNING] == 1
    assert counts[Severity.INFO] == 1


def test_report_render_counts_and_filtering():
    report = _sample_report()
    rendered = report.render()
    assert "1 error" in rendered and "1 warning" in rendered
    assert "AM304" in rendered
    only_errors = report.to_table(min_severity=Severity.ERROR).render()
    assert "AM301" in only_errors
    assert "AM304" not in only_errors
    assert DiagnosticReport().render() == "no diagnostics"
    assert DiagnosticReport().render(title="clean") == "clean: no diagnostics"
