"""Tests for the analyze() entry point and the oracle's static layer."""

from __future__ import annotations

import pytest

from repro.analysis import Canonicalizer, StaticMemoryFeasibility, analyze
from repro.analysis.diagnostics import Severity
from repro.core.oracle import OracleConfig, SimulationOracle
from repro.machine import single_node
from repro.mapping import SearchSpace
from repro.runtime import SimConfig, Simulator
from repro.search.base import INFEASIBLE
from repro.util.rng import RngStream
from repro.util.units import MIB
from tests.conftest import build_diamond_graph


@pytest.fixture
def cramped():
    graph = build_diamond_graph()
    machine = single_node(
        cpus=4,
        gpus=1,
        framebuffer_capacity=4 * MIB,
        sysmem_capacity=512 * MIB,
        zero_copy_capacity=512 * MIB,
    )
    return graph, machine


def _oracle(graph, machine, static: bool):
    simulator = Simulator(
        graph, machine, SimConfig(noise_sigma=0.02, seed=3, spill=False)
    )
    kwargs = {}
    if static:
        kwargs = dict(
            canonicalizer=Canonicalizer(graph, machine),
            feasibility=StaticMemoryFeasibility(graph, machine),
        )
    return SimulationOracle(simulator, OracleConfig(), **kwargs)


def test_static_oom_short_circuit_matches_runtime(cramped):
    graph, machine = cramped
    space = SearchSpace(graph, machine)
    plain = _oracle(graph, machine, static=False)
    static = _oracle(graph, machine, static=True)
    for seed in range(25):
        mapping = space.random_mapping(RngStream(seed))
        a = plain.evaluate(mapping)
        b = static.evaluate(mapping)
        assert a.performance == b.performance
        assert a.failed == b.failed
        if a.failed:
            assert a.reason == b.reason, "OOM reasons must be byte-equal"
    assert static.static_oom_pruned > 0
    # The static oracle never sent the doomed candidates into the
    # runtime machinery; the plain one paid an OOM attempt for each.
    assert static.simulator.oom_attempts == 0
    assert plain.simulator.oom_attempts == static.static_oom_pruned
    # Canonical folds can only reduce distinct executions further.
    assert static.simulator.executions <= plain.simulator.executions
    # Both count them as failed (cheap) evaluations, §5.3 style.
    assert plain.failed_evaluations == static.failed_evaluations


def test_canonical_folds_share_profile_records(cramped):
    graph, machine = cramped
    # single_node: every distribute bit is dead, so flipped variants
    # fold onto one profile record.
    oracle = _oracle(graph, machine, static=True)
    space = SearchSpace(graph, machine)
    base = space.default_mapping()
    flipped = base.with_distribute("left", False)
    first = oracle.evaluate(base)
    second = oracle.evaluate(flipped)
    assert oracle.canonical_folds == 1
    assert second.cached
    assert second.performance == first.performance
    assert oracle.simulator.executions <= 1


def test_evaluate_without_passes_is_unchanged(cramped):
    graph, machine = cramped
    oracle = _oracle(graph, machine, static=False)
    mapping = SearchSpace(graph, machine).default_mapping()
    assert oracle.canonical(mapping) is mapping
    outcome = oracle.evaluate(mapping)
    assert outcome.performance != INFEASIBLE or outcome.failed


def test_analyze_combines_all_passes(cramped):
    graph, machine = cramped
    space = SearchSpace(graph, machine)
    report = analyze(graph, machine, space=space)
    rules = {d.rule_id for d in report}
    assert any(r.startswith("AM1") for r in rules)  # dead coordinates
    # The clean diamond graph has no races.
    assert not any(r in ("AM301", "AM303") for r in rules)


def test_analyze_mapping_validity_gates_feasibility(cramped):
    graph, machine = cramped
    space = SearchSpace(graph, machine)
    mapping = space.default_mapping()
    report = analyze(
        graph, machine, space=space, mapping=mapping, sanitize=False
    )
    # Default = GPU + framebuffer everywhere: provably OOM on the
    # cramped machine, reported as AM102 errors.
    am102 = report.by_rule("AM102")
    assert am102
    assert report.max_severity() is Severity.ERROR
