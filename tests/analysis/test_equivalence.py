"""The AM6xx workload-equivalence analysis: footprint bounds,
touchable-resource diagnostics, and the observational-equivalence
prover's accept/reject vectors."""

from __future__ import annotations

import random

from repro.analysis.equivalence import (
    Workload,
    diagnose_equivalence,
    footprint_bounds,
    prove_equivalent,
    pullback_result_doc,
    touchable_resources,
)
from repro.analysis.memfeas import StaticMemoryFeasibility
from repro.apps import make_app
from repro.machine import MACHINE_ZOO
from repro.machine.kinds import MemKind, ProcKind
from repro.machine.overrides import apply_machine_params
from repro.mapping.decision import MappingDecision
from repro.mapping.space import SearchSpace
from repro.util.units import GIB, KIB


def _workload(machine_name="shepard", nodes=1, **overrides):
    machine = MACHINE_ZOO[machine_name](nodes)
    if overrides:
        machine = apply_machine_params(machine, overrides)
    app = make_app("forkjoin", width=2, iterations=2, elems=65536)
    graph = app.graph(machine)
    space = app.space(machine)
    return graph, machine, space


CONFIG = {"algorithm": "ccd", "seed": 0, "noise_sigma": 0.0}


class TestFootprintBounds:
    def test_bounds_dominate_sampled_mappings(self):
        """U(m) is an upper bound on every valid mapping's exact static
        footprint (the planner-identical memfeas check)."""
        graph, machine, space = _workload()
        bounds = footprint_bounds(graph, machine, space)
        feas = StaticMemoryFeasibility(graph, machine)
        rng = random.Random(7)
        mappings = [space.default_mapping()] + [
            space.random_mapping(rng, valid=True) for _ in range(20)
        ]
        for mapping in mappings:
            for uid, total in feas.check(mapping).per_memory.items():
                assert total <= bounds[uid], (mapping.key(), uid)

    def test_every_memory_has_a_bound(self):
        graph, machine, space = _workload()
        bounds = footprint_bounds(graph, machine, space)
        assert set(bounds) == {m.uid for m in machine.memories}
        assert all(b >= 0 for b in bounds.values())

    def test_fixed_decision_narrows_bounds(self):
        """Pinning every kind to one decision can only shrink U."""
        graph, machine, space = _workload()
        free = footprint_bounds(graph, machine, space)
        default = space.default_mapping()
        fixed_space = SearchSpace(
            graph,
            machine,
            fixed_decisions={
                name: default.decision(name) for name in default
            },
        )
        fixed = footprint_bounds(graph, machine, fixed_space)
        assert all(fixed[uid] <= free[uid] for uid in free)


class TestTouchableResources:
    def test_free_space_touches_all_kinds(self):
        graph, machine, space = _workload()
        touch = touchable_resources(graph, machine, space)
        assert ProcKind.CPU in touch.proc_kinds
        assert ProcKind.GPU in touch.proc_kinds
        assert touch.mem_uids  # something is reachable
        assert touch.proc_uids <= {p.uid for p in machine.processors}

    def test_all_cpu_fixed_space_frees_gpu_resources(self):
        """Pinning every kind to CPU/system makes the GPUs, the
        framebuffers, and their channels untouchable (AM602)."""
        graph, machine, _ = _workload()
        cpu_space = SearchSpace(
            graph,
            machine,
            fixed_decisions={
                kind.name: MappingDecision(
                    distribute=False,
                    proc_kind=ProcKind.CPU,
                    mem_kinds=(MemKind.SYSTEM,) * kind.num_slots,
                )
                for kind in graph.task_kinds
            },
        )
        touch = touchable_resources(graph, machine, cpu_space)
        assert touch.proc_kinds == frozenset({ProcKind.CPU})
        fb_uids = {
            m.uid for m in machine.memories if m.kind is MemKind.FRAMEBUFFER
        }
        assert not (touch.mem_uids & fb_uids)
        diags = diagnose_equivalence(graph, machine, cpu_space)
        am602 = [d for d in diags if d.rule_id == "AM602"]
        assert any("gpu" in d.message for d in am602)
        assert any(d.span.memory in fb_uids for d in am602)


class TestDiagnostics:
    def test_am601_on_slack_capacity(self):
        graph, machine, space = _workload()
        diags = diagnose_equivalence(graph, machine, space)
        am601 = [d for d in diags if d.rule_id == "AM601"]
        # The zoo machines are sized in GiB; the toy forkjoin footprint
        # is KiB-scale, so every touchable memory has provable slack.
        touch = touchable_resources(graph, machine, space)
        assert {d.span.memory for d in am601} == set(touch.mem_uids)

    def test_am603_reports_automorphisms(self):
        # mirrored has two identical nodes -> a node-swap automorphism.
        graph, machine, space = _workload("mirrored")
        diags = diagnose_equivalence(graph, machine, space)
        assert any(d.rule_id == "AM603" for d in diags)


class TestProver:
    def test_self_equivalence(self):
        graph, machine, space = _workload()
        w = Workload(graph, machine, dict(CONFIG), None, space)
        proof = prove_equivalent(w, w)
        assert proof.equivalent
        assert proof.relabel == {}
        assert proof.log
        assert "verdict: equivalent" in proof.render()

    def test_uniform_capacity_slack_accepted(self):
        g1, m1, s1 = _workload()
        g2, m2, s2 = _workload(
            memory_capacity={
                m.uid: m.capacity + GIB for m in m1.memories
            }
        )
        proof = prove_equivalent(
            Workload(g1, m1, dict(CONFIG), None, s1),
            Workload(g2, m2, dict(CONFIG), None, s2),
        )
        assert proof.equivalent
        assert proof.relabel == {}

    def test_machine_rename_accepted_with_witness(self):
        g1, m1, s1 = _workload()
        g2, m2, s2 = _workload(name="renamed-box")
        proof = prove_equivalent(
            Workload(g1, m1, dict(CONFIG), None, s1),
            Workload(g2, m2, dict(CONFIG), None, s2),
        )
        assert proof.equivalent
        assert proof.relabel == {"machine": "renamed-box"}

    def test_capacity_below_bound_rejected(self):
        g1, m1, s1 = _workload()
        g2, m2, s2 = _workload(memory_capacity={"n0.sys0": 64 * KIB})
        proof = prove_equivalent(
            Workload(g1, m1, dict(CONFIG), None, s1),
            Workload(g2, m2, dict(CONFIG), None, s2),
        )
        assert not proof.equivalent
        assert "below the footprint bound" in proof.witness
        assert "n0.sys0" in proof.witness

    def test_touchable_channel_change_rejected(self):
        from repro.analysis.routing import channel_key

        g1, m1, s1 = _workload()
        touch = touchable_resources(g1, m1, s1)
        chan = next(
            c
            for c in m1.channels
            if channel_key(c.mem_a, c.mem_b) in touch.channel_keys
        )
        g2, m2, s2 = _workload(
            channel_bandwidth={
                f"{chan.mem_a}|{chan.mem_b}": chan.bandwidth * 2
            }
        )
        proof = prove_equivalent(
            Workload(g1, m1, dict(CONFIG), None, s1),
            Workload(g2, m2, dict(CONFIG), None, s2),
        )
        assert not proof.equivalent
        assert "reachable route" in proof.witness

    def test_config_difference_rejected(self):
        g1, m1, s1 = _workload()
        other = dict(CONFIG, seed=1)
        proof = prove_equivalent(
            Workload(g1, m1, dict(CONFIG), None, s1),
            Workload(g1, m1, other, None, s1),
        )
        assert not proof.equivalent
        assert "seed" in proof.witness

    def test_different_graph_rejected(self):
        g1, m1, s1 = _workload()
        machine = MACHINE_ZOO["shepard"](1)
        app = make_app("forkjoin", width=4, iterations=2, elems=64)
        g2 = app.graph(machine)
        s2 = app.space(machine)
        proof = prove_equivalent(
            Workload(g1, m1, dict(CONFIG), None, s1),
            Workload(g2, machine, dict(CONFIG), None, s2),
        )
        assert not proof.equivalent


class TestPullback:
    def test_pullback_rewrites_relabeled_fields(self):
        doc = {
            "fingerprint": "old-fp",
            "application": "app",
            "machine": "shepard-1n",
            "best_mean": 1.25,
        }
        g1, m1, s1 = _workload()
        g2, m2, s2 = _workload(name="renamed-box")
        proof = prove_equivalent(
            Workload(g1, m1, dict(CONFIG), None, s1),
            Workload(g2, m2, dict(CONFIG), None, s2),
        )
        out = pullback_result_doc(doc, proof, "new-fp")
        assert out["fingerprint"] == "new-fp"
        assert out["machine"] == "renamed-box"
        assert out["best_mean"] == 1.25
        assert doc["fingerprint"] == "old-fp"  # input untouched
