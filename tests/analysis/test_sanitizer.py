"""Tests for the task-graph sanitizer (pass 3).

The load-bearing assertion is that every bundled application, on both
machine models, has a race-free builder-derived dependence graph — and
that the sanitizer is actually *capable* of finding a race, proven by
seeded-bug fixtures that drop or add edges.
"""

from __future__ import annotations

import pytest

from repro.analysis import sanitize_graph
from repro.apps import APP_REGISTRY, make_app
from repro.machine import lassen, shepard
from repro.taskgraph import ArgSlot, GraphBuilder, Privilege, ShardPattern
from repro.taskgraph.graph import Dependence, TaskGraph

#: Small paper-style inputs so the parametrized sweep stays fast.
_SMALL_INPUTS = {
    "circuit": {"nodes": 20, "wires": 60},
    "stencil": {"nx": 64, "ny": 64},
    "pennant": {"zx": 64, "zy": 16, "iterations": 2},
    "htr": {"x": 16, "y": 16, "z": 18},
    "maestro": {},
    "forkjoin": {"elems": 4096, "iterations": 2},
    "halo": {"elems": 4096, "iterations": 2},
    "pipeline": {"layers": 2, "hidden": 1024},
    "reduction": {"levels": 2, "elems": 4096},
}

_MACHINES = [
    pytest.param(lambda: shepard(2), id="shepard2"),
    pytest.param(lambda: lassen(1), id="lassen1"),
]


@pytest.mark.parametrize("app_name", sorted(APP_REGISTRY))
@pytest.mark.parametrize("machine_builder", _MACHINES)
def test_bundled_apps_are_race_free(app_name, machine_builder):
    machine = machine_builder()
    app = make_app(app_name, **_SMALL_INPUTS[app_name])
    graph = app.graph(machine)
    diags = sanitize_graph(graph)
    races = [d for d in diags if d.rule_id in ("AM301", "AM303")]
    assert races == [], "\n".join(str(d) for d in races)


def test_pennant_dt_reduction_is_reported_as_info():
    machine = shepard(2)
    app = make_app("pennant", **_SMALL_INPUTS["pennant"])
    diags = sanitize_graph(app.graph(machine))
    am304 = [d for d in diags if d.rule_id == "AM304"]
    assert len(am304) == 1
    assert am304[0].span.kind == "calc_dt_hydro"


def _producer_consumer_graph():
    b = GraphBuilder("pc")
    data = b.collection("data", nbytes=1 << 16)
    w = b.task_kind("w", slots=[ArgSlot("d", Privilege.WRITE)])
    r = b.task_kind("r", slots=[ArgSlot("d", Privilege.READ)])
    b.launch(w, [data], size=2, flops=1e6)
    b.launch(r, [data], size=2, flops=1e6)
    return b.build()


def test_clean_fixture_passes():
    graph = _producer_consumer_graph()
    assert sanitize_graph(graph) == []


def test_seeded_missing_edge_is_am301():
    """Dropping the builder-derived RAW edge must trip the sanitizer —
    proof it CAN find a race."""
    graph = _producer_consumer_graph()
    broken = TaskGraph(graph.name, graph.launches, [])
    diags = sanitize_graph(broken)
    assert [d.rule_id for d in diags] == ["AM301"]
    message = diags[0].message
    # Actionable: names both launches and the exact fix.
    assert "w#0" in message and "r#0" in message
    assert "Dependence(src='w#0', dst='r#0')" in message


def test_transitive_coverage_counts():
    """A -> B -> C covers an A/C conflict without a direct edge."""
    b = GraphBuilder("chain")
    data = b.collection("data", nbytes=1 << 16)
    k = b.task_kind("k", slots=[ArgSlot("d", Privilege.READ_WRITE)])
    for _ in range(3):
        b.launch(k, [data], size=1, flops=1e6)
    graph = b.build()
    direct = [
        (d.src, d.dst) for d in graph.dependences
    ]
    assert ("k#0", "k#2") not in direct  # only the chain exists
    assert sanitize_graph(graph) == []


def test_seeded_spurious_edge_is_am302():
    b = GraphBuilder("sp")
    a_coll = b.collection("a", nbytes=1 << 16)
    b_coll = b.collection("b", nbytes=1 << 16)
    ka = b.task_kind("ka", slots=[ArgSlot("a", Privilege.WRITE)])
    kb = b.task_kind("kb", slots=[ArgSlot("b", Privilege.WRITE)])
    b.launch(ka, [a_coll], size=1, flops=1e6)
    b.launch(kb, [b_coll], size=1, flops=1e6)
    graph = b.build()
    bogus = TaskGraph(
        graph.name,
        graph.launches,
        list(graph.dependences)
        + [Dependence("ka#0", "kb#0", "a", "b")],
    )
    diags = sanitize_graph(bogus)
    assert [d.rule_id for d in diags] == ["AM302"]
    assert "only costs parallelism" in diags[0].message


def test_intra_group_write_overlap_is_am303():
    """REPLICATED + WRITE makes every point write the whole collection:
    a true intra-launch race (unlike the read_write reduction idiom)."""
    b = GraphBuilder("race")
    data = b.collection("data", nbytes=1 << 16)
    k = b.task_kind(
        "k",
        slots=[ArgSlot("d", Privilege.WRITE, ShardPattern.REPLICATED)],
    )
    b.launch(k, [data], size=4, flops=1e6)
    diags = sanitize_graph(b.build())
    am303 = [d for d in diags if d.rule_id == "AM303"]
    assert len(am303) == 1
    assert "overlapping byte" in am303[0].message


def test_acyclic_check_message_is_actionable():
    graph = _producer_consumer_graph()
    forward = graph.dependences[0]
    backward = Dependence(forward.dst, forward.src, "data", "data")
    with pytest.raises(ValueError) as excinfo:
        TaskGraph(graph.name, graph.launches, [forward, backward])
    message = str(excinfo.value)
    assert "contains a cycle" in message
    # Names the stuck launches and the edges to cut.
    assert "w#0" in message and "r#0" in message
    assert "remove or reverse" in message
