"""The routing model: the analyzer's view of the executor's copy paths.

Soundness of the per-channel congestion bound rests on two identities
pinned here: the route reported for a memory pair is hop-for-hop the
``Topology.copy_path`` the simulator's copy engine reserves, and the
timeline key per hop is the engine's own serial channel key.
"""

from __future__ import annotations

from repro.analysis.routing import RoutingModel, channel_key, routing_model
from repro.machine import lassen, shepard, single_node
from repro.machine.kinds import MemKind, ProcKind
from repro.machine.model import (
    AccessLink,
    Channel,
    Machine,
    Memory,
    Processor,
)
from repro.machine.topology import Topology
from repro.runtime.copies import CopyEngine
from repro.util.units import GIB


def island_machine() -> Machine:
    """Two CPUs whose system memories share no channel (an island)."""
    procs = [
        Processor(
            uid=f"cpu{i}",
            kind=ProcKind.CPU,
            node=0,
            throughput=1e11,
            launch_overhead=1e-4,
        )
        for i in range(2)
    ]
    mems = [
        Memory(uid="sysA", kind=MemKind.SYSTEM, node=0, capacity=GIB),
        Memory(uid="sysB", kind=MemKind.SYSTEM, node=0, capacity=GIB),
        Memory(uid="zc", kind=MemKind.ZERO_COPY, node=0, capacity=GIB),
    ]
    access = [
        AccessLink(proc="cpu0", mem="sysA", bandwidth=1e11, latency=0.0),
        AccessLink(proc="cpu1", mem="sysB", bandwidth=1e11, latency=0.0),
        AccessLink(proc="cpu0", mem="zc", bandwidth=5e10, latency=0.0),
        AccessLink(proc="cpu1", mem="zc", bandwidth=5e10, latency=0.0),
    ]
    channels = [
        Channel(mem_a="sysA", mem_b="zc", bandwidth=2e10, latency=1e-5),
    ]
    return Machine(
        name="island-1n",
        processors=procs,
        memories=mems,
        access_links=access,
        channels=channels,
    )


class TestChannelKey:
    def test_matches_copy_engine_key(self):
        assert channel_key("n0.fb0", "n0.zc") == CopyEngine._channel_key(
            "n0.fb0", "n0.zc"
        )

    def test_orientation_independent(self):
        assert channel_key("a", "b") == channel_key("b", "a")


class TestRoutes:
    def test_routes_mirror_topology_paths(self):
        for machine in (shepard(2), lassen(1)):
            model = RoutingModel(machine)
            topology = Topology(machine)
            mems = [m.uid for m in machine.memories]
            for src in mems:
                for dst in mems:
                    route = model.route(src, dst)
                    path = topology.copy_path(src, dst)
                    if path is None:
                        assert route is None
                        continue
                    assert route == tuple(
                        channel_key(h.mem_a, h.mem_b) for h in path.hops
                    )

    def test_same_memory_routes_empty(self):
        model = RoutingModel(shepard(1))
        assert model.route("n0.zc", "n0.zc") == ()

    def test_channel_bandwidth_lookup(self):
        machine = shepard(1)
        model = RoutingModel(machine)
        chan = machine.channels[0]
        key = channel_key(chan.mem_a, chan.mem_b)
        assert model.channel_bandwidth(key) == chan.bandwidth
        assert model.channel_bandwidth("chan:x<->y") is None


class TestUnreachable:
    def test_connected_machines_have_no_unreachable_pairs(self):
        for machine in (shepard(2), lassen(2), single_node()):
            assert RoutingModel(machine).unreachable_pairs() == []

    def test_island_memory_is_reported(self):
        model = RoutingModel(island_machine())
        assert model.unreachable_pairs() == [
            ("sysA", "sysB"),
            ("sysB", "zc"),
        ]
        diags = model.diagnose()
        assert [d.rule_id for d in diags] == ["AM503", "AM503"]
        assert "sysB" in diags[0].message


class TestModelCache:
    def test_same_machine_object_hits_cache(self):
        machine = shepard(1)
        assert routing_model(machine) is routing_model(machine)

    def test_equal_but_distinct_machines_get_distinct_models(self):
        a, b = shepard(1), shepard(1)
        assert routing_model(a) is not routing_model(b)
