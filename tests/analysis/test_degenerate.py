"""Degenerate graphs must analyze cleanly, not crash.

``repro analyze --bounds`` composes the sanitizer, canonicalizer,
feasibility scan, routing/symmetry findings, and the static bound
analyzer.  A graph with zero tasks, or a single task kind whose group
launches have size 1 (``parts=1``), exercises every empty-sequence and
division edge in that pipeline; each case must come back as a normal
report (possibly with informational findings), never as an exception.
"""

from __future__ import annotations

import pytest

from repro.analysis import Severity, analyze
from repro.analysis.bounds import StaticBoundAnalyzer
from repro.analysis.canonical import Canonicalizer
from repro.analysis.symmetry import MachineSymmetry
from repro.machine import shepard, single_node
from repro.mapping.space import SearchSpace
from repro.runtime import SimConfig, Simulator
from repro.taskgraph import ArgSlot, GraphBuilder, Privilege
from repro.taskgraph.graph import TaskGraph


def empty_graph() -> TaskGraph:
    return TaskGraph("empty", [], [])


def lone_part_graph(launches: int = 2) -> TaskGraph:
    """One task kind, every group launch of size 1 (``parts=1``)."""
    b = GraphBuilder("lone-part")
    data = b.collection("data", nbytes=1 << 20)
    work = b.task_kind(
        "work", slots=[ArgSlot("data", Privilege.READ_WRITE)]
    )
    for _ in range(launches):
        b.launch(work, [data], size=1, flops=1e8)
    return b.build()


MACHINES = {
    "single1": lambda: single_node(cpus=1, gpus=0),
    "single4": lambda: single_node(cpus=4, gpus=1),
    "shepard2": lambda: shepard(2),
}


class TestZeroTaskGraph:
    @pytest.mark.parametrize("machine_name", sorted(MACHINES))
    def test_analyze_bounds_is_clean(self, machine_name):
        machine = MACHINES[machine_name]()
        report = analyze(empty_graph(), machine, bounds=True)
        assert report.at_least(Severity.WARNING) == []
        # Rendering must not trip on the (possibly empty) report either.
        assert isinstance(report.render(), str)

    def test_symmetry_orbit_is_trivial_not_crashing(self):
        machine = single_node(cpus=2, gpus=1)
        sym = MachineSymmetry(empty_graph(), machine)
        assert list(sym.automorphisms()) == []
        assert sym.is_trivial()

    def test_canonicalizer_tolerates_empty_graph(self):
        machine = single_node(cpus=2, gpus=1)
        canon = Canonicalizer(empty_graph(), machine)
        assert canon.dead_distribute_kinds() == frozenset()


class TestSingleKindPartsOne:
    @pytest.mark.parametrize("machine_name", sorted(MACHINES))
    def test_analyze_bounds_is_clean(self, machine_name):
        machine = MACHINES[machine_name]()
        report = analyze(lone_part_graph(), machine, bounds=True)
        assert report.at_least(Severity.ERROR) == []

    @pytest.mark.parametrize("machine_name", sorted(MACHINES))
    def test_bound_stays_sound(self, machine_name):
        machine = MACHINES[machine_name]()
        graph = lone_part_graph()
        space = SearchSpace(graph, machine)
        sim = Simulator(
            graph, machine, SimConfig(noise_sigma=0.0, spill=True)
        )
        analyzer = StaticBoundAnalyzer(graph, machine)
        result = sim.run(space.default_mapping())
        bd = analyzer.breakdown(result.executed_mapping)
        assert 0.0 < bd.total <= result.makespan

    def test_single_launch_graph_analyzes(self):
        machine = single_node(cpus=1, gpus=0)
        report = analyze(lone_part_graph(launches=1), machine, bounds=True)
        assert report.at_least(Severity.ERROR) == []
