"""Tests for the static memory feasibility pass (exactness + pruning)."""

from __future__ import annotations

import pytest

from repro.analysis import StaticMemoryFeasibility
from repro.machine import single_node
from repro.machine.kinds import MemKind
from repro.mapping import SearchSpace
from repro.runtime.memory import MemoryPlanner, OOMError
from repro.util.rng import RngStream
from repro.util.units import MIB
from tests.conftest import build_diamond_graph


@pytest.fixture
def roomy():
    graph = build_diamond_graph()
    machine = single_node(cpus=4, gpus=1)
    return graph, machine


@pytest.fixture
def cramped():
    """The diamond workload with a framebuffer too small for the grid."""
    graph = build_diamond_graph()
    machine = single_node(
        cpus=4,
        gpus=1,
        framebuffer_capacity=4 * MIB,
        sysmem_capacity=512 * MIB,
        zero_copy_capacity=512 * MIB,
    )
    return graph, machine


def test_check_matches_memory_planner_exactly(cramped):
    graph, machine = cramped
    static = StaticMemoryFeasibility(graph, machine)
    planner = MemoryPlanner(graph, machine)
    space = SearchSpace(graph, machine)
    for seed in range(30):
        mapping = space.random_mapping(RngStream(seed))
        expected = planner.check(mapping)
        got = static.check(mapping)
        assert got.per_memory == expected.per_memory
        assert got.overflows == expected.overflows


def test_oom_reason_matches_runtime_error_bytes(cramped):
    graph, machine = cramped
    static = StaticMemoryFeasibility(graph, machine)
    planner = MemoryPlanner(graph, machine)
    space = SearchSpace(graph, machine)
    saw_oom = saw_fit = False
    for seed in range(40):
        mapping = space.random_mapping(RngStream(seed))
        reason = static.oom_reason(mapping)
        if reason is None:
            saw_fit = True
            planner.ensure_fits(mapping)  # no raise
        else:
            saw_oom = True
            with pytest.raises(OOMError) as excinfo:
                planner.ensure_fits(mapping)
            assert str(excinfo.value) == reason
    assert saw_oom and saw_fit, "fixture should exercise both outcomes"


def test_oom_reason_is_memoized(roomy):
    graph, machine = roomy
    static = StaticMemoryFeasibility(graph, machine)
    mapping = SearchSpace(graph, machine).default_mapping()
    assert static.is_feasible(mapping)
    checks = static.checks
    assert static.is_feasible(mapping)
    assert static.checks == checks
    assert static.cache_hits >= 1


def test_dead_slot_options_found_when_memory_is_tiny(cramped):
    graph, machine = cramped
    static = StaticMemoryFeasibility(graph, machine)
    space = SearchSpace(graph, machine)
    dead = static.dead_slot_options(space)
    # The 16 MiB grid cannot fit the 4 MiB framebuffer whichever way the
    # GPU variants shard it.
    assert any(
        MemKind.FRAMEBUFFER in mems for mems in dead.values()
    ), dead
    # Dead options never exhaust a slot's menu.
    for (kind_name, proc, _slot), mems in dead.items():
        options = space.dims(kind_name).mem_options[proc]
        assert 0 < len(mems) < len(options)


def test_no_dead_options_on_roomy_machine(roomy):
    graph, machine = roomy
    static = StaticMemoryFeasibility(graph, machine)
    space = SearchSpace(graph, machine)
    assert static.dead_slot_options(space) == {}
    assert static.diagnose_space(space) == []


def test_diagnose_space_emits_am101(cramped):
    graph, machine = cramped
    static = StaticMemoryFeasibility(graph, machine)
    space = SearchSpace(graph, machine)
    diags = static.diagnose_space(space)
    assert diags and all(d.rule_id == "AM101" for d in diags)
    assert all("overflows memory" in d.message for d in diags)


def test_diagnose_mapping_emits_am102(cramped):
    graph, machine = cramped
    static = StaticMemoryFeasibility(graph, machine)
    space = SearchSpace(graph, machine)
    # Force everything into the tiny framebuffer via the GPU default.
    mapping = space.default_mapping()
    if static.is_feasible(mapping):
        pytest.skip("default mapping unexpectedly fits")
    diags = static.diagnose_mapping(mapping)
    assert diags and all(d.rule_id == "AM102" for d in diags)
    assert all(d.span.memory is not None for d in diags)


def test_prune_infeasible_trims_move_enumeration(cramped):
    graph, machine = cramped
    space = SearchSpace(graph, machine)
    static = StaticMemoryFeasibility(graph, machine)
    pruned = space.prune_infeasible(feasibility=static)
    assert pruned.is_pruned and not space.is_pruned
    trimmed = 0
    for (kind_name, proc, slot_index), mems in static.dead_slot_options(
        space
    ).items():
        options = pruned.searched_mem_options(kind_name, proc, slot_index)
        assert options, "pruned menus must never be empty"
        for mem in mems:
            assert mem not in options
            trimmed += 1
    assert trimmed > 0
    # dims() stays unpruned: sizes, codecs, and legalization are shared.
    for kind_name in space.kind_names():
        assert pruned.dims(kind_name) == space.dims(kind_name)


def test_prune_infeasible_default_constructs_passes(cramped):
    graph, machine = cramped
    pruned = SearchSpace(graph, machine).prune_infeasible()
    assert pruned.is_pruned
