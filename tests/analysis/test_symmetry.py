"""Machine symmetry: verified kind relabelings are simulation-invisible.

The load-bearing property is at the bottom: applying a verified
automorphism to any valid mapping leaves the noise-free simulated
makespan bit-identical, which is what makes the canonicalizer's orbit
fold result-preserving.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.canonical import Canonicalizer
from repro.analysis.symmetry import KindRelabeling, MachineSymmetry
from repro.apps import make_app
from repro.machine import lassen, shepard
from repro.machine.kinds import MemKind, ProcKind
from repro.machine.model import (
    AccessLink,
    Channel,
    Machine,
    Memory,
    Processor,
)
from repro.mapping.space import SearchSpace
from repro.runtime import SimConfig, Simulator
from repro.taskgraph import ArgSlot, GraphBuilder, Privilege
from repro.util.units import GIB

from tests.conftest import build_diamond_graph


def symmetric_machine() -> Machine:
    """A machine whose CPU/GPU sides are exact mirrors.

    Equal pools, throughputs, overheads, link speeds, and channel
    parameters make ``cpu<->gpu, system<->framebuffer`` a verified
    automorphism (zero-copy is the shared fixed point).
    """
    throughput, overhead = 1.0e11, 1.0e-4
    fast, slow = 1.0e11, 5.0e10
    chan_bw, chan_lat = 2.0e10, 1.0e-5
    procs = [
        Processor(
            uid=uid,
            kind=kind,
            node=0,
            throughput=throughput,
            launch_overhead=overhead,
        )
        for uid, kind in [
            ("cpu0", ProcKind.CPU),
            ("cpu1", ProcKind.CPU),
            ("gpu0", ProcKind.GPU),
            ("gpu1", ProcKind.GPU),
        ]
    ]
    mems = [
        Memory(uid="sys", kind=MemKind.SYSTEM, node=0, capacity=32 * GIB),
        Memory(uid="zc", kind=MemKind.ZERO_COPY, node=0, capacity=32 * GIB),
        Memory(
            uid="fb", kind=MemKind.FRAMEBUFFER, node=0, capacity=32 * GIB
        ),
    ]
    access = []
    for cpu in ("cpu0", "cpu1"):
        access += [
            AccessLink(proc=cpu, mem="sys", bandwidth=fast, latency=0.0),
            AccessLink(proc=cpu, mem="zc", bandwidth=slow, latency=0.0),
        ]
    for gpu in ("gpu0", "gpu1"):
        access += [
            AccessLink(proc=gpu, mem="fb", bandwidth=fast, latency=0.0),
            AccessLink(proc=gpu, mem="zc", bandwidth=slow, latency=0.0),
        ]
    channels = [
        Channel(mem_a="sys", mem_b="zc", bandwidth=chan_bw, latency=chan_lat),
        Channel(mem_a="fb", mem_b="zc", bandwidth=chan_bw, latency=chan_lat),
        Channel(mem_a="sys", mem_b="fb", bandwidth=chan_bw, latency=chan_lat),
    ]
    return Machine(
        name="sym-1n",
        processors=procs,
        memories=mems,
        access_links=access,
        channels=channels,
    )


def single_kind_graph():
    b = GraphBuilder("lone")
    data = b.collection("data", nbytes=1 << 24)
    work = b.task_kind(
        "work", slots=[ArgSlot("data", Privilege.READ_WRITE)]
    )
    for _ in range(3):
        b.launch(work, [data], size=4, flops=4e8)
    return b.build()


class TestStockMachinesAreAsymmetric:
    @pytest.mark.parametrize("factory", [shepard, lassen])
    def test_no_automorphisms(self, factory):
        machine = factory(2)
        graph = make_app("stencil").graph(machine)
        assert MachineSymmetry(graph, machine).is_trivial()

    def test_gpu_speedup_blocks_relabeling(self):
        machine = symmetric_machine()
        b = GraphBuilder("biased")
        data = b.collection("data", nbytes=1 << 24)
        kind = b.task_kind(
            "work",
            slots=[ArgSlot("data", Privilege.READ_WRITE)],
            gpu_speedup=4.0,
        )
        b.launch(kind, [data], size=4, flops=4e8)
        assert MachineSymmetry(b.build(), machine).is_trivial()


class TestSymmetricMachine:
    def test_mirror_automorphism_is_found(self):
        sym = MachineSymmetry(build_diamond_graph(), symmetric_machine())
        assert [rel.describe() for rel in sym.automorphisms()] == [
            "cpu->gpu, gpu->cpu, system->framebuffer, framebuffer->system"
        ]

    def test_broken_mirror_is_rejected(self):
        machine = symmetric_machine()
        processors = [
            p if p.uid != "gpu1" else type(p)(
                uid=p.uid,
                kind=p.kind,
                node=p.node,
                throughput=p.throughput * 2,
                launch_overhead=p.launch_overhead,
            )
            for p in machine.processors
        ]
        skewed = Machine(
            name="skewed-1n",
            processors=processors,
            memories=list(machine.memories),
            access_links=list(machine.access_links),
            channels=list(machine.channels),
        )
        assert MachineSymmetry(build_diamond_graph(), skewed).is_trivial()


class TestRelabelingAlgebra:
    def test_apply_decision_relabels_all_kinds(self):
        rel = KindRelabeling(
            proc_map={ProcKind.CPU: ProcKind.GPU, ProcKind.GPU: ProcKind.CPU},
            mem_map={
                MemKind.SYSTEM: MemKind.FRAMEBUFFER,
                MemKind.FRAMEBUFFER: MemKind.SYSTEM,
            },
        )
        graph = build_diamond_graph()
        machine = symmetric_machine()
        space = SearchSpace(graph, machine)
        mapping = space.default_mapping()
        image = rel.apply(mapping)
        for name, _ in mapping.key():
            before = mapping.decision(name)
            after = image.decision(name)
            assert after.proc_kind == rel.proc(before.proc_kind)
            assert after.mem_kinds == tuple(
                rel.mem(mk) for mk in before.mem_kinds
            )
            assert after.distribute == before.distribute
        # The mirror is an involution.
        assert rel.apply(image).key() == mapping.key()

    def test_identity_describes_itself(self):
        assert KindRelabeling().describe() == "identity"
        assert KindRelabeling().is_identity()


class TestOrbitFoldPreservesMakespan:
    """Relabeled mappings simulate bit-identically (noise-free)."""

    def test_makespan_invariant_under_relabeling(self):
        graph = build_diamond_graph()
        machine = symmetric_machine()
        sym = MachineSymmetry(graph, machine)
        assert not sym.is_trivial()
        space = SearchSpace(graph, machine)
        simulator = Simulator(
            graph, machine, SimConfig(noise_sigma=0.0, spill=True)
        )
        rng = random.Random(42)
        mappings = [space.default_mapping()] + [
            space.random_mapping(rng, valid=True) for _ in range(10)
        ]
        for mapping in mappings:
            base = simulator.run(mapping).makespan
            for rel in sym.automorphisms():
                image = rel.apply(mapping)
                assert simulator.run(image).makespan == base

    def test_canonical_folds_orbit_to_least_key(self):
        graph = build_diamond_graph()
        machine = symmetric_machine()
        canon = Canonicalizer(graph, machine)
        sym = MachineSymmetry(graph, machine)
        space = SearchSpace(graph, machine)
        rng = random.Random(7)
        folded_any = False
        for _ in range(10):
            mapping = space.random_mapping(rng, valid=True)
            out = canon.canonical(mapping)
            # Idempotent, and minimal over the mapping's orbit.
            assert canon.canonical(out).key() == out.key()
            orbit_keys = [out.key()] + [
                canon.canonical(rel.apply(mapping)).key()
                for rel in sym.automorphisms()
            ]
            assert out.key() == min(orbit_keys)
            if out.key() != mapping.key():
                folded_any = True
        assert folded_any
        assert canon.symmetry_folds > 0

    def test_asymmetric_machine_never_symmetry_folds(self):
        machine = shepard(1)
        graph = make_app("stencil").graph(machine)
        canon = Canonicalizer(graph, machine)
        space = SearchSpace(graph, machine)
        rng = random.Random(3)
        for _ in range(5):
            canon.canonical(space.random_mapping(rng, valid=True))
        assert canon.symmetry_folds == 0


class TestSymmetricProcDrops:
    def test_single_kind_space_drops_redundant_proc(self):
        graph = single_kind_graph()
        machine = symmetric_machine()
        canon = Canonicalizer(graph, machine)
        space = SearchSpace(graph, machine)
        pruned = space.prune_infeasible(canonicalizer=canon)
        assert pruned.is_pruned
        # GPU folds onto CPU (the lexicographically smaller value);
        # full enumeration still reports both options.
        assert pruned.searched_proc_options("work") == (ProcKind.CPU,)
        assert set(space.dims("work").proc_options) == {
            ProcKind.CPU,
            ProcKind.GPU,
        }

    def test_multi_kind_space_keeps_all_procs(self):
        graph = build_diamond_graph()
        machine = symmetric_machine()
        canon = Canonicalizer(graph, machine)
        space = SearchSpace(graph, machine)
        pruned = space.prune_infeasible(canonicalizer=canon)
        for name in pruned.kind_names():
            assert pruned.searched_proc_options(name) == pruned.dims(
                name
            ).proc_options

    def test_asymmetric_machine_drops_nothing(self):
        machine = shepard(1)
        graph = single_kind_graph()
        canon = Canonicalizer(graph, machine)
        space = SearchSpace(graph, machine)
        pruned = space.prune_infeasible(canonicalizer=canon)
        assert pruned.searched_proc_options("work") == pruned.dims(
            "work"
        ).proc_options


class TestDiagnostics:
    def test_am502_reported_for_symmetric_machine(self):
        graph = build_diamond_graph()
        canon = Canonicalizer(graph, symmetric_machine())
        diags = canon.diagnose_symmetry()
        assert [d.rule_id for d in diags] == ["AM502"]
        assert "system->framebuffer" in diags[0].message

    def test_no_am502_for_stock_machines(self):
        machine = shepard(1)
        graph = make_app("stencil").graph(machine)
        assert Canonicalizer(graph, machine).diagnose_symmetry() == []
