"""Unit tests for mapping persistence (save/load round trip)."""

import pytest

from repro.machine.kinds import MemKind, ProcKind
from repro.mapping import (
    Mapping,
    MappingDecision,
    is_valid,
    load_mapping,
    save_mapping,
)


class TestRoundTrip:
    def test_identity(self, diamond_graph, diamond_space, tmp_path, rng):
        mapping = diamond_space.random_mapping(rng)
        path = tmp_path / "best.json"
        save_mapping(mapping, path, application=diamond_graph.name)
        loaded = load_mapping(path, graph=diamond_graph)
        assert loaded == mapping

    def test_loaded_mapping_executes(
        self, diamond_graph, diamond_space, diamond_sim, tmp_path
    ):
        mapping = diamond_space.default_mapping()
        path = tmp_path / "m.json"
        save_mapping(mapping, path, application=diamond_graph.name)
        loaded = load_mapping(path, graph=diamond_graph)
        result = diamond_sim.run(loaded)
        assert result.makespan == diamond_sim.run(mapping).makespan

    def test_without_graph_validation(self, diamond_space, tmp_path):
        mapping = diamond_space.default_mapping()
        path = tmp_path / "m.json"
        save_mapping(mapping, path)
        assert load_mapping(path) == mapping


class TestValidationOnLoad:
    def test_wrong_application_rejected(
        self, diamond_graph, diamond_space, tmp_path
    ):
        path = tmp_path / "m.json"
        save_mapping(
            diamond_space.default_mapping(), path, application="other-app"
        )
        with pytest.raises(ValueError, match="saved for 'other-app'"):
            load_mapping(path, graph=diamond_graph)

    def test_missing_kind_rejected(self, diamond_graph, tmp_path):
        partial = Mapping(
            {
                "source": MappingDecision(
                    True, ProcKind.GPU, (MemKind.FRAMEBUFFER,)
                )
            }
        )
        path = tmp_path / "m.json"
        save_mapping(partial, path, application=diamond_graph.name)
        with pytest.raises(ValueError, match="no decision"):
            load_mapping(path, graph=diamond_graph)

    def test_slot_mismatch_rejected(self, diamond_graph, diamond_space, tmp_path):
        mapping = diamond_space.default_mapping().with_decision(
            "sink",
            MappingDecision(True, ProcKind.GPU, (MemKind.FRAMEBUFFER,)),
        )
        path = tmp_path / "m.json"
        save_mapping(mapping, path, application=diamond_graph.name)
        with pytest.raises(ValueError, match="slots"):
            load_mapping(path, graph=diamond_graph)

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"format": "nope"}')
        with pytest.raises(ValueError, match="not an AutoMap mapping"):
            load_mapping(path)


class TestMapperIntegration:
    def test_load_into_mapper(
        self, diamond_graph, diamond_space, mini_machine, tmp_path
    ):
        """The production flow: tune once, save, reload into the
        runtime-facing mapper."""
        from repro.core import AutoMapMapper

        mapping = diamond_space.default_mapping()
        path = tmp_path / "prod.json"
        save_mapping(mapping, path, application=diamond_graph.name)
        loaded = load_mapping(path, graph=diamond_graph)
        assert is_valid(diamond_graph, mini_machine, loaded)
        mapper = AutoMapMapper(mini_machine, loaded)
        launch = diamond_graph.launches[0]
        assert len(mapper.map_task(launch)) == launch.size
