"""Unit tests for the search algorithms (CD, CCD, colocation, baselines)."""

import pytest

from repro.core import OracleConfig, SimulationOracle
from repro.machine.kinds import MemKind, ProcKind
from repro.mapping import SearchSpace, is_valid
from repro.runtime import SimConfig, Simulator
from repro.search import (
    ConstrainedCoordinateDescent,
    CoordinateDescent,
    ExhaustiveSearch,
    RandomSearch,
    apply_colocation_constraints,
)
from repro.taskgraph import induced_collection_graph
from repro.util.rng import RngStream


def make_oracle(graph, machine, **kwargs):
    sim = Simulator(graph, machine, SimConfig(noise_sigma=0.0, seed=5))
    return SimulationOracle(sim, OracleConfig(runs_per_eval=1, **kwargs))


class TestColocation:
    def test_result_always_valid(self, diamond_graph, mini_machine, rng):
        space = SearchSpace(diamond_graph, mini_machine)
        colgraph = induced_collection_graph(diamond_graph)
        for i, kind_name in enumerate(space.kind_names()):
            dims = space.dims(kind_name)
            for slot in range(dims.num_slots):
                for proc in dims.proc_options:
                    for mem in dims.mem_options[proc]:
                        start = (
                            space.random_mapping(rng.fork(str(i), str(slot)))
                            .with_proc(kind_name, proc)
                            .with_mem(kind_name, slot, mem)
                        )
                        out = apply_colocation_constraints(
                            space, colgraph, start, kind_name, slot,
                            proc, mem,
                        )
                        assert is_valid(diamond_graph, mini_machine, out)

    def test_overlapping_slots_colocated(self, diamond_graph, mini_machine):
        """left.grid and right.grid overlap (halo) -> moving one drags
        the other (constraint 2)."""
        space = SearchSpace(diamond_graph, mini_machine)
        colgraph = induced_collection_graph(diamond_graph)
        assert colgraph.connected(("left", 0), ("right", 0))
        start = space.default_mapping().with_mem(
            "left", 0, MemKind.ZERO_COPY
        )
        out = apply_colocation_constraints(
            space, colgraph, start, "left", 0,
            ProcKind.GPU, MemKind.ZERO_COPY,
        )
        assert out.decision("right").mem_kinds[0] is MemKind.ZERO_COPY

    def test_origin_preserved(self, diamond_graph, mini_machine):
        space = SearchSpace(diamond_graph, mini_machine)
        colgraph = induced_collection_graph(diamond_graph)
        start = space.default_mapping().with_mem(
            "left", 0, MemKind.ZERO_COPY
        )
        out = apply_colocation_constraints(
            space, colgraph, start, "left", 0,
            ProcKind.GPU, MemKind.ZERO_COPY,
        )
        assert out.decision("left").mem_kinds[0] is MemKind.ZERO_COPY
        assert out.decision("left").proc_kind is ProcKind.GPU


class TestCD:
    def test_improves_or_matches_start(self, diamond_graph, mini_machine):
        oracle = make_oracle(diamond_graph, mini_machine)
        space = SearchSpace(diamond_graph, mini_machine)
        start = space.default_mapping()
        start_perf = oracle.evaluate(start).performance
        result = CoordinateDescent().search(
            space, oracle, RngStream(1)
        )
        assert result.best_performance <= start_perf
        assert result.found

    def test_all_tested_mappings_valid(self, diamond_graph, mini_machine):
        oracle = make_oracle(diamond_graph, mini_machine)
        space = SearchSpace(diamond_graph, mini_machine)
        CoordinateDescent().search(space, oracle, RngStream(1))
        assert oracle.invalid_suggestions == 0

    def test_linear_evaluation_count(self, diamond_graph, mini_machine):
        oracle = make_oracle(diamond_graph, mini_machine)
        space = SearchSpace(diamond_graph, mini_machine)
        CoordinateDescent().search(space, oracle, RngStream(1))
        # <= 1 + per kind (dist options + procs x slots x mems).
        bound = 1
        for name in space.kind_names():
            dims = space.dims(name)
            bound += len(dims.distribute_options)
            for proc in dims.proc_options:
                bound += dims.num_slots * len(dims.mem_options[proc])
        assert oracle.suggested <= bound

    def test_respects_budget(self, diamond_graph, mini_machine):
        oracle = make_oracle(
            diamond_graph, mini_machine, max_evaluations=3
        )
        CoordinateDescent().search(
            SearchSpace(diamond_graph, mini_machine), oracle, RngStream(1)
        )
        assert oracle.evaluated <= 4  # start + budget slack of one


class TestCCD:
    def test_at_least_as_good_as_cd(self, diamond_graph, mini_machine):
        space = SearchSpace(diamond_graph, mini_machine)
        cd_oracle = make_oracle(diamond_graph, mini_machine)
        cd = CoordinateDescent().search(space, cd_oracle, RngStream(1))
        ccd_oracle = make_oracle(diamond_graph, mini_machine)
        ccd = ConstrainedCoordinateDescent().search(
            space, ccd_oracle, RngStream(1)
        )
        assert ccd.best_performance <= cd.best_performance * 1.0001

    def test_suggests_more_than_cd(self, diamond_graph, mini_machine):
        space = SearchSpace(diamond_graph, mini_machine)
        cd_oracle = make_oracle(diamond_graph, mini_machine)
        CoordinateDescent().search(space, cd_oracle, RngStream(1))
        ccd_oracle = make_oracle(diamond_graph, mini_machine)
        ConstrainedCoordinateDescent().search(space, ccd_oracle, RngStream(1))
        assert ccd_oracle.suggested > cd_oracle.suggested

    def test_one_rotation_equals_cd(self, diamond_graph, mini_machine):
        space = SearchSpace(diamond_graph, mini_machine)
        a = make_oracle(diamond_graph, mini_machine)
        cd = CoordinateDescent().search(space, a, RngStream(1))
        b = make_oracle(diamond_graph, mini_machine)
        one = ConstrainedCoordinateDescent(rotations=1).search(
            space, b, RngStream(1)
        )
        # One CCD rotation prunes everything immediately after; its single
        # rotation still uses constraints, so only the best is compared.
        assert one.best_performance <= cd.best_performance * 1.05

    def test_invalid_rotations_rejected(self):
        with pytest.raises(ValueError):
            ConstrainedCoordinateDescent(rotations=0)

    def test_valid_suggestions_only(self, diamond_graph, mini_machine):
        oracle = make_oracle(diamond_graph, mini_machine)
        ConstrainedCoordinateDescent().search(
            SearchSpace(diamond_graph, mini_machine), oracle, RngStream(1)
        )
        assert oracle.invalid_suggestions == 0


class TestExhaustive:
    def test_finds_global_optimum(self, mini_machine):
        from repro.taskgraph import GraphBuilder, Privilege

        b = GraphBuilder("tiny")
        c = b.collection("c", nbytes=1 << 22)
        k1 = b.task_kind("k1", slots=[("c", Privilege.READ_WRITE)])
        k2 = b.task_kind("k2", slots=[("c", Privilege.READ)])
        b.launch(k1, [c], size=2, flops=5e7)
        b.launch(k2, [c], size=2, flops=5e7)
        graph = b.build()
        space = SearchSpace(graph, mini_machine)
        oracle = make_oracle(graph, mini_machine)
        result = ExhaustiveSearch().search(space, oracle, RngStream(1))
        # CCD must be within the exhaustive optimum (no noise here).
        oracle2 = make_oracle(graph, mini_machine)
        ccd = ConstrainedCoordinateDescent().search(
            space, oracle2, RngStream(1)
        )
        assert result.best_performance <= ccd.best_performance * 1.0001

    def test_size_guard(self, diamond_graph, mini_machine):
        space = SearchSpace(diamond_graph, mini_machine)
        with pytest.raises(ValueError):
            ExhaustiveSearch(max_size=10).search(
                space, make_oracle(diamond_graph, mini_machine), RngStream(1)
            )


class TestRandom:
    def test_returns_best_seen(self, diamond_graph, mini_machine):
        oracle = make_oracle(
            diamond_graph, mini_machine, max_evaluations=30
        )
        result = RandomSearch().search(
            SearchSpace(diamond_graph, mini_machine), oracle, RngStream(3)
        )
        assert result.found
        best = min(
            r.mean for r in oracle.profiles.all_records() if r.samples
        )
        assert result.best_performance == pytest.approx(best)

    def test_max_draws(self, diamond_graph, mini_machine):
        oracle = make_oracle(diamond_graph, mini_machine)
        RandomSearch(max_draws=5).search(
            SearchSpace(diamond_graph, mini_machine), oracle, RngStream(3)
        )
        assert oracle.suggested <= 6
