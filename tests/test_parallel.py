"""Tests for :mod:`repro.parallel` — the batch evaluation engine.

The contract under test: with a fixed seed, every observable result of a
search run through :class:`~repro.parallel.BatchOracle` — best mapping,
best performance, the full §5.3 trace, and the suggested/evaluated
accounting — is bit-identical between the serial path (``workers=1``,
no processes spawned) and the process-pool path.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.apps import make_app
from repro.core import AutoMapDriver, OracleConfig, SimulationOracle
from repro.machine import shepard
from repro.parallel import BatchOracle, SimulatorSpec
from repro.runtime import SimConfig, Simulator
from repro.util.rng import RngStream

SEED = 2023

ALGORITHMS = ["ccd", "cd", "random", "opentuner"]


def make_driver(app_name, algorithm, workers, max_suggestions=800, **kwargs):
    machine = shepard(2)
    app = make_app(app_name, **kwargs)
    return AutoMapDriver(
        app.graph(machine),
        machine,
        algorithm=algorithm,
        oracle_config=OracleConfig(max_suggestions=max_suggestions),
        sim_config=SimConfig(noise_sigma=0.04, seed=SEED, spill=True),
        space=app.space(machine),
        seed=SEED,
        workers=workers,
    )


def assert_reports_identical(serial, parallel):
    assert serial.best_mapping.key() == parallel.best_mapping.key()
    assert serial.best_mean == parallel.best_mean
    assert serial.best_stddev == parallel.best_stddev
    assert serial.search.trace == parallel.search.trace
    assert serial.suggested == parallel.suggested
    assert serial.evaluated == parallel.evaluated
    assert serial.search_seconds == parallel.search_seconds


class TestParallelSerialEquivalence:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_circuit(self, algorithm):
        serial = make_driver("circuit", algorithm, workers=1).tune()
        parallel = make_driver("circuit", algorithm, workers=4).tune()
        assert_reports_identical(serial, parallel)

    @pytest.mark.parametrize("algorithm", ["ccd", "random"])
    def test_stencil(self, algorithm):
        serial = make_driver("stencil", algorithm, workers=1).tune()
        parallel = make_driver("stencil", algorithm, workers=4).tune()
        assert_reports_identical(serial, parallel)


class TestBatchOracle:
    @pytest.fixture
    def setup(self, diamond_graph, mini_machine, diamond_space):
        simulator = Simulator(
            diamond_graph, mini_machine, SimConfig(noise_sigma=0.03, seed=7)
        )
        oracle = SimulationOracle(simulator, OracleConfig())
        return simulator, oracle, diamond_space

    def test_evaluate_many_dedups_within_batch(self, setup):
        simulator, oracle, space = setup
        rng = RngStream(11)
        unique = [
            space.random_mapping(rng.fork(str(i)), valid=True)
            for i in range(4)
        ]
        batch = unique + unique  # every candidate suggested twice
        with BatchOracle(oracle, workers=2) as batch_oracle:
            outcomes = batch_oracle.evaluate_many(batch)
        # All 8 suggestions are accounted for, but each unique mapping is
        # simulated exactly once; the second half comes from the profiles
        # database.
        assert len(outcomes) == len(batch)
        assert oracle.suggested == len(batch)
        unique_keys = {m.key() for m in unique}
        assert simulator.executions == len(unique_keys)
        for first, second in zip(outcomes[:4], outcomes[4:]):
            assert second.cached
            assert first.performance == second.performance

    def test_workers_1_never_spawns_processes(self, setup):
        _, oracle, space = setup
        rng = RngStream(12)
        batch = [
            space.random_mapping(rng.fork(str(i)), valid=True)
            for i in range(6)
        ]
        batch_oracle = BatchOracle(oracle, workers=1)
        outcomes = batch_oracle.evaluate_many(batch)
        assert len(outcomes) == len(batch)
        assert batch_oracle.batch_size == 1
        assert not batch_oracle.pool_started
        assert batch_oracle.prefetch(batch) == 0
        assert not batch_oracle.pool_started
        batch_oracle.close()

    def test_evaluate_many_stops_at_budget(
        self, diamond_graph, mini_machine, diamond_space
    ):
        simulator = Simulator(
            diamond_graph, mini_machine, SimConfig(noise_sigma=0.03, seed=7)
        )
        oracle = SimulationOracle(
            simulator, OracleConfig(max_suggestions=3)
        )
        rng = RngStream(13)
        batch = [
            diamond_space.random_mapping(rng.fork(str(i)), valid=True)
            for i in range(6)
        ]
        with BatchOracle(oracle, workers=2) as batch_oracle:
            outcomes = batch_oracle.evaluate_many(batch)
        assert len(outcomes) == 3
        assert oracle.suggested == 3

    def test_prefetch_trims_to_budget(self, diamond_graph, mini_machine, diamond_space):
        simulator = Simulator(
            diamond_graph, mini_machine, SimConfig(noise_sigma=0.03, seed=7)
        )
        oracle = SimulationOracle(
            simulator, OracleConfig(max_suggestions=2)
        )
        rng = RngStream(14)
        batch = [
            diamond_space.random_mapping(rng.fork(str(i)), valid=True)
            for i in range(8)
        ]
        with BatchOracle(oracle, workers=2) as batch_oracle:
            submitted = batch_oracle.prefetch(batch)
        assert submitted <= 2

    def test_peek_matches_evaluate(self, setup):
        simulator, oracle, space = setup
        batch_oracle = BatchOracle(oracle, workers=1)
        mapping = space.default_mapping()
        # Unknown candidates peek as None (an execution would be needed).
        assert batch_oracle.peek(mapping) is None
        outcome = batch_oracle.evaluate(mapping)
        # Known candidates peek exactly what a re-evaluation would report.
        assert batch_oracle.peek(mapping) == outcome.performance
        assert batch_oracle.evaluate(mapping).performance == outcome.performance
        batch_oracle.close()

    def test_invalid_candidates_never_reach_workers(self, setup):
        simulator, oracle, space = setup
        invalid = space.random_mapping(RngStream(15), valid=False)
        from repro.mapping.validate import explain_invalid

        if explain_invalid(simulator.graph, simulator.machine, invalid) is None:
            pytest.skip("random unconstrained draw happened to be valid")
        with BatchOracle(oracle, workers=2) as batch_oracle:
            outcomes = batch_oracle.evaluate_many([invalid])
        assert outcomes[0].invalid
        assert simulator.executions == 0
        # Nothing needed simulating, so the pool was never started.
        assert not batch_oracle.pool_started


class TestSimulatorSpec:
    def test_spec_rebuilds_identical_simulator(self, diamond_graph, mini_machine):
        simulator = Simulator(
            diamond_graph, mini_machine, SimConfig(noise_sigma=0.03, seed=7)
        )
        rebuilt = SimulatorSpec.of(simulator).build()
        mapping = None
        from repro.mapping import SearchSpace

        mapping = SearchSpace(diamond_graph, mini_machine).default_mapping()
        a = simulator.run(mapping, runs=5)
        b = rebuilt.run(mapping, runs=5)
        assert a.makespan == b.makespan
        assert a.samples == b.samples

    def test_preload_short_circuits_execution(self, diamond_graph, mini_machine):
        config = SimConfig(noise_sigma=0.03, seed=7)
        source = Simulator(diamond_graph, mini_machine, config)
        target = Simulator(diamond_graph, mini_machine, config)
        from repro.mapping import SearchSpace

        mapping = SearchSpace(diamond_graph, mini_machine).default_mapping()
        result = source.run(mapping)
        assert target.cached(mapping) is None
        assert target.preload(mapping, result)
        assert target.executions == 1
        replay = target.run(mapping, runs=3)
        assert target.executions == 1  # pure cache hit
        assert replay.makespan == result.makespan
        # Double preload is a no-op.
        assert not target.preload(mapping, result)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="wall-clock speedup needs >= 4 cores",
)
def test_ccd_circuit_wall_clock_speedup():
    """Acceptance: CCD on a circuit instance whose simulations are
    expensive enough to dominate (≈30 ms each) must get measurably
    faster with 4 workers."""

    def timed(workers):
        driver = make_driver(
            "circuit", "ccd", workers, max_suggestions=400, iterations=30
        )
        start = time.perf_counter()
        report = driver.tune()
        return report, time.perf_counter() - start

    serial_report, serial_wall = timed(1)
    parallel_report, parallel_wall = timed(4)
    assert_reports_identical(serial_report, parallel_report)
    # Lenient threshold: CI machines are noisy; the point is that the
    # pool pays for itself, not the exact scaling factor.
    assert parallel_wall < serial_wall * 0.85, (
        f"no speedup: serial {serial_wall:.2f}s vs "
        f"parallel {parallel_wall:.2f}s"
    )
