"""Generator-family coverage (satellite of the fuzz-hardening PR).

Every family must (a) build a well-formed graph on every zoo machine,
(b) sanitize clean under the AM30x pass — the derived dependences are
exactly the declared data flow, and (c) round-trip its mappings
through save/load against a zoo machine's graph.  Parameter validation
is loud: fuzz-driven construction must fail fast on nonsense knobs.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import Severity, analyze
from repro.analysis.sanitizer import sanitize_graph
from repro.apps import APP_REGISTRY, make_app
from repro.generators import GENERATOR_FAMILIES
from repro.machine import MACHINE_ZOO, helix, lopsided_node, mirrored_node
from repro.mapping.io import load_mapping, save_mapping
from repro.mapping.space import SearchSpace
from repro.runtime import SimConfig, Simulator

FAMILY_CASES = {
    "forkjoin": [{}, {"width": 1}, {"width": 8, "iterations": 3}],
    "halo": [{}, {"parts": 1}, {"halo": 1, "elems": 512}],
    "pipeline": [{}, {"layers": 1}, {"layers": 6, "parts": 2}],
    "reduction": [{}, {"levels": 1}, {"levels": 4, "fanout": 2, "parts": 1}],
}

ZOO = {
    "helix3": lambda: helix(3),
    "mirrored2": lambda: mirrored_node(2),
    "lopsided2": lambda: lopsided_node(2),
}


def test_families_cover_registry():
    assert set(FAMILY_CASES) == set(GENERATOR_FAMILIES)
    assert set(GENERATOR_FAMILIES) <= set(APP_REGISTRY)


@pytest.mark.parametrize("family", sorted(FAMILY_CASES))
@pytest.mark.parametrize("machine_name", sorted(ZOO))
def test_builds_and_sanitizes_clean(family, machine_name):
    machine = ZOO[machine_name]()
    for kwargs in FAMILY_CASES[family]:
        graph = make_app(family, **kwargs).graph(machine)
        assert len(graph) > 0
        diags = sanitize_graph(graph)
        am3 = [d for d in diags if d.rule_id.startswith("AM3")]
        assert am3 == [], f"{family} {kwargs}: {am3}"


@pytest.mark.parametrize("family", sorted(FAMILY_CASES))
def test_mapping_save_load_round_trip(family, tmp_path):
    machine = helix(3)
    app = make_app(family)
    graph = app.graph(machine)
    space = SearchSpace(graph, machine)
    rng = random.Random(11)
    mappings = [space.default_mapping()] + [
        space.random_mapping(rng, valid=True) for _ in range(3)
    ]
    for i, mapping in enumerate(mappings):
        path = tmp_path / f"{family}-{i}.json"
        save_mapping(mapping, path, application=graph.name)
        back = load_mapping(path, graph=graph)
        assert back.key() == mapping.key()


@pytest.mark.parametrize("family", sorted(FAMILY_CASES))
def test_default_mapping_simulates_on_zoo(family):
    machine = mirrored_node(2)
    graph = make_app(family).graph(machine)
    space = SearchSpace(graph, machine)
    sim = Simulator(graph, machine, SimConfig(noise_sigma=0.0, spill=True))
    assert sim.run(space.default_mapping()).makespan > 0.0


@pytest.mark.parametrize("family", sorted(FAMILY_CASES))
def test_analyze_reports_no_errors(family):
    machine = helix(2)
    graph = make_app(family).graph(machine)
    report = analyze(graph, machine, bounds=True)
    assert report.at_least(Severity.ERROR) == []


class TestParameterValidation:
    @pytest.mark.parametrize(
        "family,kwargs",
        [
            ("forkjoin", {"width": 0}),
            ("forkjoin", {"elems": -4}),
            ("forkjoin", {"iterations": 0}),
            ("forkjoin", {"work_flops": 0.0}),
            ("halo", {"halo": 0}),
            ("halo", {"parts": -1}),
            ("pipeline", {"layers": 0}),
            ("pipeline", {"layers": 1000}),
            ("pipeline", {"hidden": 1}),
            ("reduction", {"fanout": 1}),
            ("reduction", {"levels": 0}),
            ("reduction", {"iterations": True}),
        ],
    )
    def test_bad_knobs_raise(self, family, kwargs):
        with pytest.raises(ValueError):
            make_app(family, **kwargs)

    def test_unknown_knob_is_type_error(self):
        with pytest.raises(TypeError):
            make_app("forkjoin", widht=4)


def test_zoo_and_families_compose_everywhere():
    """Every (family, zoo machine) pair yields a searchable space."""
    for machine_name, factory in MACHINE_ZOO.items():
        machine = factory(1)
        for family in GENERATOR_FAMILIES:
            space = SearchSpace(make_app(family).graph(machine), machine)
            assert space.size() >= 1, (machine_name, family)
