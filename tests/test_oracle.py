"""Unit tests for the evaluation oracle (dedup, rejection, budgets)."""

import pytest

from repro.core import OracleConfig, SimulationOracle
from repro.machine.kinds import ProcKind
from repro.mapping import SearchSpace
from repro.runtime import SimConfig, Simulator
from repro.search.base import INFEASIBLE
from repro.machine import single_node
from repro.taskgraph import GraphBuilder, Privilege
from repro.util.units import MIB


@pytest.fixture
def oracle(diamond_graph, mini_machine):
    sim = Simulator(
        diamond_graph, mini_machine, SimConfig(noise_sigma=0.02, seed=5)
    )
    return SimulationOracle(sim, OracleConfig(runs_per_eval=7))


class TestEvaluate:
    def test_valid_mapping_measured(self, oracle, diamond_space):
        outcome = oracle.evaluate(diamond_space.default_mapping())
        assert outcome.ok
        assert 0 < outcome.performance < INFEASIBLE
        assert oracle.evaluated == 1 and oracle.suggested == 1

    def test_averages_runs(self, oracle, diamond_space):
        oracle.evaluate(diamond_space.default_mapping())
        record = oracle.profiles.lookup(diamond_space.default_mapping())
        assert record is not None and record.count == 7

    def test_dedup_returns_cached(self, oracle, diamond_space):
        mapping = diamond_space.default_mapping()
        first = oracle.evaluate(mapping)
        second = oracle.evaluate(mapping)
        assert second.cached
        assert second.performance == first.performance
        assert oracle.suggested == 2 and oracle.evaluated == 1

    def test_invalid_rejected_without_execution(self, oracle, diamond_space):
        bad = diamond_space.default_mapping().with_proc(
            "source", ProcKind.CPU
        )
        outcome = oracle.evaluate(bad)
        assert outcome.invalid
        assert outcome.performance == INFEASIBLE
        assert oracle.evaluated == 0
        assert oracle.invalid_suggestions == 1

    def test_trace_monotone_best(self, oracle, diamond_space, rng):
        for i in range(10):
            oracle.evaluate(diamond_space.random_mapping(rng.fork(str(i))))
        bests = [p.best_performance for p in oracle.trace]
        assert bests == sorted(bests, reverse=True)

    def test_sim_clock_advances(self, oracle, diamond_space):
        oracle.evaluate(diamond_space.default_mapping())
        assert oracle.sim_elapsed > 0
        assert 0 < oracle.evaluation_fraction <= 1.0


class TestOOMHandling:
    def test_oom_reported_failed(self):
        machine = single_node(
            cpus=2, gpus=1, framebuffer_capacity=MIB,
            sysmem_capacity=256 * MIB, zero_copy_capacity=256 * MIB,
        )
        b = GraphBuilder("big")
        c = b.collection("c", nbytes=64 * MIB)
        k = b.task_kind("k", slots=[("c", Privilege.READ_WRITE)])
        b.launch(k, [c], size=2, flops=1e6)
        graph = b.build()
        sim = Simulator(graph, machine, SimConfig(noise_sigma=0, spill=False))
        oracle = SimulationOracle(sim, OracleConfig())
        space = SearchSpace(graph, machine)
        outcome = oracle.evaluate(space.default_mapping())
        assert outcome.failed
        assert oracle.failed_evaluations == 1
        # Re-suggesting the failed mapping hits the failure cache.
        again = oracle.evaluate(space.default_mapping())
        assert again.failed and again.cached


class TestBudgets:
    def test_max_evaluations(self, diamond_graph, mini_machine, diamond_space, rng):
        sim = Simulator(diamond_graph, mini_machine, SimConfig(seed=1))
        oracle = SimulationOracle(
            sim, OracleConfig(max_evaluations=3)
        )
        i = 0
        while not oracle.exhausted:
            oracle.evaluate(diamond_space.random_mapping(rng.fork(str(i))))
            i += 1
        assert oracle.evaluated == 3

    def test_max_suggestions(self, diamond_graph, mini_machine, diamond_space):
        sim = Simulator(diamond_graph, mini_machine, SimConfig(seed=1))
        oracle = SimulationOracle(sim, OracleConfig(max_suggestions=5))
        mapping = diamond_space.default_mapping()
        while not oracle.exhausted:
            oracle.evaluate(mapping)
        assert oracle.suggested == 5

    def test_max_sim_seconds(self, diamond_graph, mini_machine, diamond_space, rng):
        sim = Simulator(diamond_graph, mini_machine, SimConfig(seed=1))
        oracle = SimulationOracle(
            sim, OracleConfig(max_sim_seconds=1e-9)
        )
        oracle.evaluate(diamond_space.default_mapping())
        assert oracle.exhausted


class TestMetric:
    def test_custom_metric_used(self, diamond_graph, mini_machine, diamond_space):
        sim = Simulator(diamond_graph, mini_machine, SimConfig(seed=1))

        def metric(report):
            return report.kind_finish["source"]

        oracle = SimulationOracle(
            sim, OracleConfig(metric=metric, runs_per_eval=1)
        )
        outcome = oracle.evaluate(diamond_space.default_mapping())
        full = sim.run(diamond_space.default_mapping())
        assert outcome.performance < full.makespan

    def test_kind_runtimes_orders_by_busy(self, oracle, diamond_space):
        runtimes = oracle.kind_runtimes(diamond_space.default_mapping())
        assert set(runtimes) == {"source", "left", "right", "sink"}
        assert all(v >= 0 for v in runtimes.values())


class TestMeasureMore:
    def test_extends_record(self, oracle, diamond_space):
        mapping = diamond_space.default_mapping()
        oracle.evaluate(mapping)
        oracle.measure_more(mapping, 24)
        record = oracle.profiles.lookup(mapping)
        assert record is not None and record.count == 31

    def test_fresh_draws(self, oracle, diamond_space):
        mapping = diamond_space.default_mapping()
        oracle.evaluate(mapping)
        oracle.measure_more(mapping, 10)
        record = oracle.profiles.lookup(mapping)
        assert len(set(record.samples)) == record.count  # all distinct
