"""Unit tests for collections, tasks, the graph, and the builder."""

import pytest

from repro.machine.kinds import ProcKind
from repro.taskgraph import (
    ArgSlot,
    Collection,
    GraphBuilder,
    Privilege,
    ShardPattern,
    TaskGraph,
    TaskKind,
    TaskLaunch,
    overlap_bytes,
)
from repro.taskgraph.graph import Dependence


class TestCollection:
    def test_self_overlap(self):
        c = Collection("a", nbytes=100)
        assert overlap_bytes(c, c) == 100

    def test_disjoint_roots_never_overlap(self):
        a = Collection("a", nbytes=100)
        b = Collection("b", nbytes=100)
        assert overlap_bytes(a, b) == 0

    def test_interval_overlap(self):
        a = Collection("a", nbytes=100, root="r", offset=0)
        b = Collection("b", nbytes=100, root="r", offset=60)
        assert overlap_bytes(a, b) == 40

    def test_adjacent_do_not_overlap(self):
        a = Collection("a", nbytes=50, root="r", offset=0)
        b = Collection("b", nbytes=50, root="r", offset=50)
        assert overlap_bytes(a, b) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Collection("a", nbytes=-1)


class TestArgSlot:
    def test_halo_pattern_requires_width(self):
        with pytest.raises(ValueError):
            ArgSlot("g", Privilege.READ, ShardPattern.BLOCK_HALO)

    def test_replicated_flag(self):
        slot = ArgSlot("t", Privilege.READ, ShardPattern.REPLICATED)
        assert slot.replicated


class TestShardIntervals:
    @pytest.fixture
    def launch(self):
        coll = Collection("grid", nbytes=1000)
        kind = TaskKind(
            "k",
            slots=(
                ArgSlot("block", Privilege.READ),
                ArgSlot(
                    "halo", Privilege.READ, ShardPattern.BLOCK_HALO, 50
                ),
                ArgSlot(
                    "ghost_lo", Privilege.READ, ShardPattern.STRIP_LO_OUT, 50
                ),
                ArgSlot(
                    "bound_hi", Privilege.WRITE, ShardPattern.STRIP_HI_IN, 50
                ),
                ArgSlot("all", Privilege.READ, ShardPattern.REPLICATED),
            ),
        )
        return TaskLaunch(
            uid="k#0", kind=kind, args=(coll,) * 5, size=4, flops=1.0
        )

    def test_block_partitions_evenly(self, launch):
        intervals = [launch.shard_interval(0, p) for p in range(4)]
        assert intervals == [(0, 250), (250, 500), (500, 750), (750, 1000)]

    def test_block_halo_widens_reads(self, launch):
        assert launch.shard_interval(1, 1) == (200, 550)

    def test_block_halo_clamps_at_boundary(self, launch):
        assert launch.shard_interval(1, 0) == (0, 300)

    def test_block_halo_write_is_exact_share(self, launch):
        assert launch.shard_interval(1, 1, for_write=True) == (250, 500)

    def test_strip_lo_out_is_neighbor_edge(self, launch):
        assert launch.shard_interval(2, 1) == (200, 250)

    def test_strip_lo_out_empty_at_boundary(self, launch):
        lo, hi = launch.shard_interval(2, 0)
        assert hi - lo == 0

    def test_strip_hi_in_inside_share(self, launch):
        assert launch.shard_interval(3, 1) == (450, 500)

    def test_replicated_full(self, launch):
        assert launch.shard_interval(4, 2) == (0, 1000)

    def test_neighbor_halo_covers_strip(self, launch):
        """Point 1's lo-out ghost equals point 0's hi-in strip — the halo
        exchange identity the stencil apps rely on."""
        ghost = launch.shard_interval(2, 1)
        bound = launch.shard_interval(3, 0)
        assert ghost == bound


class TestTaskKind:
    def test_duplicate_slot_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TaskKind(
                "k",
                slots=(ArgSlot("a"), ArgSlot("a")),
            )

    def test_needs_variant(self):
        with pytest.raises(ValueError):
            TaskKind("k", slots=(ArgSlot("a"),), variants=frozenset())

    def test_has_variant(self):
        kind = TaskKind(
            "k", slots=(ArgSlot("a"),), variants=frozenset({ProcKind.CPU})
        )
        assert kind.has_variant(ProcKind.CPU)
        assert not kind.has_variant(ProcKind.GPU)


class TestBuilderDependences:
    def test_raw_dependence(self):
        b = GraphBuilder("g")
        c = b.collection("c", nbytes=100)
        w = b.task_kind("w", slots=[("c", Privilege.WRITE)])
        r = b.task_kind("r", slots=[("c", Privilege.READ)])
        lw = b.launch(w, [c])
        lr = b.launch(r, [c])
        g = b.build()
        assert any(
            d.src == lw.uid and d.dst == lr.uid for d in g.dependences
        )

    def test_no_war_by_default(self):
        b = GraphBuilder("g")
        c = b.collection("c", nbytes=100)
        r = b.task_kind("r", slots=[("c", Privilege.READ)])
        w = b.task_kind("w", slots=[("c", Privilege.WRITE)])
        b.launch(r, [c])
        lw = b.launch(w, [c])
        g = b.build()
        assert not g.predecessors(lw.uid)

    def test_war_when_enabled(self):
        b = GraphBuilder("g", anti_dependences=True)
        c = b.collection("c", nbytes=100)
        r = b.task_kind("r", slots=[("c", Privilege.READ)])
        w = b.task_kind("w", slots=[("c", Privilege.WRITE)])
        lr = b.launch(r, [c])
        lw = b.launch(w, [c])
        g = b.build()
        assert any(
            d.src == lr.uid and d.dst == lw.uid for d in g.dependences
        )

    def test_waw_dependence(self):
        b = GraphBuilder("g")
        c = b.collection("c", nbytes=100)
        w = b.task_kind("w", slots=[("c", Privilege.WRITE)])
        l1 = b.launch(w, [c])
        l2 = b.launch(w, [c])
        g = b.build()
        assert any(
            d.src == l1.uid and d.dst == l2.uid for d in g.dependences
        )

    def test_overlap_induces_dependence(self):
        b = GraphBuilder("g")
        left = b.collection("left", nbytes=60, root="r", offset=0)
        right = b.collection("right", nbytes=60, root="r", offset=40)
        w = b.task_kind("w", slots=[("c", Privilege.WRITE)])
        r = b.task_kind("r", slots=[("c", Privilege.READ)])
        lw = b.launch(w, [left])
        lr = b.launch(r, [right])
        g = b.build()
        assert any(
            d.src == lw.uid and d.dst == lr.uid for d in g.dependences
        )

    def test_disjoint_no_dependence(self):
        b = GraphBuilder("g")
        left = b.collection("left", nbytes=50, root="r", offset=0)
        right = b.collection("right", nbytes=50, root="r", offset=50)
        w = b.task_kind("w", slots=[("c", Privilege.WRITE)])
        r = b.task_kind("r", slots=[("c", Privilege.READ)])
        b.launch(w, [left])
        lr = b.launch(r, [right])
        g = b.build()
        assert not g.predecessors(lr.uid)

    def test_partition_with_halo_overlaps(self):
        b = GraphBuilder("g")
        parts = b.partition("root", nbytes=1000, parts=4, halo_bytes=20)
        assert overlap_bytes(parts[0], parts[1]) == 40

    def test_unknown_collection_rejected(self):
        b = GraphBuilder("g")
        k = b.task_kind("k", slots=[("c", Privilege.READ)])
        stray = Collection("stray", nbytes=10)
        with pytest.raises(ValueError, match="unknown collection"):
            b.launch(k, [stray])

    def test_redeclaration_conflict_rejected(self):
        b = GraphBuilder("g")
        b.collection("c", nbytes=10)
        with pytest.raises(ValueError, match="re-declared"):
            b.collection("c", nbytes=20)


class TestTaskGraph:
    def test_cycle_rejected(self):
        coll = Collection("c", nbytes=10)
        kind = TaskKind("k", slots=(ArgSlot("c", Privilege.READ_WRITE),))
        l1 = TaskLaunch(uid="a", kind=kind, args=(coll,), sequence=0)
        l2 = TaskLaunch(uid="b", kind=kind, args=(coll,), sequence=1)
        deps = [
            Dependence("a", "b", "c", "c"),
            Dependence("b", "a", "c", "c"),
        ]
        with pytest.raises(ValueError, match="cycle"):
            TaskGraph("g", [l1, l2], deps)

    def test_topological_order_respects_deps(self, diamond_graph):
        order = [t.uid for t in diamond_graph.topological_order()]
        for dep in diamond_graph.dependences:
            assert order.index(dep.src) < order.index(dep.dst)

    def test_collection_argument_count(self, diamond_graph):
        # source(1) + left(2) + right(2) + sink(3) slots
        assert diamond_graph.num_collection_arguments() == 8

    def test_kind_flops_totals(self, diamond_graph):
        flops = diamond_graph.kind_flops()
        assert flops["left"] == pytest.approx(2 * 4e8)

    def test_critical_path_positive(self, diamond_graph):
        assert diamond_graph.critical_path_flops() > 0

    def test_describe(self, diamond_graph):
        text = diamond_graph.describe()
        assert "sink" in text and "launches" in text
