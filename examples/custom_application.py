#!/usr/bin/env python3
"""Mapping a user-defined application with the public API.

Shows the pieces a downstream user touches: declare collections and task
kinds with :class:`~repro.taskgraph.GraphBuilder`, launch a main loop,
and hand the graph to :class:`~repro.core.AutoMapSession`.  The example
application is a small particle-in-cell-style loop: a field solve on a
grid, a particle push reading the field with halos, and a deposit phase
scattering back — a shape where the best mapping is genuinely non-obvious
because the deposit kind vectorises poorly on GPUs.

Usage::

    python examples/custom_application.py
"""

from repro.core import AutoMapSession, OracleConfig
from repro.machine import shepard
from repro.runtime import SimConfig
from repro.taskgraph import ArgSlot, GraphBuilder, Privilege, ShardPattern
from repro.util.units import MIB
from repro.viz import render_mapping


def build_pic_graph(iterations: int = 3, parts: int = 4):
    """A miniature particle-in-cell loop."""
    b = GraphBuilder("pic")
    field = b.collection("field", nbytes=96 * MIB)
    charge = b.collection("charge", nbytes=96 * MIB)
    particles = b.collection("particles", nbytes=256 * MIB)
    params = b.collection("params", nbytes=4096)

    halo = 2 * MIB
    field_solve = b.task_kind(
        "field_solve",
        slots=[
            ArgSlot("charge", Privilege.READ, ShardPattern.BLOCK_HALO, halo),
            ArgSlot("field", Privilege.WRITE),
        ],
        gpu_speedup=1.0,
    )
    particle_push = b.task_kind(
        "particle_push",
        slots=[
            ArgSlot("particles", Privilege.READ_WRITE),
            ArgSlot("field", Privilege.READ, ShardPattern.BLOCK_HALO, halo),
            ArgSlot("params", Privilege.READ, ShardPattern.REPLICATED),
        ],
        gpu_speedup=0.9,
    )
    charge_deposit = b.task_kind(
        "charge_deposit",
        slots=[
            ArgSlot("particles", Privilege.READ),
            ArgSlot("charge", Privilege.READ_WRITE,
                    ShardPattern.BLOCK_HALO, halo),
        ],
        gpu_speedup=0.35,  # scatter-dominated
    )

    for _ in range(iterations):
        b.launch(field_solve, [charge, field], size=parts, flops=6e9)
        b.launch(
            particle_push, [particles, field, params], size=parts, flops=2e10
        )
        b.launch(charge_deposit, [particles, charge], size=parts, flops=4e9)
    return b.build()


def main() -> None:
    machine = shepard(1)
    graph = build_pic_graph()
    print(graph.describe())
    print()

    session = AutoMapSession(
        graph,
        machine,
        algorithm="ccd",
        oracle_config=OracleConfig(max_suggestions=8000),
        sim_config=SimConfig(noise_sigma=0.04, seed=0, spill=True),
    )
    t_default = session.measure(session.default_mapping())
    report = session.tune()

    print(report.describe())
    print()
    print(
        f"default {t_default * 1e3:.2f} ms -> AutoMap "
        f"{report.best_mean * 1e3:.2f} ms "
        f"({t_default / report.best_mean:.2f}x)"
    )
    print()
    print(render_mapping(graph, report.best_mapping, title="Best mapping"))


if __name__ == "__main__":
    main()
