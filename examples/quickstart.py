#!/usr/bin/env python3
"""Quickstart: tune the Stencil benchmark on one Shepard-like node.

Runs AutoMap's full pipeline end to end:

1. build the application's task graph for the target machine;
2. profile it once to produce the search-space file (written to
   ``./automap_quickstart/``);
3. search with constrained coordinate-wise descent (CCD);
4. re-measure the top mappings and report the winner against the default
   and hand-written baselines.

Takes a few seconds.  Usage::

    python examples/quickstart.py
"""

from repro.apps import StencilApp
from repro.core import AutoMapSession, OracleConfig
from repro.machine import shepard
from repro.runtime import SimConfig
from repro.viz import render_mapping_diff


def main() -> None:
    machine = shepard(1)
    app = StencilApp(nx=1000, ny=1000)
    graph = app.graph(machine)

    print(f"Application: {graph.name}")
    print(graph.describe())
    print()
    print(machine.describe())
    print()

    session = AutoMapSession(
        graph,
        machine,
        algorithm="ccd",
        workdir="automap_quickstart",
        oracle_config=OracleConfig(max_suggestions=10_000),
        sim_config=SimConfig(noise_sigma=0.04, seed=0, spill=True),
    )

    default = session.default_mapping()
    t_default = session.measure(default)
    custom = app.custom_mapping(machine)
    t_custom = session.measure(custom)

    report = session.tune()

    print(report.describe())
    print()
    print(f"default mapper : {t_default * 1e3:8.3f} ms per run")
    print(f"custom mapper  : {t_custom * 1e3:8.3f} ms per run")
    print(f"AutoMap (CCD)  : {report.best_mean * 1e3:8.3f} ms per run")
    print(f"speedup over default: {t_default / report.best_mean:.2f}x")
    print()
    print("What AutoMap changed relative to the default mapping:")
    print(render_mapping_diff(graph, default, report.best_mapping))


if __name__ == "__main__":
    main()
