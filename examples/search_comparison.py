#!/usr/bin/env python3
"""Compare search algorithms on one application (paper §5.3, Figure 9).

Runs CCD, CD, and the OpenTuner-style ensemble on the same Pennant input
with the same budget and prints the best-mapping trajectory of each —
the series Figure 9 plots — plus the §5.3 efficiency statistics
(mappings suggested vs evaluated, fraction of search time evaluating).

Usage::

    python examples/search_comparison.py [--zx 320 --zy 90]
"""

import argparse

from repro.apps import PennantApp
from repro.core import AutoMapDriver, OracleConfig
from repro.machine import shepard
from repro.runtime import SimConfig
from repro.viz import Table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--zx", type=int, default=320)
    parser.add_argument("--zy", type=int, default=90)
    args = parser.parse_args()

    machine = shepard(1)
    app = PennantApp(args.zx, args.zy)
    graph = app.graph(machine)
    print(f"{graph.name}: search space ~2^{app.space(machine).log2_size():.0f}")

    stats = Table(
        ["algorithm", "best (ms)", "suggested", "evaluated", "eval frac"],
        float_format="{:.3g}",
    )
    traces = {}
    for algo in ("ccd", "cd", "opentuner"):
        driver = AutoMapDriver(
            graph,
            machine,
            algorithm=algo,
            oracle_config=OracleConfig(max_suggestions=20_000),
            sim_config=SimConfig(noise_sigma=0.04, seed=0, spill=True),
        )
        report = driver.tune()
        traces[algo] = report.search.trace
        stats.add_row(
            [
                algo,
                report.best_mean * 1e3,
                report.suggested,
                report.evaluated,
                report.evaluation_fraction,
            ]
        )

    print()
    print(stats.render(title="Search algorithm comparison (§5.3)"))
    print()
    print("Best-so-far trajectories (Figure 9 series):")
    for algo, trace in traces.items():
        points = trace[:: max(1, len(trace) // 8)]
        series = ", ".join(
            f"({p.elapsed:.0f}s: {p.best_performance * 1e3:.1f}ms)"
            for p in points
        )
        print(f"  {algo:<10} {series}")


if __name__ == "__main__":
    main()
