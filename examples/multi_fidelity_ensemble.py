#!/usr/bin/env python3
"""Multi-fidelity ensemble CFD mapping (paper §5.1, Figure 7).

Maestro runs one expensive high-fidelity (HF) CFD sample alongside many
cheap low-fidelity (LF) samples.  The HF mapping is fixed; the goal is
to place the LF ensemble so the HF simulation is disturbed as little as
possible.  This example compares the two standard strategies (all-LF on
CPUs + System memory; all-LF on GPUs + Zero-Copy) with what AutoMap
finds when minimising the HF finish time.

Usage::

    python examples/multi_fidelity_ensemble.py [--lf-count 16] [--lf-res 32]
"""

import argparse

from repro.apps import MaestroApp
from repro.core import AutoMapDriver, OracleConfig
from repro.machine import lassen
from repro.runtime import SimConfig, Simulator
from repro.viz import Table


def hf_slowdown(sim, mapping, hf_alone_seconds):
    report = sim.run(mapping).report
    return MaestroApp.hf_metric(report) / hf_alone_seconds


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--lf-count", type=int, default=16)
    parser.add_argument("--lf-res", type=int, default=32)
    parser.add_argument("--hf-res", type=int, default=192)
    args = parser.parse_args()

    machine = lassen(1)
    app = MaestroApp(
        lf_count=args.lf_count, lf_res=args.lf_res, hf_res=args.hf_res
    )
    sim_config = SimConfig(noise_sigma=0.04, seed=0, spill=True)

    # HF-alone reference: the 1.0 line of Figure 7.
    alone = app.hf_alone()
    sim_alone = Simulator(alone.graph(machine), machine, sim_config)
    hf_alone = MaestroApp.hf_metric(
        sim_alone.run(alone.space(machine).default_mapping()).report
    )
    print(
        f"HF alone ({args.hf_res}^3 on {machine.name}): {hf_alone:.4f} s "
        "per window"
    )

    graph = app.graph(machine)
    driver = AutoMapDriver(
        graph,
        machine,
        algorithm="ccd",
        oracle_config=OracleConfig(
            metric=MaestroApp.hf_metric, max_suggestions=8000
        ),
        sim_config=sim_config,
        space=app.space(machine),
    )

    table = Table(["strategy", "HF slowdown"])
    table.add_row(
        [
            "LF on CPU + System",
            hf_slowdown(
                driver.simulator, app.strategy_cpu_system(machine), hf_alone
            ),
        ]
    )
    table.add_row(
        [
            "LF on GPU + Zero-Copy",
            hf_slowdown(
                driver.simulator,
                app.strategy_gpu_zero_copy(machine),
                hf_alone,
            ),
        ]
    )
    report = driver.tune()
    table.add_row(["AutoMap", report.best_mean / hf_alone])
    print()
    print(
        table.render(
            title=f"{args.lf_count} LF samples at {args.lf_res}^3 "
            "(1.0 = HF unaffected)"
        )
    )
    print()
    print("AutoMap's LF placement:")
    for kind in sorted(report.best_mapping.kind_names()):
        print(f"  {kind}: {report.best_mapping.decision(kind)}")


if __name__ == "__main__":
    main()
