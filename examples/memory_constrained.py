#!/usr/bin/env python3
"""Memory-constrained mapping (paper §5.2, Figure 8).

Runs Pennant with an input slightly larger than the GPU frame buffer can
hold.  The straightforward fallback — every collection in Zero-Copy
memory — is valid but slow; AutoMap's search finds the subset of
collection arguments to demote, keeping the rest in Frame-Buffer, and
lands several times faster.

Usage::

    python examples/memory_constrained.py [--overflow 1.3]
"""

import argparse

from repro.apps import PennantApp
from repro.core import AutoMapDriver, OracleConfig
from repro.machine import shepard
from repro.machine.kinds import MemKind
from repro.runtime import SimConfig
from repro.runtime.memory import MemoryPlanner, OOMError


def max_fitting_zy(machine, zx=320) -> int:
    """Largest Pennant input whose all-Frame-Buffer mapping fits."""
    lo, hi = 1_000, 500_000
    while lo < hi:
        mid = (lo + hi + 1) // 2
        app = PennantApp(zx, mid, iterations=1)
        planner = MemoryPlanner(app.graph(machine), machine)
        try:
            planner.ensure_fits(app.space(machine).default_mapping())
            lo = mid
        except OOMError:
            hi = mid - 1
    return lo


def all_zero_copy(space):
    mapping = space.default_mapping()
    for kind in mapping.kind_names():
        for index in range(mapping.decision(kind).num_slots):
            mapping = mapping.with_mem(kind, index, MemKind.ZERO_COPY)
    return mapping


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--overflow",
        type=float,
        default=1.3,
        help="input oversize over frame-buffer capacity, in percent",
    )
    args = parser.parse_args()

    machine = shepard(1)
    fit_zy = max_fitting_zy(machine)
    zy = int(fit_zy * (1.0 + args.overflow / 100.0))
    print(
        f"largest all-Frame-Buffer input: 320x{fit_zy}; "
        f"running 320x{zy} (+{args.overflow}%)"
    )

    app = PennantApp(320, zy, iterations=1)
    graph = app.graph(machine)
    space = app.space(machine)
    driver = AutoMapDriver(
        graph,
        machine,
        algorithm="ccd",
        oracle_config=OracleConfig(max_suggestions=8000),
        sim_config=SimConfig(noise_sigma=0.04, seed=0, spill=False),
        space=space,
    )

    zc = all_zero_copy(space)
    t_zc = driver.measure(zc)
    print(f"GPU + all-Zero-Copy: {t_zc:.3f} s")

    report = driver.tune(start=zc)
    best = report.best_mapping
    print(f"AutoMap:             {report.best_mean:.3f} s "
          f"({t_zc / report.best_mean:.1f}x faster)")
    print(
        f"  slots demoted out of Frame-Buffer: "
        f"{best.count_mem(MemKind.ZERO_COPY)} to Zero-Copy, "
        f"{best.count_mem(MemKind.SYSTEM)} to System"
    )
    print(
        f"  task kinds moved to CPU: "
        f"{sum(1 for k in best.kind_names() if best.decision(k).proc_kind.value == 'cpu')}"
        f" of {len(best)}"
    )
    print(
        f"  mappings that failed with OOM during the search: "
        f"{report.failed_evaluations}"
    )


if __name__ == "__main__":
    main()
