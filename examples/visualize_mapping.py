#!/usr/bin/env python3
"""Visualise discovered mappings (paper Figures 2 and 3).

Tunes HTR on 1 node and renders the best mapping next to the default,
with per-argument relative-size bars like the paper's Figure 3, plus a
compact diff of what AutoMap changed.

Usage::

    python examples/visualize_mapping.py [--input 16x16y18z]
"""

import argparse
import re

from repro.apps import HTRApp
from repro.core import AutoMapDriver, OracleConfig
from repro.machine import shepard
from repro.runtime import SimConfig
from repro.viz import render_mapping, render_mapping_diff


def parse_input(label: str):
    match = re.fullmatch(r"(\d+)x(\d+)y(\d+)z", label)
    if not match:
        raise SystemExit(f"bad HTR input label: {label!r}")
    return tuple(int(g) for g in match.groups())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--input", default="16x16y18z")
    args = parser.parse_args()
    x, y, z = parse_input(args.input)

    machine = shepard(1)
    app = HTRApp(x, y, z)
    graph = app.graph(machine)

    driver = AutoMapDriver(
        graph,
        machine,
        algorithm="ccd",
        oracle_config=OracleConfig(max_suggestions=8000),
        sim_config=SimConfig(noise_sigma=0.04, seed=0, spill=True),
    )
    default = driver.space.default_mapping()
    t_default = driver.measure(default)
    report = driver.tune()

    print(
        render_mapping(
            graph,
            report.best_mapping,
            title=f"AutoMap mapping for HTR {args.input} "
            f"({t_default / report.best_mean:.2f}x over default)",
        )
    )
    print()
    print("Changes vs the default mapping:")
    print(render_mapping_diff(graph, default, report.best_mapping))


if __name__ == "__main__":
    main()
