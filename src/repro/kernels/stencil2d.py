"""2D star stencil (the Parallel Research Kernels "Stencil" benchmark).

The PRK stencil applies a radius-``r`` star-shaped weighted sum to an
``n×n`` grid, then increments the input grid by one — exactly the two
task kinds of the paper's Stencil application (Figure 5: 2 tasks).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["star_weights", "star_stencil", "increment", "stencil_flops"]


def star_weights(radius: int = 2) -> np.ndarray:
    """The PRK star-stencil weight matrix of the given radius."""
    if radius < 1:
        raise ValueError("radius must be >= 1")
    size = 2 * radius + 1
    weights = np.zeros((size, size), dtype=np.float64)
    for i in range(1, radius + 1):
        w = 1.0 / (2.0 * i * radius)
        weights[radius, radius + i] = w
        weights[radius, radius - i] = -w
        weights[radius + i, radius] = w
        weights[radius - i, radius] = -w
    return weights


def star_stencil(
    grid_in: np.ndarray, weights: np.ndarray, grid_out: np.ndarray
) -> None:
    """Apply the star stencil: ``out[interior] += Σ w_k · in[shifted]``.

    Vectorised over shifted views (no copies of the interior), matching
    the memory-traffic profile the simulator's cost model assumes.
    """
    radius = weights.shape[0] // 2
    n, m = grid_in.shape
    if n <= 2 * radius or m <= 2 * radius:
        raise ValueError("grid smaller than stencil diameter")
    interior = np.s_[radius : n - radius, radius : m - radius]
    out_view = grid_out[interior]
    # Star shape: only the center row and column of the weight matrix.
    for k in range(-radius, radius + 1):
        if k == 0:
            continue
        wr = weights[radius, radius + k]
        wc = weights[radius + k, radius]
        out_view += wr * grid_in[
            radius : n - radius, radius + k : m - radius + k
        ]
        out_view += wc * grid_in[
            radius + k : n - radius + k, radius : m - radius
        ]


def increment(grid_in: np.ndarray) -> None:
    """The PRK "add one to every input element" step (in place)."""
    grid_in += 1.0


def stencil_flops(n: int, radius: int = 2) -> Tuple[float, float]:
    """(stencil flops, increment flops) for one iteration on ``n×n``.

    The star touches ``4·radius`` neighbours, each costing a multiply
    and an add.
    """
    interior = max(0, n - 2 * radius) ** 2
    return (interior * 4.0 * radius * 2.0, float(n * n))
