"""NumPy reference kernels for the benchmark applications.

The paper's applications are real Legion codes whose per-task costs the
real AutoMap observes by profiling.  Our substrate is a simulator, so the
application models in :mod:`repro.apps` carry analytic cost parameters —
*flops per element* for each task kind.  This package grounds those
parameters: each module implements the corresponding numerical kernel in
vectorised NumPy with an exact flop count, and
:mod:`repro.kernels.calibrate` measures achieved throughput to sanity-
check the machine model's sustained-FLOP/s figures.

The kernels are complete, runnable numerics (useful on their own as mini
versions of the applications), not decorative stubs — the unit tests
verify their physics invariants (stencil convergence, hydro energy
conservation, CFD positivity).
"""

from repro.kernels.stencil2d import star_stencil, stencil_flops
from repro.kernels.circuit_kernels import (
    calc_new_currents,
    distribute_charge,
    update_voltages,
    CircuitState,
)
from repro.kernels.hydro import HydroState, hydro_step
from repro.kernels.navier_stokes import NSState, ns_step
from repro.kernels.calibrate import CalibrationResult, calibrate_host

__all__ = [
    "star_stencil",
    "stencil_flops",
    "CircuitState",
    "calc_new_currents",
    "distribute_charge",
    "update_voltages",
    "HydroState",
    "hydro_step",
    "NSState",
    "ns_step",
    "CalibrationResult",
    "calibrate_host",
]
