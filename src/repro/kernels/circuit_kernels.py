"""Electrical circuit simulation kernels (the Legion Circuit benchmark).

Circuit simulates an RLC network: each iteration solves the wire currents
from node voltages (``calc_new_currents``), accumulates charge onto the
wires' endpoint nodes (``distribute_charge``), and integrates the node
voltages (``update_voltages``) — the paper's three task kinds.

The state layout mirrors the Legion code: nodes carry voltage, charge,
and capacitance; wires carry endpoint indices, R/L/C coefficients, and a
current.  All kernels are vectorised NumPy with scatter-adds for the
charge distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "CircuitState",
    "calc_new_currents",
    "distribute_charge",
    "update_voltages",
    "circuit_flops_per_iteration",
]


@dataclass
class CircuitState:
    """State of an RLC circuit network."""

    voltage: np.ndarray  # (nodes,)
    charge: np.ndarray  # (nodes,)
    capacitance: np.ndarray  # (nodes,)
    wire_from: np.ndarray  # (wires,) int
    wire_to: np.ndarray  # (wires,) int
    resistance: np.ndarray  # (wires,)
    inductance: np.ndarray  # (wires,)
    current: np.ndarray  # (wires,)

    @classmethod
    def random(
        cls, nodes: int, wires: int, seed: int = 0
    ) -> "CircuitState":
        """A random connected-ish network (wires pick endpoints uniformly)."""
        rng = np.random.default_rng(seed)
        return cls(
            voltage=rng.uniform(-1.0, 1.0, nodes),
            charge=np.zeros(nodes),
            capacitance=rng.uniform(1.0, 2.0, nodes),
            wire_from=rng.integers(0, nodes, wires),
            wire_to=rng.integers(0, nodes, wires),
            resistance=rng.uniform(0.5, 2.0, wires),
            inductance=rng.uniform(0.01, 0.1, wires),
            current=np.zeros(wires),
        )

    @property
    def num_nodes(self) -> int:
        return len(self.voltage)

    @property
    def num_wires(self) -> int:
        return len(self.current)


def calc_new_currents(state: CircuitState, dt: float = 1e-3) -> None:
    """Solve each wire's RL current update from its endpoint voltages."""
    dv = state.voltage[state.wire_from] - state.voltage[state.wire_to]
    # Implicit Euler for di/dt = (dv - R i) / L.
    state.current[:] = (
        state.current + dt * dv / state.inductance
    ) / (1.0 + dt * state.resistance / state.inductance)


def distribute_charge(state: CircuitState, dt: float = 1e-3) -> None:
    """Scatter-add each wire's transported charge onto its endpoints."""
    dq = dt * state.current
    np.add.at(state.charge, state.wire_from, -dq)
    np.add.at(state.charge, state.wire_to, dq)


def update_voltages(state: CircuitState) -> None:
    """Integrate node voltages from accumulated charge and reset it."""
    state.voltage += state.charge / state.capacitance
    state.charge[:] = 0.0


def circuit_flops_per_iteration(nodes: int, wires: int) -> float:
    """Approximate flop count of one full iteration (all three kernels)."""
    cnc = wires * 6.0  # dv, scaled update, divide
    dc = wires * 3.0  # dq and two scatter adds
    uv = nodes * 2.0  # divide + add
    return cnc + dc + uv
