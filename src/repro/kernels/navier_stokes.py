"""Compressible Navier–Stokes with explicit finite differences.

The reference numeric for both HTR (multi-physics hypersonic solver) and
Maestro (multi-fidelity ensemble CFD): single-component compressible flow
on a 3D periodic grid, conservative central differences plus constant
transport coefficients, RK2 time stepping.  Small but genuinely 3D and
genuinely compressible — the unit tests evolve a smooth acoustic pulse
and check mass conservation to round-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["NSState", "ns_step", "total_mass", "ns_flops_per_step"]

GAMMA = 1.4
MU = 1e-3  # dynamic viscosity
KAPPA = 1e-3  # thermal conductivity


@dataclass
class NSState:
    """Conserved variables on a periodic 3D grid."""

    rho: np.ndarray  # density
    mom: np.ndarray  # momentum, shape (3, nx, ny, nz)
    ener: np.ndarray  # total energy

    @classmethod
    def acoustic_pulse(
        cls, shape: Tuple[int, int, int] = (16, 16, 16)
    ) -> "NSState":
        """A smooth density/pressure pulse in a quiescent medium."""
        nx, ny, nz = shape
        x = np.linspace(0, 2 * np.pi, nx, endpoint=False)
        y = np.linspace(0, 2 * np.pi, ny, endpoint=False)
        z = np.linspace(0, 2 * np.pi, nz, endpoint=False)
        xx, yy, zz = np.meshgrid(x, y, z, indexing="ij")
        bump = 0.01 * np.sin(xx) * np.sin(yy) * np.sin(zz)
        rho = 1.0 + bump
        pressure = 1.0 + GAMMA * bump
        mom = np.zeros((3, nx, ny, nz))
        ener = pressure / (GAMMA - 1.0)
        return cls(rho=rho, mom=mom, ener=ener)

    @property
    def shape(self) -> Tuple[int, int, int]:
        return self.rho.shape


def _ddx(f: np.ndarray, axis: int, h: float) -> np.ndarray:
    """Second-order central difference on a periodic grid."""
    return (np.roll(f, -1, axis=axis) - np.roll(f, 1, axis=axis)) / (2 * h)


def _laplacian(f: np.ndarray, h: float) -> np.ndarray:
    out = -6.0 * f
    for axis in range(3):
        out = out + np.roll(f, 1, axis=axis) + np.roll(f, -1, axis=axis)
    return out / (h * h)


def _rhs(state: NSState, h: float):
    rho = state.rho
    u = state.mom / rho  # (3, ...)
    pressure = (GAMMA - 1.0) * (
        state.ener - 0.5 * np.sum(state.mom * u, axis=0)
    )
    drho = np.zeros_like(rho)
    dmom = np.zeros_like(state.mom)
    dener = np.zeros_like(state.ener)
    for axis in range(3):
        drho -= _ddx(state.mom[axis], axis, h)
        for comp in range(3):
            flux = state.mom[comp] * u[axis]
            if comp == axis:
                flux = flux + pressure
            dmom[comp] -= _ddx(flux, axis, h)
        dener -= _ddx((state.ener + pressure) * u[axis], axis, h)
    # Viscous + conductive terms (simplified constant-coefficient form).
    for comp in range(3):
        dmom[comp] += MU * _laplacian(u[comp], h)
    temp = pressure / rho
    dener += KAPPA * _laplacian(temp, h)
    return drho, dmom, dener


def ns_step(state: NSState, dt: float, h: float = 0.1) -> None:
    """One RK2 (midpoint) step, in place."""
    k1 = _rhs(state, h)
    mid = NSState(
        rho=state.rho + 0.5 * dt * k1[0],
        mom=state.mom + 0.5 * dt * k1[1],
        ener=state.ener + 0.5 * dt * k1[2],
    )
    k2 = _rhs(mid, h)
    state.rho += dt * k2[0]
    state.mom += dt * k2[1]
    state.ener += dt * k2[2]
    if np.any(state.rho <= 0):
        raise FloatingPointError("negative density; dt too large")


def total_mass(state: NSState) -> float:
    return float(np.sum(state.rho))


def ns_flops_per_step(cells: int) -> float:
    """Approximate flop count per RK2 step per grid (two RHS evals)."""
    # ~5 conserved fields x (3 flux derivatives x ~6 flops + viscous ~8).
    return cells * 2.0 * 5.0 * 26.0
