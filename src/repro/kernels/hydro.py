"""Compressible Lagrangian hydrodynamics on a 1D staggered mesh.

A compact reference for the physics Pennant computes (Pennant itself is
2D unstructured; the mapping-relevant structure — predictor/corrector
stepping over zone/point/side arrays with many small task kinds — is
captured by the application model in :mod:`repro.apps.pennant`).  This
kernel provides a runnable ground truth for the *cost shape*: many cheap
bandwidth-bound passes over mesh arrays, which is why Pennant tasks gain
little from GPUs on small inputs (paper Figure 6c).

The scheme is the classic von Neumann–Richtmyer staggered-grid method
with artificial viscosity; the unit tests check conservation of total
energy (a real physics invariant, not a smoke test).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HydroState", "hydro_step", "total_energy", "hydro_flops_per_step"]

GAMMA = 5.0 / 3.0
Q_COEFF = 2.0  # quadratic artificial-viscosity coefficient


@dataclass
class HydroState:
    """Staggered mesh: velocities on points, thermo on zones."""

    x: np.ndarray  # (points,) node positions
    u: np.ndarray  # (points,) node velocities
    rho: np.ndarray  # (zones,) density
    e: np.ndarray  # (zones,) specific internal energy
    m: np.ndarray  # (zones,) zone mass (constant)

    @classmethod
    def sod(cls, zones: int = 100) -> "HydroState":
        """The Sod shock-tube initial condition."""
        x = np.linspace(0.0, 1.0, zones + 1)
        mid = zones // 2
        rho = np.where(np.arange(zones) < mid, 1.0, 0.125)
        pressure = np.where(np.arange(zones) < mid, 1.0, 0.1)
        e = pressure / ((GAMMA - 1.0) * rho)
        m = rho * np.diff(x)
        return cls(x=x, u=np.zeros(zones + 1), rho=rho, e=e, m=m)

    @property
    def num_zones(self) -> int:
        return len(self.rho)


def _pressure(state: HydroState) -> np.ndarray:
    return (GAMMA - 1.0) * state.rho * state.e


def _viscosity(state: HydroState) -> np.ndarray:
    du = np.diff(state.u)
    compressing = du < 0.0
    return np.where(compressing, Q_COEFF * state.rho * du * du, 0.0)


def hydro_step(state: HydroState, dt: float) -> None:
    """One predictor-free explicit step (force → accel → move → update)."""
    p = _pressure(state) + _viscosity(state)
    # Point forces: pressure difference across each interior point.
    force = np.zeros_like(state.u)
    force[1:-1] = p[:-1] - p[1:]
    point_mass = np.zeros_like(state.u)
    point_mass[:-1] += 0.5 * state.m
    point_mass[1:] += 0.5 * state.m
    u_old = state.u.copy()
    state.u += dt * force / point_mass
    # Fixed (reflecting) boundaries.
    state.u[0] = 0.0
    state.u[-1] = 0.0
    state.x += dt * 0.5 * (state.u + u_old)
    # Zone updates from the new geometry.
    dx = np.diff(state.x)
    if np.any(dx <= 0):
        raise FloatingPointError("mesh tangled; dt too large")
    rho_new = state.m / dx
    # Energy update: de = -p dV/m (compression heating).
    dvol = dx - state.m / state.rho
    state.e -= p * dvol / state.m
    state.rho = rho_new


def total_energy(state: HydroState) -> float:
    """Kinetic + internal energy (conserved by the scheme up to
    boundary work, which is zero for reflecting walls)."""
    point_mass = np.zeros_like(state.u)
    point_mass[:-1] += 0.5 * state.m
    point_mass[1:] += 0.5 * state.m
    kinetic = 0.5 * np.sum(point_mass * state.u * state.u)
    internal = np.sum(state.m * state.e)
    return float(kinetic + internal)


def hydro_flops_per_step(zones: int) -> float:
    """Approximate flop count of one step (bandwidth-bound passes)."""
    return zones * 30.0
