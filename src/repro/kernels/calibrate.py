"""Host calibration: measure achieved kernel throughput.

The machine models in :mod:`repro.machine.builders` carry *sustained*
FLOP/s and bandwidth figures.  This module measures what the reference
kernels actually achieve on the current host, which serves two purposes:

* a sanity check that the cost-model constants in :mod:`repro.apps` are
  the right order of magnitude for real vectorised numerics;
* an example of the profiling step real AutoMap performs before a search.

Calibration is never used to seed simulations (results must be
deterministic across hosts); it is exposed through an example script and
exercised lightly in tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.kernels.circuit_kernels import (
    CircuitState,
    calc_new_currents,
    circuit_flops_per_iteration,
    distribute_charge,
    update_voltages,
)
from repro.kernels.hydro import HydroState, hydro_flops_per_step, hydro_step
from repro.kernels.navier_stokes import NSState, ns_flops_per_step, ns_step
from repro.kernels.stencil2d import (
    increment,
    star_stencil,
    star_weights,
    stencil_flops,
)

__all__ = ["CalibrationResult", "calibrate_host"]


@dataclass(frozen=True)
class CalibrationResult:
    """Achieved throughput of one kernel on this host."""

    kernel: str
    flops: float
    seconds: float

    @property
    def flops_per_second(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.flops / self.seconds


def _time(fn: Callable[[], None], repeats: int = 3) -> float:
    """Best-of-N wall time of ``fn`` (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def calibrate_host(scale: int = 1) -> Dict[str, CalibrationResult]:
    """Run each reference kernel once at a small size and report achieved
    FLOP/s.  ``scale`` multiplies problem sizes (keep small in tests)."""
    results: Dict[str, CalibrationResult] = {}

    # Stencil.
    n = 512 * scale
    grid_in = np.random.default_rng(0).random((n, n))
    grid_out = np.zeros_like(grid_in)
    weights = star_weights(radius=2)

    def run_stencil() -> None:
        star_stencil(grid_in, weights, grid_out)
        increment(grid_in)

    seconds = _time(run_stencil)
    flops = sum(stencil_flops(n, radius=2))
    results["stencil"] = CalibrationResult("stencil", flops, seconds)

    # Circuit.
    state = CircuitState.random(nodes=20_000 * scale, wires=80_000 * scale)

    def run_circuit() -> None:
        calc_new_currents(state)
        distribute_charge(state)
        update_voltages(state)

    seconds = _time(run_circuit)
    flops = circuit_flops_per_iteration(state.num_nodes, state.num_wires)
    results["circuit"] = CalibrationResult("circuit", flops, seconds)

    # Hydro.  CFL-safe dt: cell width is 1/zones and sound speed ~1.3.
    hydro = HydroState.sod(zones=200_000 * scale)
    dt = 0.2 / hydro.num_zones

    def run_hydro() -> None:
        hydro_step(hydro, dt=dt)

    seconds = _time(run_hydro)
    flops = hydro_flops_per_step(hydro.num_zones)
    results["hydro"] = CalibrationResult("hydro", flops, seconds)

    # Navier-Stokes.
    ns = NSState.acoustic_pulse(shape=(24 * scale, 24 * scale, 24 * scale))

    def run_ns() -> None:
        ns_step(ns, dt=1e-4)

    seconds = _time(run_ns)
    cells = int(np.prod(ns.shape))
    flops = ns_flops_per_step(cells)
    results["navier_stokes"] = CalibrationResult(
        "navier_stokes", flops, seconds
    )
    return results
