"""Declarative machine-parameter overrides.

The mapping service identifies a workload by its *materialised* machine,
so "the same cluster but with 128 GiB nodes" must be expressible in a
:class:`repro.service.spec.JobSpec` — not just by picking a different
zoo entry.  ``machine_params`` is a small declarative override document
applied on top of a zoo machine:

.. code-block:: json

    {
      "name": "shepard-fat",
      "memory_capacity": {"n0.sys0": "128 GiB"},
      "channel_bandwidth": {"n0.fb0|n0.zc": 2.0e10},
      "proc_throughput": {"n0.gpu0": 1.5e12}
    }

Sections reference concrete devices by uid (pairs joined with ``|``);
unknown sections or uids raise ``ValueError`` so typos fail the
submission instead of silently tuning a different machine.  Capacities
accept either raw byte integers or ``"16 GiB"``-style strings.  The
input machine is never mutated: frozen parts are rebuilt with
:func:`dataclasses.replace` and a fresh :class:`Machine` is returned,
re-running its construction-time invariant checks.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from repro.machine.model import (
    AccessLink,
    Channel,
    Machine,
    Memory,
    Processor,
)
from repro.util.units import parse_bytes

__all__ = ["MACHINE_PARAM_SECTIONS", "apply_machine_params"]

MACHINE_PARAM_SECTIONS: Tuple[str, ...] = (
    "name",
    "memory_capacity",
    "proc_throughput",
    "proc_launch_overhead",
    "access_bandwidth",
    "access_latency",
    "channel_bandwidth",
    "channel_latency",
)


def _coerce_capacity(uid: str, value: object) -> int:
    if isinstance(value, str):
        return parse_bytes(value)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(
            f"memory_capacity[{uid!r}]: expected bytes or a size string, "
            f"got {value!r}"
        )
    return int(value)


def _coerce_float(section: str, key: str, value: object) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(
            f"{section}[{key!r}]: expected a number, got {value!r}"
        )
    return float(value)


def _pair(section: str, raw: str) -> Tuple[str, str]:
    parts = raw.split("|")
    if len(parts) != 2 or not parts[0] or not parts[1]:
        raise ValueError(
            f"{section} key {raw!r}: expected 'uid_a|uid_b'"
        )
    return parts[0], parts[1]


def apply_machine_params(
    machine: Machine, params: Dict[str, object]
) -> Machine:
    """``machine`` with the override document applied (a new object).

    Raises ``ValueError`` for unknown sections, unknown device uids,
    malformed values, and any override that violates the machine's
    construction invariants (e.g. non-positive bandwidth).
    """
    if not params:
        return machine
    unknown = sorted(set(params) - set(MACHINE_PARAM_SECTIONS))
    if unknown:
        raise ValueError(
            f"unknown machine_params section(s) {unknown}; expected "
            f"{list(MACHINE_PARAM_SECTIONS)}"
        )

    name = machine.name
    if "name" in params:
        if not isinstance(params["name"], str) or not params["name"]:
            raise ValueError("machine_params name must be a non-empty string")
        name = params["name"]

    def section(key: str) -> Dict[str, object]:
        value = params.get(key) or {}
        if not isinstance(value, dict):
            raise ValueError(f"machine_params section {key!r} must be a dict")
        return value

    mem_caps: Dict[str, int] = {}
    for uid, value in section("memory_capacity").items():
        try:
            machine.memory(uid)
        except KeyError:
            raise ValueError(
                f"memory_capacity references unknown memory {uid!r}"
            ) from None
        mem_caps[uid] = _coerce_capacity(uid, value)

    proc_over: Dict[str, Dict[str, float]] = {}
    for key in ("proc_throughput", "proc_launch_overhead"):
        for uid, value in section(key).items():
            try:
                machine.processor(uid)
            except KeyError:
                raise ValueError(
                    f"{key} references unknown processor {uid!r}"
                ) from None
            field = "throughput" if key == "proc_throughput" else (
                "launch_overhead"
            )
            proc_over.setdefault(uid, {})[field] = _coerce_float(
                key, uid, value
            )

    link_over: Dict[Tuple[str, str], Dict[str, float]] = {}
    for key in ("access_bandwidth", "access_latency"):
        for raw, value in section(key).items():
            proc_uid, mem_uid = _pair(key, raw)
            if machine.access_link(proc_uid, mem_uid) is None:
                raise ValueError(
                    f"{key} references unknown access link {raw!r}"
                )
            field = "bandwidth" if key == "access_bandwidth" else "latency"
            link_over.setdefault((proc_uid, mem_uid), {})[field] = (
                _coerce_float(key, raw, value)
            )

    chan_over: Dict[Tuple[str, str], Dict[str, float]] = {}
    for key in ("channel_bandwidth", "channel_latency"):
        for raw, value in section(key).items():
            mem_a, mem_b = _pair(key, raw)
            if machine.channel(mem_a, mem_b) is None:
                raise ValueError(
                    f"{key} references unknown channel {raw!r}"
                )
            pair = tuple(sorted((mem_a, mem_b)))
            field = "bandwidth" if key == "channel_bandwidth" else "latency"
            chan_over.setdefault(pair, {})[field] = _coerce_float(
                key, raw, value
            )

    processors: List[Processor] = [
        replace(p, **proc_over[p.uid]) if p.uid in proc_over else p
        for p in machine.processors
    ]
    memories: List[Memory] = [
        replace(m, capacity=mem_caps[m.uid]) if m.uid in mem_caps else m
        for m in machine.memories
    ]
    access_links: List[AccessLink] = [
        replace(li, **link_over[(li.proc, li.mem)])
        if (li.proc, li.mem) in link_over
        else li
        for li in machine.access_links
    ]
    channels: List[Channel] = [
        replace(c, **chan_over[tuple(sorted((c.mem_a, c.mem_b)))])
        if tuple(sorted((c.mem_a, c.mem_b))) in chan_over
        else c
        for c in machine.channels
    ]
    return Machine(
        name=name,
        processors=processors,
        memories=memories,
        access_links=access_links,
        channels=channels,
    )
