"""Machine model (paper §2).

A machine is a graph whose nodes are *processors* and *memories*.  Each
processor has a kind (CPU or GPU here), each memory has a kind and a
capacity in bytes.  Edges are of two types: processor→memory edges mean
"addressable by" (with an access bandwidth/latency), and memory→memory
edges are communication channels.

The public surface:

- :class:`~repro.machine.kinds.ProcKind`, :class:`~repro.machine.kinds.MemKind`
  — the kind enums the factored search space ranges over;
- :class:`~repro.machine.model.Machine` — the machine graph;
- :mod:`~repro.machine.builders` — ready-made models of the paper's two
  clusters (``shepard``, ``lassen``) plus generic builders;
- :class:`~repro.machine.topology.Topology` — memoised reachability and
  copy-path queries used by the runtime simulator.
"""

from repro.machine.kinds import ProcKind, MemKind
from repro.machine.model import (
    AccessLink,
    Channel,
    Machine,
    Memory,
    Processor,
)
from repro.machine.builders import (
    MACHINE_ZOO,
    NodeSpec,
    generic_cluster,
    helix,
    heterogeneous_cluster,
    lassen,
    lopsided_node,
    mirrored_node,
    shepard,
    single_node,
)
from repro.machine.topology import Topology

__all__ = [
    "ProcKind",
    "MemKind",
    "Processor",
    "Memory",
    "AccessLink",
    "Channel",
    "Machine",
    "NodeSpec",
    "shepard",
    "lassen",
    "helix",
    "mirrored_node",
    "lopsided_node",
    "generic_cluster",
    "heterogeneous_cluster",
    "single_node",
    "MACHINE_ZOO",
    "Topology",
]
