"""The machine graph: processors, memories, access links, and channels.

This is the data structure the paper formalises in §2: "We model a machine
M as a graph where the nodes are processors and memories. ... An edge
between a processor p and a memory m indicates that m is addressable by p,
and an edge between two memories indicates that there is a communication
channel between the two memories."

Concrete devices carry the physical parameters the simulator needs:
compute throughput and per-task launch overhead for processors, capacity
for memories, and bandwidth/latency for access links and channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.machine.kinds import ADDRESSABLE, MemKind, ProcKind
from repro.util.units import format_bytes

__all__ = ["Processor", "Memory", "AccessLink", "Channel", "Machine"]


@dataclass(frozen=True)
class Processor:
    """A concrete processor (one CPU core or one GPU).

    Attributes
    ----------
    uid:
        Globally unique id, e.g. ``"n0.cpu3"``.
    kind:
        The processor kind.
    node:
        Index of the machine node hosting this processor.
    socket:
        CPU socket index (``None`` for GPUs).
    device:
        GPU device index on its node (``None`` for CPUs).
    throughput:
        Effective compute throughput in FLOP/s for this single processor.
    launch_overhead:
        Fixed per-task cost (seconds) of launching work here; models
        runtime dispatch plus (for GPUs) kernel-launch latency.
    """

    uid: str
    kind: ProcKind
    node: int
    socket: Optional[int] = None
    device: Optional[int] = None
    throughput: float = 1e10
    launch_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.throughput <= 0:
            raise ValueError(f"{self.uid}: throughput must be positive")
        if self.launch_overhead < 0:
            raise ValueError(f"{self.uid}: launch_overhead must be >= 0")


@dataclass(frozen=True)
class Memory:
    """A concrete memory (one System allocation, Zero-Copy pool, or GPU
    frame buffer).

    Attributes
    ----------
    uid:
        Globally unique id, e.g. ``"n0.fb0"``.
    kind:
        The memory kind.
    node:
        Index of the machine node hosting this memory.
    socket / device:
        Locality within the node (socket for System memory, GPU device
        for frame buffers; ``None`` otherwise).
    capacity:
        Capacity in bytes.
    """

    uid: str
    kind: MemKind
    node: int
    socket: Optional[int] = None
    device: Optional[int] = None
    capacity: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError(f"{self.uid}: capacity must be >= 0")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.uid}({self.kind}, {format_bytes(self.capacity)})"


@dataclass(frozen=True)
class AccessLink:
    """A processor→memory "addressable by" edge with its access parameters.

    ``bandwidth`` is the sustained bandwidth (bytes/s) the processor sees
    when streaming from/to the memory; ``latency`` the per-access-stream
    startup time in seconds.
    """

    proc: str
    mem: str
    bandwidth: float
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"{self.proc}->{self.mem}: bandwidth must be > 0")
        if self.latency < 0:
            raise ValueError(f"{self.proc}->{self.mem}: latency must be >= 0")


@dataclass(frozen=True)
class Channel:
    """A memory↔memory communication channel (bidirectional).

    Copies routed over the channel cost ``latency + bytes / bandwidth``
    and serialise on the channel in the event simulation.
    """

    mem_a: str
    mem_b: str
    bandwidth: float
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(
                f"{self.mem_a}<->{self.mem_b}: bandwidth must be > 0"
            )
        if self.latency < 0:
            raise ValueError(
                f"{self.mem_a}<->{self.mem_b}: latency must be >= 0"
            )

    def endpoints(self) -> Tuple[str, str]:
        return (self.mem_a, self.mem_b)


@dataclass
class Machine:
    """The machine graph M.

    Construction validates global invariants: unique ids, access links and
    channels referencing known devices, and access links consistent with
    the kind-level addressability relation.

    The class offers the kind- and locality-queries that both the search
    (kind level) and the runtime simulator (concrete level) need; heavier
    memoised queries (copy paths) live in
    :class:`repro.machine.topology.Topology`.
    """

    name: str
    processors: List[Processor] = field(default_factory=list)
    memories: List[Memory] = field(default_factory=list)
    access_links: List[AccessLink] = field(default_factory=list)
    channels: List[Channel] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._procs_by_uid: Dict[str, Processor] = {}
        self._mems_by_uid: Dict[str, Memory] = {}
        for proc in self.processors:
            if proc.uid in self._procs_by_uid:
                raise ValueError(f"duplicate processor uid {proc.uid!r}")
            self._procs_by_uid[proc.uid] = proc
        for mem in self.memories:
            if mem.uid in self._mems_by_uid or mem.uid in self._procs_by_uid:
                raise ValueError(f"duplicate device uid {mem.uid!r}")
            self._mems_by_uid[mem.uid] = mem

        self._access: Dict[Tuple[str, str], AccessLink] = {}
        for link in self.access_links:
            proc = self._procs_by_uid.get(link.proc)
            mem = self._mems_by_uid.get(link.mem)
            if proc is None:
                raise ValueError(f"access link references unknown proc {link.proc!r}")
            if mem is None:
                raise ValueError(f"access link references unknown mem {link.mem!r}")
            if (proc.kind, mem.kind) not in ADDRESSABLE:
                raise ValueError(
                    f"access link {link.proc}->{link.mem} violates "
                    f"kind addressability ({proc.kind} -> {mem.kind})"
                )
            self._access[(link.proc, link.mem)] = link

        self._channels: Dict[Tuple[str, str], Channel] = {}
        for chan in self.channels:
            for end in chan.endpoints():
                if end not in self._mems_by_uid:
                    raise ValueError(f"channel references unknown memory {end!r}")
            key = tuple(sorted(chan.endpoints()))
            if key in self._channels:
                raise ValueError(f"duplicate channel {key}")
            self._channels[key] = chan

        self._nodes = sorted(
            {p.node for p in self.processors} | {m.node for m in self.memories}
        )
        if self._nodes != list(range(len(self._nodes))):
            raise ValueError("node indices must be contiguous from 0")

    # ------------------------------------------------------------------
    # Basic lookups
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of machine nodes."""
        return len(self._nodes)

    def processor(self, uid: str) -> Processor:
        """Look up a processor by uid (raises ``KeyError`` if unknown)."""
        return self._procs_by_uid[uid]

    def memory(self, uid: str) -> Memory:
        """Look up a memory by uid (raises ``KeyError`` if unknown)."""
        return self._mems_by_uid[uid]

    def proc_kinds(self) -> Tuple[ProcKind, ...]:
        """Processor kinds present on this machine, in enum order."""
        present = {p.kind for p in self.processors}
        return tuple(pk for pk in ProcKind if pk in present)

    def mem_kinds(self) -> Tuple[MemKind, ...]:
        """Memory kinds present on this machine, in enum order."""
        present = {m.kind for m in self.memories}
        return tuple(mk for mk in MemKind if mk in present)

    def mem_kinds_for(self, proc_kind: ProcKind) -> Tuple[MemKind, ...]:
        """Memory kinds present on this machine and addressable by
        ``proc_kind``, fastest first."""
        present = set(self.mem_kinds())
        from repro.machine.kinds import addressable_mem_kinds

        return tuple(
            mk for mk in addressable_mem_kinds(proc_kind) if mk in present
        )

    # ------------------------------------------------------------------
    # Locality queries
    # ------------------------------------------------------------------
    def processors_of_kind(
        self, kind: ProcKind, node: Optional[int] = None
    ) -> List[Processor]:
        """Processors of ``kind`` (optionally restricted to ``node``),
        in a deterministic order."""
        return [
            p
            for p in self.processors
            if p.kind == kind and (node is None or p.node == node)
        ]

    def memories_of_kind(
        self, kind: MemKind, node: Optional[int] = None
    ) -> List[Memory]:
        """Memories of ``kind`` (optionally restricted to ``node``)."""
        return [
            m
            for m in self.memories
            if m.kind == kind and (node is None or m.node == node)
        ]

    def access_link(self, proc_uid: str, mem_uid: str) -> Optional[AccessLink]:
        """The access link between a processor and a memory, if any."""
        return self._access.get((proc_uid, mem_uid))

    def accessible_memories(self, proc_uid: str) -> List[Memory]:
        """All memories addressable by the given processor."""
        return [
            self._mems_by_uid[mem]
            for (proc, mem) in self._access
            if proc == proc_uid
        ]

    def closest_memory(
        self, proc: Processor, kind: MemKind
    ) -> Optional[Memory]:
        """The concrete memory of ``kind`` "closest" to ``proc``.

        Closest means: same device (frame buffer of the task's own GPU),
        else same socket, else same node.  Returns ``None`` when ``proc``
        cannot address any memory of that kind — a kind-level
        addressability violation the mapping validator rejects earlier.
        """
        candidates = [
            mem
            for mem in self.memories_of_kind(kind, node=proc.node)
            if (proc.uid, mem.uid) in self._access
        ]
        if not candidates:
            return None

        def rank(mem: Memory) -> Tuple[int, str]:
            if mem.device is not None and mem.device == proc.device:
                return (0, mem.uid)
            if mem.socket is not None and mem.socket == proc.socket:
                return (1, mem.uid)
            return (2, mem.uid)

        return min(candidates, key=rank)

    def channel(self, mem_a: str, mem_b: str) -> Optional[Channel]:
        """The channel between two memories, if one exists."""
        return self._channels.get(tuple(sorted((mem_a, mem_b))))

    def channels_of(self, mem_uid: str) -> List[Channel]:
        """All channels incident to a memory."""
        return [
            chan
            for chan in self.channels
            if mem_uid in chan.endpoints()
        ]

    # ------------------------------------------------------------------
    # Kind-level access characteristics (used by the task cost model)
    # ------------------------------------------------------------------
    def typical_access_bandwidth(
        self, proc_kind: ProcKind, mem_kind: MemKind
    ) -> Optional[float]:
        """Representative access bandwidth for a (proc kind, mem kind)
        pair: the maximum over concrete access links of that shape.

        Returns ``None`` when the pair is not addressable on this machine.
        The cost model uses kind-level bandwidths because AutoMap's
        factored search space never distinguishes concrete devices of the
        same kind (paper §3.2).
        """
        best: Optional[float] = None
        for (proc_uid, mem_uid), link in self._access.items():
            if (
                self._procs_by_uid[proc_uid].kind == proc_kind
                and self._mems_by_uid[mem_uid].kind == mem_kind
            ):
                if best is None or link.bandwidth > best:
                    best = link.bandwidth
        return best

    def total_capacity(self, kind: MemKind) -> int:
        """Total capacity (bytes) over all memories of ``kind``."""
        return sum(m.capacity for m in self.memories_of_kind(kind))

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """A multi-line human-readable summary of the machine."""
        lines = [f"Machine {self.name!r}: {self.num_nodes} node(s)"]
        for node in range(self.num_nodes):
            cpus = self.processors_of_kind(ProcKind.CPU, node)
            gpus = self.processors_of_kind(ProcKind.GPU, node)
            lines.append(
                f"  node {node}: {len(cpus)} CPU processor(s), {len(gpus)} GPU(s)"
            )
            for mem in sorted(
                (m for m in self.memories if m.node == node),
                key=lambda m: m.uid,
            ):
                lines.append(f"    {mem}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Machine(name={self.name!r}, nodes={self.num_nodes}, "
            f"procs={len(self.processors)}, mems={len(self.memories)})"
        )


def validate_same_shape(machines: Iterable[Machine]) -> None:
    """Check that machines share kind inventory (useful in tests comparing
    clusters)."""
    shapes = {
        (m.proc_kinds(), m.mem_kinds()) for m in machines
    }
    if len(shapes) > 1:
        raise ValueError(f"machines differ in kind inventory: {shapes}")
