"""Processor and memory *kinds*.

AutoMap factors the mapping search space over kinds, not concrete devices
(paper §3.2): the search chooses a processor kind per task and a memory
kind per collection argument, and deterministic runtime logic picks the
concrete processor/memory of that kind.  These enums are therefore the
alphabet of the entire search space.

The addressability rules below mirror the paper's Figure 1 machine:

======== ======================= =====================================
Memory   Addressable by          Notes
======== ======================= =====================================
SYSTEM   CPUs only               one allocation per socket
ZERO_COPY CPUs and GPUs          pinned host memory, one per node
FRAMEBUFFER GPUs only            one per GPU, highest bandwidth
======== ======================= =====================================
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Tuple

__all__ = [
    "ProcKind",
    "MemKind",
    "ADDRESSABLE",
    "addressable_mem_kinds",
    "addressable_proc_kinds",
    "fastest_mem_kind",
]


class ProcKind(str, enum.Enum):
    """Kind of processor a task variant can execute on."""

    CPU = "cpu"
    GPU = "gpu"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class MemKind(str, enum.Enum):
    """Kind of memory a collection instance can be placed in."""

    SYSTEM = "system"
    ZERO_COPY = "zero_copy"
    FRAMEBUFFER = "framebuffer"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The kind-level addressability relation of Figure 1.
ADDRESSABLE: FrozenSet[Tuple[ProcKind, MemKind]] = frozenset(
    {
        (ProcKind.CPU, MemKind.SYSTEM),
        (ProcKind.CPU, MemKind.ZERO_COPY),
        (ProcKind.GPU, MemKind.FRAMEBUFFER),
        (ProcKind.GPU, MemKind.ZERO_COPY),
    }
)

#: Memory kinds ordered from fastest to slowest for each processor kind.
#: Used by the runtime's priority-list fallback (paper §3.1) and by the
#: default mapper's "closest memory with capacity" heuristic.
_PREFERENCE = {
    ProcKind.CPU: (MemKind.SYSTEM, MemKind.ZERO_COPY),
    ProcKind.GPU: (MemKind.FRAMEBUFFER, MemKind.ZERO_COPY),
}


def addressable_mem_kinds(proc_kind: ProcKind) -> Tuple[MemKind, ...]:
    """Memory kinds addressable by ``proc_kind``, fastest first."""
    return _PREFERENCE[proc_kind]


def addressable_proc_kinds(mem_kind: MemKind) -> Tuple[ProcKind, ...]:
    """Processor kinds that can address ``mem_kind``."""
    return tuple(
        pk for pk in ProcKind if (pk, mem_kind) in ADDRESSABLE
    )


def fastest_mem_kind(proc_kind: ProcKind) -> MemKind:
    """The highest-bandwidth memory kind for ``proc_kind``."""
    return _PREFERENCE[proc_kind][0]
