"""Memoised topology queries over the machine graph.

The runtime simulator needs to route copies between arbitrary memory
pairs.  Direct channels cover the common cases (FB↔ZC, node↔node between
Zero-Copy pools); everything else is routed over a shortest channel path.
:class:`Topology` wraps the machine's channel graph in a networkx graph
and memoises path queries, which dominate simulator startup otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.machine.model import Channel, Machine

__all__ = ["CopyPath", "Topology"]


@dataclass(frozen=True)
class CopyPath:
    """A routed copy between two memories.

    Attributes
    ----------
    hops:
        The channel sequence traversed, source side first.
    bandwidth:
        Effective end-to-end bandwidth: the minimum over hops (store-and-
        forward pipelining is bandwidth-limited by the narrowest hop).
    latency:
        Sum of per-hop latencies.
    """

    hops: Tuple[Channel, ...]
    bandwidth: float
    latency: float

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` along this path."""
        if not self.hops:
            return 0.0
        return self.latency + nbytes / self.bandwidth


class Topology:
    """Copy-path routing over a :class:`Machine`'s channel graph.

    Edge weights for shortest-path routing are the transfer time of a
    *representative* message (default 16 MiB): this balances latency-
    and bandwidth-dominated regimes so that routing prefers the fast
    direct links the hardware actually uses.
    """

    #: Representative message size used to weight channels during routing.
    ROUTING_MESSAGE_BYTES = 16 * 1024 * 1024

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._graph = nx.Graph()
        for mem in machine.memories:
            self._graph.add_node(mem.uid)
        for chan in machine.channels:
            weight = chan.latency + self.ROUTING_MESSAGE_BYTES / chan.bandwidth
            # Keep the faster channel when duplicates exist.
            existing = self._graph.get_edge_data(chan.mem_a, chan.mem_b)
            if existing is None or existing["weight"] > weight:
                self._graph.add_edge(
                    chan.mem_a, chan.mem_b, weight=weight, channel=chan
                )
        self._path_cache: Dict[Tuple[str, str], Optional[CopyPath]] = {}

    def copy_path(self, src_uid: str, dst_uid: str) -> Optional[CopyPath]:
        """The routed path from ``src_uid`` to ``dst_uid``.

        Returns a zero-hop path when source equals destination, and
        ``None`` when the memories are disconnected (a malformed machine;
        the stock builders always produce connected channel graphs).
        """
        if src_uid == dst_uid:
            return CopyPath(hops=(), bandwidth=float("inf"), latency=0.0)
        key = (src_uid, dst_uid)
        if key not in self._path_cache:
            self._path_cache[key] = self._route(src_uid, dst_uid)
        return self._path_cache[key]

    def _route(self, src_uid: str, dst_uid: str) -> Optional[CopyPath]:
        try:
            nodes: List[str] = nx.shortest_path(
                self._graph, src_uid, dst_uid, weight="weight"
            )
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None
        hops = []
        for a, b in zip(nodes, nodes[1:]):
            hops.append(self._graph.edges[a, b]["channel"])
        bandwidth = min(ch.bandwidth for ch in hops)
        latency = sum(ch.latency for ch in hops)
        return CopyPath(hops=tuple(hops), bandwidth=bandwidth, latency=latency)

    def transfer_time(self, src_uid: str, dst_uid: str, nbytes: float) -> float:
        """Seconds to copy ``nbytes`` from one memory to another.

        Raises ``ValueError`` if the memories are disconnected.
        """
        path = self.copy_path(src_uid, dst_uid)
        if path is None:
            raise ValueError(f"no channel path from {src_uid} to {dst_uid}")
        return path.transfer_time(nbytes)

    def connected(self) -> bool:
        """Whether every memory can reach every other memory."""
        if self._graph.number_of_nodes() <= 1:
            return True
        return nx.is_connected(self._graph)
