"""Ready-made machine models.

``shepard(nodes)`` and ``lassen(nodes)`` reproduce the two clusters of the
paper's evaluation (§5, "Experimental Setup"):

* **Shepard** (Stanford HPC Center): per node, 2× Intel Xeon Platinum 8276
  (28 cores each), 196 GB RAM, one NVIDIA P100 with 16 GB frame buffer.
* **Lassen** (LLNL): per node, 2× IBM Power9 (22 cores each, 20 usable),
  256 GB RAM, four NVIDIA V100 GPUs with NVLink 2.0 and 16 GB frame
  buffer each.

As in the paper, 8 cores per node are reserved for the runtime and 60 GB
of host memory per node are pinned as Zero-Copy memory.

Bandwidth/latency parameters come from published device specs derated to
sustained application-visible figures (HBM2 ~0.7–0.8× peak, PCIe 3.0 x16
~12 GB/s effective, NVLink 2.0 ~60 GB/s effective, EDR InfiniBand ~10
GB/s, DDR4 per-socket stream ~100 GB/s).  Absolute accuracy is not needed
— the experiments reproduce performance *ratios* — but the ordering and
rough magnitudes of these links is what drives every mapping trade-off in
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.machine.kinds import MemKind, ProcKind
from repro.machine.model import AccessLink, Channel, Machine, Memory, Processor
from repro.util.units import GIB

__all__ = [
    "NodeSpec",
    "generic_cluster",
    "heterogeneous_cluster",
    "shepard",
    "lassen",
    "helix",
    "mirrored_node",
    "lopsided_node",
    "single_node",
    "MACHINE_ZOO",
]

#: Parallel efficiency of the per-socket OpenMP processor relative to the
#: sum of its cores' throughputs (memory-bandwidth sharing, sync costs).
OMP_EFFICIENCY = 0.8


@dataclass(frozen=True)
class NodeSpec:
    """Physical description of one machine node.

    All bandwidths are bytes/s, latencies seconds, capacities bytes.
    ``cores_per_socket`` already excludes runtime-reserved cores.
    """

    cpu_sockets: int
    cores_per_socket: int
    gpus: int
    sysmem_per_socket: int
    zero_copy_capacity: int
    framebuffer_capacity: int
    cpu_core_throughput: float
    gpu_throughput: float
    cpu_launch_overhead: float
    gpu_launch_overhead: float
    sysmem_bandwidth: float
    zero_copy_cpu_bandwidth: float
    zero_copy_gpu_bandwidth: float
    framebuffer_bandwidth: float
    host_device_bandwidth: float  # FB <-> host channels (PCIe or NVLink)
    cross_socket_bandwidth: float
    intra_node_latency: float
    network_bandwidth: float  # node <-> node
    network_latency: float


#: Shepard node (paper §5): 2×28-core Xeon 8276, 196 GB RAM, 1× P100.
#: 8 cores reserved for the runtime => 48 application cores (24/socket).
SHEPARD_NODE = NodeSpec(
    cpu_sockets=2,
    cores_per_socket=24,
    gpus=1,
    sysmem_per_socket=68 * GIB,  # (196 GB - 60 GB zero-copy) split per socket
    zero_copy_capacity=60 * GIB,
    framebuffer_capacity=16 * GIB,
    cpu_core_throughput=1.2e10,  # sustained per core on application code
    gpu_throughput=3.0e12,  # P100 sustained (4.7 TF peak FP64)
    cpu_launch_overhead=1.2e-4,  # Legion dispatch + dependence analysis
    gpu_launch_overhead=1.5e-4,  # dispatch + kernel launch + stream sync
    sysmem_bandwidth=1.0e11,
    zero_copy_cpu_bandwidth=8.0e10,
    zero_copy_gpu_bandwidth=1.2e10,  # PCIe 3.0 x16 effective
    framebuffer_bandwidth=5.5e11,  # P100 HBM2 sustained (732 GB/s peak)
    host_device_bandwidth=1.2e10,
    cross_socket_bandwidth=3.0e10,
    intra_node_latency=1.0e-5,
    network_bandwidth=1.0e10,  # EDR InfiniBand effective
    network_latency=2.5e-5,
)

#: Lassen node (paper §5): 2×22-core Power9 (20 usable), 256 GB RAM,
#: 4× V100 with NVLink 2.0.  8 cores reserved => 32 application cores.
LASSEN_NODE = NodeSpec(
    cpu_sockets=2,
    cores_per_socket=16,
    gpus=4,
    sysmem_per_socket=98 * GIB,
    zero_copy_capacity=60 * GIB,
    framebuffer_capacity=16 * GIB,
    cpu_core_throughput=1.0e10,
    gpu_throughput=6.0e12,  # V100 sustained (7.8 TF peak FP64)
    cpu_launch_overhead=1.2e-4,
    gpu_launch_overhead=1.5e-4,
    sysmem_bandwidth=1.2e11,
    zero_copy_cpu_bandwidth=9.0e10,
    zero_copy_gpu_bandwidth=6.0e10,  # NVLink 2.0 effective
    framebuffer_bandwidth=7.0e11,  # V100 HBM2 sustained (900 GB/s peak)
    host_device_bandwidth=6.0e10,
    cross_socket_bandwidth=3.5e10,
    intra_node_latency=1.0e-5,
    network_bandwidth=2.0e10,  # dual-rail EDR effective
    network_latency=2.0e-5,
)


def heterogeneous_cluster(name: str, specs: Sequence[NodeSpec]) -> Machine:
    """Build a cluster with one (possibly distinct) ``NodeSpec`` per node.

    The constructed graph has, per node: one CPU processor per socket
    (OpenMP-style aggregate), one GPU processor per device, one System
    memory per socket, one Zero-Copy memory, and one frame buffer per
    GPU; access links per the kind addressability rules; channels FB↔ZC,
    FB↔System, System↔System (cross socket), System↔ZC; and inter-node
    channels between Zero-Copy and between System memories of every node
    pair (all-to-all network, priced at the slower endpoint's network
    bandwidth and the higher endpoint latency).

    Mixed-accelerator machines (e.g. :func:`helix`) are expressed as
    per-node GPU throughput/capacity differences: the kind alphabet
    stays {CPU, GPU}, so the mapping search is unchanged while the
    placer and simulator see the real heterogeneity.
    """
    specs = list(specs)
    if not specs:
        raise ValueError("cluster must have at least one node")
    processors: List[Processor] = []
    memories: List[Memory] = []
    access: List[AccessLink] = []
    channels: List[Channel] = []

    for n, spec in enumerate(specs):
        sys_uids = []
        for s in range(spec.cpu_sockets):
            mem_uid = f"n{n}.sys{s}"
            sys_uids.append(mem_uid)
            memories.append(
                Memory(
                    uid=mem_uid,
                    kind=MemKind.SYSTEM,
                    node=n,
                    socket=s,
                    capacity=spec.sysmem_per_socket,
                )
            )
        zc_uid = f"n{n}.zc"
        memories.append(
            Memory(
                uid=zc_uid,
                kind=MemKind.ZERO_COPY,
                node=n,
                capacity=spec.zero_copy_capacity,
            )
        )
        fb_uids = []
        for g in range(spec.gpus):
            fb_uid = f"n{n}.fb{g}"
            fb_uids.append(fb_uid)
            memories.append(
                Memory(
                    uid=fb_uid,
                    kind=MemKind.FRAMEBUFFER,
                    node=n,
                    device=g,
                    capacity=spec.framebuffer_capacity,
                )
            )

        # CPU processors: one OpenMP-style group per socket, aggregating
        # the socket's application cores.  The paper's Legion applications
        # use OpenMP CPU variants, so a "CPU placement" occupies a socket,
        # not a single core; modelling at socket granularity keeps the
        # event simulation small without changing any mapping trade-off.
        for s in range(spec.cpu_sockets):
            proc_uid = f"n{n}.cpu{s}"
            processors.append(
                Processor(
                    uid=proc_uid,
                    kind=ProcKind.CPU,
                    node=n,
                    socket=s,
                    throughput=(
                        spec.cpu_core_throughput
                        * spec.cores_per_socket
                        * OMP_EFFICIENCY
                    ),
                    launch_overhead=spec.cpu_launch_overhead,
                )
            )
            for s2, sys_uid in enumerate(sys_uids):
                bw = (
                    spec.sysmem_bandwidth
                    if s2 == s
                    else spec.cross_socket_bandwidth
                )
                access.append(
                    AccessLink(
                        proc=proc_uid,
                        mem=sys_uid,
                        bandwidth=bw,
                        latency=0.0,
                    )
                )
            access.append(
                AccessLink(
                    proc=proc_uid,
                    mem=zc_uid,
                    bandwidth=spec.zero_copy_cpu_bandwidth,
                    latency=0.0,
                )
            )

        # GPUs and their access links.
        for g in range(spec.gpus):
            proc_uid = f"n{n}.gpu{g}"
            processors.append(
                Processor(
                    uid=proc_uid,
                    kind=ProcKind.GPU,
                    node=n,
                    device=g,
                    throughput=spec.gpu_throughput,
                    launch_overhead=spec.gpu_launch_overhead,
                )
            )
            for g2, fb_uid in enumerate(fb_uids):
                if g2 == g:
                    access.append(
                        AccessLink(
                            proc=proc_uid,
                            mem=fb_uid,
                            bandwidth=spec.framebuffer_bandwidth,
                            latency=0.0,
                        )
                    )
            access.append(
                AccessLink(
                    proc=proc_uid,
                    mem=zc_uid,
                    bandwidth=spec.zero_copy_gpu_bandwidth,
                    latency=0.0,
                )
            )

        # Intra-node channels.
        for fb_uid in fb_uids:
            channels.append(
                Channel(
                    mem_a=fb_uid,
                    mem_b=zc_uid,
                    bandwidth=spec.host_device_bandwidth,
                    latency=spec.intra_node_latency,
                )
            )
            for sys_uid in sys_uids:
                channels.append(
                    Channel(
                        mem_a=fb_uid,
                        mem_b=sys_uid,
                        bandwidth=spec.host_device_bandwidth,
                        latency=spec.intra_node_latency,
                    )
                )
        for i, sys_a in enumerate(sys_uids):
            channels.append(
                Channel(
                    mem_a=sys_a,
                    mem_b=zc_uid,
                    bandwidth=spec.sysmem_bandwidth / 2,
                    latency=spec.intra_node_latency,
                )
            )
            for sys_b in sys_uids[i + 1 :]:
                channels.append(
                    Channel(
                        mem_a=sys_a,
                        mem_b=sys_b,
                        bandwidth=spec.cross_socket_bandwidth,
                        latency=spec.intra_node_latency,
                    )
                )
        # Peer-to-peer FB channels between GPUs on the same node.
        for i, fb_a in enumerate(fb_uids):
            for fb_b in fb_uids[i + 1 :]:
                channels.append(
                    Channel(
                        mem_a=fb_a,
                        mem_b=fb_b,
                        bandwidth=spec.host_device_bandwidth,
                        latency=spec.intra_node_latency,
                    )
                )

    # Inter-node network channels (all-to-all, between zero-copy pools and
    # between socket-0 system memories; copies between other memories are
    # routed through these by the topology layer).
    for a in range(len(specs)):
        for b in range(a + 1, len(specs)):
            bandwidth = min(
                specs[a].network_bandwidth, specs[b].network_bandwidth
            )
            latency = max(
                specs[a].network_latency, specs[b].network_latency
            )
            channels.append(
                Channel(
                    mem_a=f"n{a}.zc",
                    mem_b=f"n{b}.zc",
                    bandwidth=bandwidth,
                    latency=latency,
                )
            )
            channels.append(
                Channel(
                    mem_a=f"n{a}.sys0",
                    mem_b=f"n{b}.sys0",
                    bandwidth=bandwidth,
                    latency=latency,
                )
            )

    return Machine(
        name=f"{name}-{len(specs)}n",
        processors=processors,
        memories=memories,
        access_links=access,
        channels=channels,
    )


def generic_cluster(name: str, spec: NodeSpec, nodes: int) -> Machine:
    """Build a homogeneous cluster of ``nodes`` copies of ``spec``."""
    if nodes < 1:
        raise ValueError("cluster must have at least one node")
    return heterogeneous_cluster(name, [spec] * nodes)


def shepard(nodes: int = 1) -> Machine:
    """A ``nodes``-node model of the Shepard cluster (1× P100 per node)."""
    return generic_cluster("shepard", SHEPARD_NODE, nodes)


def lassen(nodes: int = 1) -> Machine:
    """A ``nodes``-node model of the Lassen cluster (4× V100 per node)."""
    return generic_cluster("lassen", LASSEN_NODE, nodes)


def single_node(
    cpus: int = 4,
    gpus: int = 1,
    framebuffer_capacity: int = 16 * GIB,
    sysmem_capacity: int = 64 * GIB,
    zero_copy_capacity: int = 16 * GIB,
) -> Machine:
    """A small single-node machine for examples and tests.

    One socket, ``cpus`` cores, ``gpus`` GPUs, Shepard-like link speeds.
    """
    spec = NodeSpec(
        cpu_sockets=1,
        cores_per_socket=cpus,
        gpus=gpus,
        sysmem_per_socket=sysmem_capacity,
        zero_copy_capacity=zero_copy_capacity,
        framebuffer_capacity=framebuffer_capacity,
        cpu_core_throughput=SHEPARD_NODE.cpu_core_throughput,
        gpu_throughput=SHEPARD_NODE.gpu_throughput,
        cpu_launch_overhead=SHEPARD_NODE.cpu_launch_overhead,
        gpu_launch_overhead=SHEPARD_NODE.gpu_launch_overhead,
        sysmem_bandwidth=SHEPARD_NODE.sysmem_bandwidth,
        zero_copy_cpu_bandwidth=SHEPARD_NODE.zero_copy_cpu_bandwidth,
        zero_copy_gpu_bandwidth=SHEPARD_NODE.zero_copy_gpu_bandwidth,
        framebuffer_bandwidth=SHEPARD_NODE.framebuffer_bandwidth,
        host_device_bandwidth=SHEPARD_NODE.host_device_bandwidth,
        cross_socket_bandwidth=SHEPARD_NODE.cross_socket_bandwidth,
        intra_node_latency=SHEPARD_NODE.intra_node_latency,
        network_bandwidth=SHEPARD_NODE.network_bandwidth,
        network_latency=SHEPARD_NODE.network_latency,
    )
    return generic_cluster("mini", spec, 1)


# ----------------------------------------------------------------------
# Machine zoo
# ----------------------------------------------------------------------

def _helix_node(
    gpu_throughput: float,
    framebuffer_capacity: int,
    framebuffer_bandwidth: float,
    host_device_bandwidth: float,
) -> NodeSpec:
    """One Helix-style cloud node: 1 socket, 8 application cores, one
    accelerator; only the GPU side differs between node types."""
    return NodeSpec(
        cpu_sockets=1,
        cores_per_socket=8,
        gpus=1,
        sysmem_per_socket=112 * GIB,
        zero_copy_capacity=16 * GIB,
        framebuffer_capacity=framebuffer_capacity,
        cpu_core_throughput=1.1e10,
        gpu_throughput=gpu_throughput,
        cpu_launch_overhead=1.2e-4,
        gpu_launch_overhead=1.5e-4,
        sysmem_bandwidth=9.0e10,
        zero_copy_cpu_bandwidth=7.0e10,
        zero_copy_gpu_bandwidth=host_device_bandwidth,
        framebuffer_bandwidth=framebuffer_bandwidth,
        host_device_bandwidth=host_device_bandwidth,
        cross_socket_bandwidth=3.0e10,
        intra_node_latency=1.0e-5,
        network_bandwidth=1.2e10,  # cloud 100 GbE effective
        network_latency=3.0e-5,
    )


#: Helix cluster node types (Helix, ASPLOS'25: a 24-node cloud cluster of
#: 4 machines with one A100 each, 8 with one L4, 12 with one T4).  GPU
#: throughputs are sustained relative weights (A100 >> L4 > T4); frame
#: buffers are the devices' real capacities; A100 nodes ride PCIe 4.0,
#: the inference cards PCIe 3.0.
HELIX_A100_NODE = _helix_node(
    gpu_throughput=2.2e13,
    framebuffer_capacity=40 * GIB,
    framebuffer_bandwidth=1.3e12,  # HBM2e, 1.9 TB/s peak derated
    host_device_bandwidth=2.4e10,  # PCIe 4.0 x16 effective
)
HELIX_L4_NODE = _helix_node(
    gpu_throughput=8.0e12,
    framebuffer_capacity=24 * GIB,
    framebuffer_bandwidth=2.4e11,  # GDDR6, 300 GB/s peak derated
    host_device_bandwidth=1.2e10,  # PCIe 3.0 x16 effective
)
HELIX_T4_NODE = _helix_node(
    gpu_throughput=4.5e12,
    framebuffer_capacity=16 * GIB,
    framebuffer_bandwidth=2.2e11,  # GDDR6, 320 GB/s peak derated
    host_device_bandwidth=1.2e10,
)

#: The repeating Helix node pattern: every window of six nodes holds one
#: A100, two L4 and three T4 machines, preserving the cluster's 4:8:12
#: composition at any prefix length that divides evenly.
_HELIX_PATTERN = (
    HELIX_A100_NODE,
    HELIX_L4_NODE,
    HELIX_L4_NODE,
    HELIX_T4_NODE,
    HELIX_T4_NODE,
    HELIX_T4_NODE,
)


def helix(nodes: int = 24) -> Machine:
    """A Helix-style mixed-accelerator cloud cluster (ASPLOS'25).

    The full machine is 24 nodes — 4×A100, 8×L4, 12×T4 — built as four
    repetitions of the six-node pattern ``A100,L4,L4,T4,T4,T4``.
    Smaller ``nodes`` counts take a prefix of the repeated pattern, so
    every size stays a representative mix (and ``nodes=1`` is a single
    A100 machine).
    """
    if nodes < 1:
        raise ValueError("cluster must have at least one node")
    specs = [
        _HELIX_PATTERN[n % len(_HELIX_PATTERN)] for n in range(nodes)
    ]
    return heterogeneous_cluster("helix", specs)


def mirrored_node(pairs: int = 2) -> Machine:
    """A single-node machine whose CPU/GPU sides are exact mirrors.

    ``pairs`` CPUs and ``pairs`` GPUs share throughput, overhead, link
    speeds, and channel parameters, and the three memory pools have
    equal capacity — making ``cpu<->gpu, system<->framebuffer`` a
    verified machine automorphism (zero-copy is the shared fixed
    point).  This is the zoo's symmetry-folding stress machine: every
    mapping orbit has size two, so the canonicalizer must fold.
    """
    return _mirror_machine("mirrored", pairs, gpu_throughput_skew=1.0)


def lopsided_node(pairs: int = 2) -> Machine:
    """The mirrored machine with one GPU 25% faster — deliberately
    *almost* symmetric.

    The skewed throughput breaks the index-wise pool comparison, so
    symmetry verification must reject the mirror relabeling and the
    canonicalizer must never orbit-fold here; a folding bug on this
    machine changes simulated makespans and fails the fuzz invariants.
    """
    return _mirror_machine("lopsided", pairs, gpu_throughput_skew=1.25)


def _mirror_machine(
    name: str, pairs: int, gpu_throughput_skew: float
) -> Machine:
    if pairs < 1:
        raise ValueError("mirrored machine needs at least one pair")
    throughput, overhead = 1.0e11, 1.0e-4
    fast, slow = 1.0e11, 5.0e10
    chan_bw, chan_lat = 2.0e10, 1.0e-5
    processors = []
    access = []
    for i in range(pairs):
        cpu_uid, gpu_uid = f"cpu{i}", f"gpu{i}"
        processors.append(
            Processor(
                uid=cpu_uid,
                kind=ProcKind.CPU,
                node=0,
                throughput=throughput,
                launch_overhead=overhead,
            )
        )
        skew = gpu_throughput_skew if i == pairs - 1 else 1.0
        processors.append(
            Processor(
                uid=gpu_uid,
                kind=ProcKind.GPU,
                node=0,
                throughput=throughput * skew,
                launch_overhead=overhead,
            )
        )
        access += [
            AccessLink(proc=cpu_uid, mem="sys", bandwidth=fast, latency=0.0),
            AccessLink(proc=cpu_uid, mem="zc", bandwidth=slow, latency=0.0),
            AccessLink(proc=gpu_uid, mem="fb", bandwidth=fast, latency=0.0),
            AccessLink(proc=gpu_uid, mem="zc", bandwidth=slow, latency=0.0),
        ]
    memories = [
        Memory(uid="sys", kind=MemKind.SYSTEM, node=0, capacity=32 * GIB),
        Memory(uid="zc", kind=MemKind.ZERO_COPY, node=0, capacity=32 * GIB),
        Memory(uid="fb", kind=MemKind.FRAMEBUFFER, node=0, capacity=32 * GIB),
    ]
    channels = [
        Channel(mem_a="sys", mem_b="zc", bandwidth=chan_bw, latency=chan_lat),
        Channel(mem_a="fb", mem_b="zc", bandwidth=chan_bw, latency=chan_lat),
        Channel(mem_a="sys", mem_b="fb", bandwidth=chan_bw, latency=chan_lat),
    ]
    return Machine(
        name=f"{name}-{pairs}p",
        processors=processors,
        memories=memories,
        access_links=access,
        channels=channels,
    )


#: The machine zoo: name -> factory taking one size argument (node
#: count for the clusters, per-side pair count for the mirrored
#: machines).  This is what the CLI's ``--machine`` choices and the
#: fuzz harness's machine sampling enumerate.
MACHINE_ZOO: Dict[str, Callable[[int], Machine]] = {
    "shepard": shepard,
    "lassen": lassen,
    "helix": helix,
    "mirrored": mirrored_node,
    "lopsided": lopsided_node,
}
