"""Fault tolerance for long tuning sessions.

The AutoMap loop treats the runtime as a black-box oracle queried
thousands of times (§5); on real clusters those sessions must survive
worker crashes, hangs, and preemption.  This package provides the three
pieces that make a tuning run restartable and crash-safe:

* :mod:`repro.resilience.checkpoint` — periodic, atomically-replaced
  snapshots of the full search state, and the deterministic replay
  ledger that lets ``repro tune --resume`` continue a killed run to a
  bit-identical result;
* :mod:`repro.resilience.supervisor` — recovery statistics for the
  process-pool supervision in :class:`repro.parallel.batch.BatchOracle`
  (per-candidate timeouts, bounded retries, pool rebuilds, graceful
  degradation to serial evaluation);
* :mod:`repro.resilience.faults` — a deterministic, env-keyed fault
  injection harness so tests and CI can prove the recovery paths
  preserve bit-identical results.
"""

from repro.resilience.checkpoint import (
    CheckpointManager,
    CheckpointMismatch,
    ReplayEntry,
    TuningCheckpoint,
    load_checkpoint,
    try_load_checkpoint,
)
from repro.resilience.faults import FaultPlan
from repro.resilience.supervisor import SupervisorStats

__all__ = [
    "CheckpointManager",
    "CheckpointMismatch",
    "FaultPlan",
    "ReplayEntry",
    "SupervisorStats",
    "TuningCheckpoint",
    "load_checkpoint",
    "try_load_checkpoint",
]
