"""Deterministic fault injection for worker processes.

Real clusters kill tuning workers in two characteristic ways: a hard
crash (OOM killer, node failure, preemption) and a silent hang (network
partition, wedged device).  To exercise the supervision machinery in
:class:`repro.parallel.batch.BatchOracle` reproducibly, this module
injects both failure modes *inside* the worker entry point, keyed by
environment variables so the configuration crosses the process boundary
for free:

``REPRO_FAULT_CRASH_P``
    Probability that a worker hard-exits while simulating a candidate.
``REPRO_FAULT_HANG_P``
    Probability that a worker sleeps for ``REPRO_FAULT_HANG_SECONDS``
    (default 3600) instead of returning — exercising the per-candidate
    timeout path.
``REPRO_FAULT_SEED``
    Seed of the fault stream (default 0).

The draw for a candidate is a pure function of ``(seed, mapping key,
attempt)``: the same candidate fails identically on every worker and in
every re-run of the test, while a *retry* (attempt + 1) gets a fresh
draw — exactly the transient-failure model supervision is built for.
Setting both probabilities to 1.0 makes every attempt fail, which is
how tests force retry exhaustion and the serial fallback.

Faults are only ever injected in worker processes, whose results feed
the driver's deterministic-result cache; the driver-side serial replay
recomputes anything a dead worker failed to deliver.  Injection can
therefore change *how* a result was obtained, never *what* it is.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Mapping as TMapping, Optional

from repro.util.rng import _SEED_SPACE, derive_seed

__all__ = ["FaultPlan"]

#: Exit status of an injected crash (distinctive in worker logs).
CRASH_EXIT_CODE = 70


@dataclass(frozen=True)
class FaultPlan:
    """Injection probabilities for one worker process."""

    crash_p: float = 0.0
    hang_p: float = 0.0
    hang_seconds: float = 3600.0
    seed: int = 0

    @property
    def active(self) -> bool:
        return self.crash_p > 0.0 or self.hang_p > 0.0

    @staticmethod
    def from_env(env: Optional[TMapping[str, str]] = None) -> "FaultPlan":
        """Build the plan from ``REPRO_FAULT_*`` environment variables
        (all unset → the inactive no-fault plan)."""
        if env is None:
            env = os.environ
        return FaultPlan(
            crash_p=float(env.get("REPRO_FAULT_CRASH_P", "0")),
            hang_p=float(env.get("REPRO_FAULT_HANG_P", "0")),
            hang_seconds=float(env.get("REPRO_FAULT_HANG_SECONDS", "3600")),
            seed=int(env.get("REPRO_FAULT_SEED", "0")),
        )

    # ------------------------------------------------------------------
    def decide(self, context: str, attempt: int) -> str:
        """The fault verdict — ``"crash"``, ``"hang"``, or ``"ok"`` —
        for one (candidate, attempt) pair.  Deterministic: the same
        inputs always produce the same verdict."""
        draw = derive_seed(self.seed, context, str(attempt)) / _SEED_SPACE
        if draw < self.crash_p:
            return "crash"
        if draw < self.crash_p + self.hang_p:
            return "hang"
        return "ok"

    def maybe_fail(self, context: str, attempt: int) -> None:
        """Apply the verdict inside a worker process: hard-exit the
        process or sleep past any reasonable timeout.  No-op when the
        verdict is ``"ok"`` or the plan is inactive."""
        if not self.active:
            return
        verdict = self.decide(context, attempt)
        if verdict == "crash":
            os._exit(CRASH_EXIT_CODE)
        if verdict == "hang":
            time.sleep(self.hang_seconds)
