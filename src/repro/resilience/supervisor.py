"""Recovery accounting for supervised worker pools.

:class:`repro.parallel.batch.BatchOracle` supervises its process pool:
per-candidate timeouts, bounded retries with exponential backoff, pool
rebuilds after :class:`~concurrent.futures.process.BrokenProcessPool`,
and — when workers keep dying — graceful degradation to serial
evaluation.  All of those events are counted here so the driver can
surface them in the :class:`~repro.core.driver.TuningReport`.

Because the pool only ever *warms the deterministic-result cache*
(prefetch-then-replay, see :mod:`repro.parallel.batch`), every recovery
action is result-preserving by construction: a candidate whose worker
died is simply recomputed by the driver-side serial replay.  Supervision
decides how much wall-clock the failures cost, never what the search
observes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SupervisorStats"]


@dataclass
class SupervisorStats:
    """Counts of every recovery event during one tuning run."""

    #: Candidates whose worker result did not arrive within the
    #: per-candidate timeout (hung worker; forces a pool rebuild).
    timeouts: int = 0
    #: Batches that died with :class:`BrokenProcessPool` (worker crash).
    broken_pools: int = 0
    #: Worker-side exceptions returned for individual candidates.
    worker_errors: int = 0
    #: Re-submission rounds after a failed batch (bounded, backed off).
    retries: int = 0
    #: Times the process pool was torn down and restarted.
    pool_rebuilds: int = 0
    #: Candidates given up on after retry exhaustion (recomputed by the
    #: driver-side serial replay; the result is unaffected).
    abandoned: int = 0
    #: True once supervision stopped using workers entirely and the
    #: rest of the run evaluated serially.
    serial_fallback: bool = False

    @property
    def any_events(self) -> bool:
        return (
            self.timeouts > 0
            or self.broken_pools > 0
            or self.worker_errors > 0
            or self.retries > 0
            or self.pool_rebuilds > 0
            or self.abandoned > 0
            or self.serial_fallback
        )

    def describe(self) -> str:
        parts = [
            f"{self.timeouts} timeouts",
            f"{self.broken_pools} broken pools",
            f"{self.worker_errors} worker errors",
            f"{self.retries} retries",
            f"{self.pool_rebuilds} pool rebuilds",
            f"{self.abandoned} abandoned",
        ]
        line = ", ".join(parts)
        if self.serial_fallback:
            line += "; degraded to serial evaluation"
        return line
