"""Recovery accounting for supervised worker pools.

:class:`repro.parallel.batch.BatchOracle` supervises its process pool:
per-candidate timeouts, bounded retries with exponential backoff, pool
rebuilds after :class:`~concurrent.futures.process.BrokenProcessPool`,
and — when workers keep dying — graceful degradation to serial
evaluation.  All of those events are counted here so the driver can
surface them in the :class:`~repro.core.driver.TuningReport`.

The counts live in a :class:`repro.obs.metrics.MetricsRegistry` (under
``supervisor.*`` names) so they serialize alongside the oracle's
evaluation accounting; the attribute API (``stats.timeouts += 1``) is
preserved via properties, so callers never see the registry.

Because the pool only ever *warms the deterministic-result cache*
(prefetch-then-replay, see :mod:`repro.parallel.batch`), every recovery
action is result-preserving by construction: a candidate whose worker
died is simply recomputed by the driver-side serial replay.  Supervision
decides how much wall-clock the failures cost, never what the search
observes.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["SupervisorStats"]

#: Recovery-event counters, in display order.
_COUNTER_FIELDS = (
    "timeouts",
    "broken_pools",
    "worker_errors",
    "retries",
    "pool_rebuilds",
    "abandoned",
)


def _counter_property(fname: str, doc: str) -> property:
    def fget(self: "SupervisorStats") -> int:
        return self._counters[fname].value

    def fset(self: "SupervisorStats", value: int) -> None:
        # ``stats.timeouts += 1`` arrives here as the new total; the
        # counter's own inc() rejects the delta going negative, keeping
        # the monotonic contract the old int fields had implicitly.
        counter = self._counters[fname]
        counter.inc(value - counter.value)

    return property(fget, fset, doc=doc)


class SupervisorStats:
    """Counts of every recovery event during one tuning run."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        #: Registry holding the ``supervisor.*`` metrics.  Pass the
        #: oracle's registry to fold recovery accounting into the same
        #: namespace; by default the stats own a private one.
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._counters = {
            fname: self.metrics.counter(f"supervisor.{fname}")
            for fname in _COUNTER_FIELDS
        }
        self._fallback = self.metrics.gauge("supervisor.serial_fallback")

    timeouts = _counter_property(
        "timeouts",
        "Candidates whose worker result did not arrive within the "
        "per-candidate timeout (hung worker; forces a pool rebuild).",
    )
    broken_pools = _counter_property(
        "broken_pools",
        "Batches that died with BrokenProcessPool (worker crash).",
    )
    worker_errors = _counter_property(
        "worker_errors",
        "Worker-side exceptions returned for individual candidates.",
    )
    retries = _counter_property(
        "retries",
        "Re-submission rounds after a failed batch (bounded, backed off).",
    )
    pool_rebuilds = _counter_property(
        "pool_rebuilds",
        "Times the process pool was torn down and restarted.",
    )
    abandoned = _counter_property(
        "abandoned",
        "Candidates given up on after retry exhaustion (recomputed by "
        "the driver-side serial replay; the result is unaffected).",
    )

    @property
    def serial_fallback(self) -> bool:
        """True once supervision stopped using workers entirely and the
        rest of the run evaluated serially."""
        return bool(self._fallback.value)

    @serial_fallback.setter
    def serial_fallback(self, value: bool) -> None:
        self._fallback.set(bool(value))

    @property
    def any_events(self) -> bool:
        return (
            any(counter.value > 0 for counter in self._counters.values())
            or self.serial_fallback
        )

    def describe(self) -> str:
        parts = [
            f"{self._counters[fname].value} {fname.replace('_', ' ')}"
            for fname in _COUNTER_FIELDS
        ]
        line = ", ".join(parts)
        if self.serial_fallback:
            line += "; degraded to serial evaluation"
        return line

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SupervisorStats({self.describe()!r})"
