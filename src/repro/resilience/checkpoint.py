"""Checkpointed, resumable tuning sessions.

A tuning run is hours of oracle queries; a crash or preemption must not
lose it.  The checkpoint subsystem periodically serializes the full
search state to an atomically-replaced ``checkpoint.json``:

* every profile record with its **round-trippable mapping**, raw
  samples, deterministic makespan, and failure provenance (runtime OOM
  vs. statically proven);
* the oracle's accounting — suggested/evaluated/invalid/failed counters,
  canonicalization folds, static prunes, and the simulated search
  clock;
* the best-so-far mapping and performance;
* the search :class:`~repro.util.rng.RngStream` state and the
  algorithm's cursor (both informational — see below).

**The recovery-determinism contract.**  Resume does not teleport the
search algorithm to its interrupted program counter.  Instead, the saved
records are installed into the fresh oracle as a *replay ledger*: the
search re-runs from the beginning, and the first time it re-suggests a
mapping the ledger knows, the oracle reproduces the original execution —
same samples, same clock advance, same counter updates, same trace
point — without touching the simulator.  Every algorithm in this
repository is deterministic given the oracle's answers, so the replayed
search takes exactly the original trajectory (cheaply: ledger hits cost
a dictionary lookup), reaches the interruption point in the same state,
and continues.  A run killed at any checkpoint boundary and resumed is
therefore **bit-identical** to an uninterrupted run with the same seed —
the same guarantee, by the same prefetch-then-replay argument, that
makes parallel evaluation equal serial evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from repro.mapping.io import mapping_from_doc, mapping_to_doc
from repro.mapping.mapping import Mapping
from repro.util.logging import get_logger, kv
from repro.util.serialization import dump_json, load_json

if TYPE_CHECKING:  # pragma: no cover - import cycle with repro.core
    from repro.core.oracle import SimulationOracle
    from repro.search.base import SearchAlgorithm
    from repro.util.rng import RngStream

__all__ = [
    "CHECKPOINT_FILENAME",
    "CheckpointManager",
    "CheckpointMismatch",
    "ReplayEntry",
    "TuningCheckpoint",
    "load_checkpoint",
    "try_load_checkpoint",
]

_LOG = get_logger("resilience.checkpoint")

_FORMAT = "automap-checkpoint-v1"

#: Default artifact name inside a working directory.
CHECKPOINT_FILENAME = "checkpoint.json"


class CheckpointMismatch(ValueError):
    """The checkpoint was produced by a different tuning problem."""


@dataclass(frozen=True)
class ReplayEntry:
    """One completed evaluation, ready to be replayed on resume."""

    mapping: Mapping
    samples: List[float]
    failed: bool = False
    reason: Optional[str] = None
    makespan: Optional[float] = None
    static_oom: bool = False

    def to_doc(self) -> dict:
        return {
            "kinds": mapping_to_doc(self.mapping),
            "samples": list(self.samples),
            "failed": self.failed,
            "reason": self.reason,
            "makespan": self.makespan,
            "static_oom": self.static_oom,
        }

    @staticmethod
    def from_doc(doc: dict) -> "ReplayEntry":
        return ReplayEntry(
            mapping=mapping_from_doc(doc["kinds"]),
            samples=list(doc["samples"]),
            failed=doc["failed"],
            reason=doc["reason"],
            makespan=doc["makespan"],
            static_oom=doc.get("static_oom", False),
        )


@dataclass
class TuningCheckpoint:
    """Full serialized state of one tuning run at a safe boundary."""

    application: str
    machine_name: str
    algorithm: str
    seed: int
    #: Oracle accounting at checkpoint time.  Informational: resume
    #: re-derives every counter by replaying the ledger, which is what
    #: guarantees bit-identity; these values let tools (and tests)
    #: inspect how far the run had progressed.
    suggested: int = 0
    evaluated: int = 0
    invalid_suggestions: int = 0
    failed_evaluations: int = 0
    canonical_folds: int = 0
    static_oom_pruned: int = 0
    bound_pruned: int = 0
    sim_elapsed: float = 0.0
    sim_evaluating: float = 0.0
    best_performance: Optional[float] = None
    best_mapping: Optional[Mapping] = None
    #: Full metrics-registry snapshot
    #: (:meth:`repro.obs.metrics.MetricsRegistry.as_dict`) at save time.
    #: Like the counters above this is *derived* state: resume never
    #: restores it — the replay re-derives every metric — so embedding
    #: it cannot perturb bit-identity.
    metrics: Optional[dict] = None
    #: Search-stream RNG snapshot and the algorithm's position at save
    #: time.  Diagnostic only — replay regenerates both exactly.
    rng_state: Optional[dict] = None
    cursor: dict = field(default_factory=dict)
    entries: List[ReplayEntry] = field(default_factory=list)

    # ------------------------------------------------------------------
    def replay_ledger(self) -> Dict[tuple, ReplayEntry]:
        """The saved evaluations keyed by canonical mapping identity,
        as consumed by
        :meth:`repro.core.oracle.SimulationOracle.install_replay`."""
        return {entry.mapping.key(): entry for entry in self.entries}

    def verify_matches(
        self,
        application: str,
        machine_name: str,
        algorithm: str,
        seed: int,
    ) -> None:
        """Refuse to resume into a different tuning problem — replaying
        foreign profiles would silently corrupt the search."""
        expected = (application, machine_name, algorithm, seed)
        actual = (
            self.application,
            self.machine_name,
            self.algorithm,
            self.seed,
        )
        if expected != actual:
            raise CheckpointMismatch(
                f"checkpoint is for app={self.application!r} "
                f"machine={self.machine_name!r} "
                f"algorithm={self.algorithm!r} seed={self.seed}; "
                f"the session requested app={application!r} "
                f"machine={machine_name!r} algorithm={algorithm!r} "
                f"seed={seed}"
            )

    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Write the checkpoint atomically (temp file + ``os.replace``):
        a crash mid-save leaves the previous checkpoint intact."""
        doc = {
            "format": _FORMAT,
            "application": self.application,
            "machine": self.machine_name,
            "algorithm": self.algorithm,
            "seed": self.seed,
            "counters": {
                "suggested": self.suggested,
                "evaluated": self.evaluated,
                "invalid_suggestions": self.invalid_suggestions,
                "failed_evaluations": self.failed_evaluations,
                "canonical_folds": self.canonical_folds,
                "static_oom_pruned": self.static_oom_pruned,
                "bound_pruned": self.bound_pruned,
                "sim_elapsed": self.sim_elapsed,
                "sim_evaluating": self.sim_evaluating,
            },
            "best": {
                "performance": self.best_performance,
                "mapping": (
                    None
                    if self.best_mapping is None
                    else mapping_to_doc(self.best_mapping)
                ),
            },
            "metrics": self.metrics,
            "rng_state": self.rng_state,
            "cursor": self.cursor,
            "records": [entry.to_doc() for entry in self.entries],
        }
        dump_json(doc, path)

    @staticmethod
    def from_doc(doc: dict) -> "TuningCheckpoint":
        if doc.get("format") != _FORMAT:
            raise ValueError(
                f"not an AutoMap checkpoint (format "
                f"{doc.get('format')!r}, expected {_FORMAT!r})"
            )
        counters = doc["counters"]
        best = doc["best"]
        return TuningCheckpoint(
            application=doc["application"],
            machine_name=doc["machine"],
            algorithm=doc["algorithm"],
            seed=doc["seed"],
            suggested=counters["suggested"],
            evaluated=counters["evaluated"],
            invalid_suggestions=counters["invalid_suggestions"],
            failed_evaluations=counters["failed_evaluations"],
            canonical_folds=counters["canonical_folds"],
            static_oom_pruned=counters["static_oom_pruned"],
            # Absent in pre-bound-pruning checkpoints.
            bound_pruned=counters.get("bound_pruned", 0),
            sim_elapsed=counters["sim_elapsed"],
            sim_evaluating=counters["sim_evaluating"],
            best_performance=best["performance"],
            best_mapping=(
                None
                if best["mapping"] is None
                else mapping_from_doc(best["mapping"])
            ),
            metrics=doc.get("metrics"),
            rng_state=doc.get("rng_state"),
            cursor=doc.get("cursor") or {},
            entries=[ReplayEntry.from_doc(d) for d in doc["records"]],
        )


def load_checkpoint(path: Union[str, Path]) -> TuningCheckpoint:
    """Read a checkpoint written by :meth:`TuningCheckpoint.save`."""
    return TuningCheckpoint.from_doc(load_json(Path(path)))


def try_load_checkpoint(
    path: Union[str, Path],
) -> Optional[TuningCheckpoint]:
    """:func:`load_checkpoint`, but ``None`` when no checkpoint exists.

    The resume-if-possible idiom crash recovery needs: a job killed
    before its first periodic snapshot has no checkpoint and simply
    restarts from scratch — which is just as deterministic."""
    path = Path(path)
    if not path.exists():
        return None
    return load_checkpoint(path)


class CheckpointManager:
    """Periodically snapshots a live tuning run.

    Registered as an oracle observer; saves after every ``every``
    executed evaluations (0 disables periodic saves), and on demand via
    :meth:`flush` — which the driver calls at the end of the search and
    on :class:`KeyboardInterrupt`.
    """

    def __init__(
        self,
        path: Union[str, Path],
        oracle: "SimulationOracle",
        application: str,
        machine_name: str,
        algorithm_name: str,
        seed: int,
        every: int = 0,
        rng: Optional["RngStream"] = None,
        algorithm: Optional["SearchAlgorithm"] = None,
    ) -> None:
        if every < 0:
            raise ValueError("checkpoint interval must be >= 0")
        self.path = Path(path)
        self.every = every
        self.saves = 0
        self._oracle = oracle
        self._rng = rng
        self._algorithm = algorithm
        self._meta = (application, machine_name, algorithm_name, seed)
        self._last_saved_evaluated = -1

    # ------------------------------------------------------------------
    def on_evaluation(self, oracle: "SimulationOracle") -> None:
        """Oracle observer hook: save at every ``every``-th execution.

        Keyed on *executed* evaluations (not suggestions), so the
        checkpoint cadence tracks the expensive work.  Suggestion-only
        progress (cache hits, invalid candidates) never triggers a save.
        """
        if self.every <= 0:
            return
        if (
            oracle.evaluated != self._last_saved_evaluated
            and oracle.evaluated > 0
            and oracle.evaluated % self.every == 0
        ):
            self.flush()

    def flush(self) -> None:
        """Snapshot the current state to disk (atomic replace)."""
        oracle = self._oracle
        app, machine_name, algorithm_name, seed = self._meta
        runs = oracle.config.runs_per_eval
        entries: List[ReplayEntry] = []
        settled = getattr(oracle, "settled_keys", frozenset())
        for record in oracle.profiles.all_records():
            # Records that exist only because post-search settling
            # measured a bound-pruned candidate must not enter the
            # ledger: the uninterrupted search never *evaluated* them,
            # so a resumed search must re-prune them, not replay them.
            if record.mapping.key() in settled:
                continue
            # Trim to the as-executed sample count: finalist
            # re-measurement appends extra samples that resume must
            # re-derive through the normal final-report path.
            entries.append(
                ReplayEntry(
                    mapping=record.mapping,
                    samples=list(record.samples[:runs]),
                    failed=record.failed,
                    reason=record.reason,
                    makespan=record.makespan,
                    static_oom=record.static_oom,
                )
            )
        # A resumed run that is checkpointed again may still hold
        # not-yet-replayed evaluations from the previous checkpoint;
        # carry them forward so nothing is lost.
        entries.extend(oracle.pending_replay_entries())
        checkpoint = TuningCheckpoint(
            application=app,
            machine_name=machine_name,
            algorithm=algorithm_name,
            seed=seed,
            suggested=oracle.suggested,
            evaluated=oracle.evaluated,
            invalid_suggestions=oracle.invalid_suggestions,
            failed_evaluations=oracle.failed_evaluations,
            canonical_folds=oracle.canonical_folds,
            static_oom_pruned=oracle.static_oom_pruned,
            bound_pruned=getattr(oracle, "bound_pruned", 0),
            sim_elapsed=oracle.sim_elapsed,
            sim_evaluating=oracle.sim_evaluating,
            best_performance=oracle.best_performance,
            best_mapping=oracle.best_mapping,
            metrics=oracle.metrics.as_dict(),
            rng_state=(
                None if self._rng is None else self._rng.state_dict()
            ),
            cursor=(
                {} if self._algorithm is None else self._algorithm.cursor
            ),
            entries=entries,
        )
        checkpoint.save(self.path)
        self.saves += 1
        self._last_saved_evaluated = oracle.evaluated
        _LOG.info(
            kv(
                "checkpoint",
                path=str(self.path),
                evaluated=oracle.evaluated,
                records=len(entries),
                saves=self.saves,
            )
        )
