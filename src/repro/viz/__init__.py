"""Text visualisation of mappings and results (Figures 2/3 style).

Terminal-friendly renderings: per-kind mapping tables with
relative-collection-size bars (:mod:`~repro.viz.ascii_map`), aligned
result tables used by the benchmark harness (:mod:`~repro.viz.table`),
and ASCII Gantt charts of simulator traces (:mod:`~repro.viz.gantt`).
"""

from repro.viz.ascii_map import render_mapping, render_mapping_diff
from repro.viz.gantt import render_gantt
from repro.viz.table import Table

__all__ = ["render_mapping", "render_mapping_diff", "render_gantt", "Table"]
