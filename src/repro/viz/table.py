"""Aligned text tables for benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; :class:`Table` keeps that output aligned and greppable
without external dependencies.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["Table"]


class Table:
    """A fixed-column text table.

    >>> t = Table(["input", "speedup"])
    >>> t.add_row(["n50w200", 2.41])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    input    | speedup
    ---------+--------
    n50w200  | 2.41
    """

    def __init__(
        self, columns: Sequence[str], float_format: str = "{:.2f}"
    ) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.float_format = float_format
        self._rows: List[List[str]] = []

    def add_row(self, values: Sequence[Any]) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        rendered = []
        for value in values:
            if isinstance(value, float):
                rendered.append(self.float_format.format(value))
            else:
                rendered.append(str(value))
        self._rows.append(rendered)

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    def render(self, title: Optional[str] = None) -> str:
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: List[str] = []
        if title:
            lines.append(title)
        header = " | ".join(
            c.ljust(w) for c, w in zip(self.columns, widths)
        )
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self._rows:
            lines.append(
                " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
            )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
