"""Aligned text tables for benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; :class:`Table` keeps that output aligned and greppable
without external dependencies.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["Table"]


class Table:
    """A fixed-column text table.

    >>> t = Table(["input", "speedup"])
    >>> t.add_row(["n50w200", 2.41])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    input    | speedup
    ---------+--------
    n50w200  | 2.41

    Columns holding numbers read better right-justified::

    >>> t = Table(["rule", "count"], align=["left", "right"])
    >>> t.add_row(["AM301", 7])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    rule  | count
    ------+------
    AM301 |     7
    """

    def __init__(
        self,
        columns: Sequence[str],
        float_format: str = "{:.2f}",
        align: Optional[Sequence[str]] = None,
    ) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.float_format = float_format
        if align is None:
            align = ["left"] * len(self.columns)
        if len(align) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} alignments, got {len(align)}"
            )
        for a in align:
            if a not in ("left", "right"):
                raise ValueError(f"unknown alignment {a!r}")
        self.align = list(align)
        self._rows: List[List[str]] = []

    def add_row(self, values: Sequence[Any]) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        rendered = []
        for value in values:
            if isinstance(value, float):
                rendered.append(self.float_format.format(value))
            else:
                rendered.append(str(value))
        self._rows.append(rendered)

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    def render(self, title: Optional[str] = None) -> str:
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: List[str] = []
        if title:
            lines.append(title)
        def fit(cell: str, width: int, alignment: str) -> str:
            if alignment == "right":
                return cell.rjust(width)
            return cell.ljust(width)

        header = " | ".join(
            fit(c, w, a)
            for c, w, a in zip(self.columns, widths, self.align)
        )
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self._rows:
            lines.append(
                " | ".join(
                    fit(cell, w, a)
                    for cell, w, a in zip(row, widths, self.align)
                )
            )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
