"""ASCII rendering of mappings (Figure 3 style).

Each task kind is shown with its processor kind, distribution setting,
and per-argument memory kinds; a bar under every collection argument
shows its size relative to the application's largest collection, exactly
like the rectangles in the paper's Figure 3.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.machine.kinds import MemKind
from repro.mapping.mapping import Mapping
from repro.taskgraph.graph import TaskGraph

__all__ = ["render_mapping", "render_mapping_diff"]

#: One-letter markers per memory kind (Figure 3 uses colors; we use
#: letters: Z = Zero-Copy, F = Frame-Buffer, S = System).
_MEM_MARK = {
    MemKind.ZERO_COPY: "Z",
    MemKind.FRAMEBUFFER: "F",
    MemKind.SYSTEM: "S",
}

_BAR_WIDTH = 24


def _slot_sizes(graph: TaskGraph) -> Dict[tuple, int]:
    sizes: Dict[tuple, int] = {}
    for launch in graph.launches:
        for index, arg in enumerate(launch.args):
            key = (launch.kind.name, index)
            sizes[key] = max(sizes.get(key, 0), arg.nbytes)
    return sizes


def _bar(nbytes: int, largest: int) -> str:
    if largest <= 0:
        return ""
    filled = max(1, round(_BAR_WIDTH * nbytes / largest))
    return "▕" + "█" * filled + " " * (_BAR_WIDTH - filled) + "▏"


def render_mapping(
    graph: TaskGraph,
    mapping: Mapping,
    title: Optional[str] = None,
) -> str:
    """Render ``mapping`` over ``graph`` as a multi-line string.

    Example output (one kind)::

        stencil                      GPU  distributed
          out_c        F ▕██████████████████████  ▏ 190.7 MiB
          in_n         Z ▕█                       ▏ 156.2 KiB
    """
    from repro.util.units import format_bytes

    sizes = _slot_sizes(graph)
    largest = max(sizes.values(), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for kind in graph.task_kinds:
        if kind.name not in mapping:
            continue
        decision = mapping.decision(kind.name)
        dist = "distributed" if decision.distribute else "leader-node"
        lines.append(
            f"{kind.name:<28} {decision.proc_kind.value.upper():<4} {dist}"
        )
        for index, slot in enumerate(kind.slots):
            nbytes = sizes.get((kind.name, index), 0)
            mark = _MEM_MARK.get(decision.mem_kinds[index], "?")
            lines.append(
                f"  {slot.name:<14} {mark} "
                f"{_bar(nbytes, largest)} {format_bytes(nbytes)}"
            )
    lines.append("")
    lines.append("memory kinds: F = Frame-Buffer, Z = Zero-Copy, S = System")
    return "\n".join(lines)


def render_mapping_diff(
    graph: TaskGraph, base: Mapping, other: Mapping
) -> str:
    """Render only the decisions where ``other`` differs from ``base`` —
    handy for showing what AutoMap changed relative to the default."""
    lines: List[str] = []
    for kind in graph.task_kinds:
        if kind.name not in base or kind.name not in other:
            continue
        a = base.decision(kind.name)
        b = other.decision(kind.name)
        if a == b:
            continue
        changes = []
        if a.distribute != b.distribute:
            changes.append(
                f"distribute {a.distribute} -> {b.distribute}"
            )
        if a.proc_kind != b.proc_kind:
            changes.append(
                f"proc {a.proc_kind.value} -> {b.proc_kind.value}"
            )
        for index, slot in enumerate(kind.slots):
            if a.mem_kinds[index] != b.mem_kinds[index]:
                changes.append(
                    f"{slot.name}: {a.mem_kinds[index].value} -> "
                    f"{b.mem_kinds[index].value}"
                )
        lines.append(f"{kind.name}: " + "; ".join(changes))
    if not lines:
        return "(mappings identical)"
    return "\n".join(lines)
