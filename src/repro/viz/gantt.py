"""ASCII Gantt rendering of simulator traces.

A terminal-friendly companion to the Chrome trace-event export: one row
per resource (processors first, then channels), time left to right over
the traced makespan.  Useful for eyeballing where a mapping's time goes
without leaving the shell; load the JSON into Perfetto for the zoomable
version.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.trace import CAT_COPY, CAT_OVERHEAD, CAT_TASK, TraceRecorder

__all__ = ["render_gantt"]

#: Column glyph per span category; later entries win when spans of
#: different categories land in the same column of a row.
_GLYPHS = {CAT_OVERHEAD: "%", CAT_COPY: "~", CAT_TASK: "#"}
_PRIORITY = {CAT_OVERHEAD: 0, CAT_COPY: 1, CAT_TASK: 2}
_IDLE = "."


def render_gantt(recorder: TraceRecorder, width: int = 72) -> str:
    """Render ``recorder``'s spans as an ASCII Gantt chart.

    ``width`` is the number of time columns; each column covers
    ``makespan / width`` simulated seconds.  A span always paints at
    least one column so short tasks stay visible.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    makespan = recorder.makespan
    if makespan <= 0 or not recorder.spans:
        return "(empty trace)"

    rows: Dict[str, List[str]] = {}
    painted: Dict[str, List[int]] = {}
    for name in recorder.resources():
        rows[name] = [_IDLE] * width
        painted[name] = [-1] * width

    scale = width / makespan
    for span in recorder.spans:
        row = rows[span.resource]
        claim = painted[span.resource]
        first = min(width - 1, int(span.start * scale))
        last = min(width - 1, max(first, int(span.finish * scale - 1e-9)))
        rank = _PRIORITY[span.category]
        for column in range(first, last + 1):
            if rank >= claim[column]:
                row[column] = _GLYPHS[span.category]
                claim[column] = rank

    label_width = max(len(name) for name in rows)
    # Processors above channels, each group alphabetical.
    ordered = sorted(
        rows, key=lambda name: (name.startswith("chan:"), name)
    )
    lines = [
        (
            f"trace{': ' + recorder.label if recorder.label else ''} — "
            f"makespan {makespan:.6f} s "
            f"({makespan / width:.2e} s/column)"
        ),
        (
            f"{'legend'.ljust(label_width)} |"
            f" {_GLYPHS[CAT_TASK]}=task {_GLYPHS[CAT_COPY]}=copy "
            f"{_GLYPHS[CAT_OVERHEAD]}=launch {_IDLE}=idle"
        ),
    ]
    for name in ordered:
        lines.append(f"{name.ljust(label_width)} |{''.join(rows[name])}|")
    return "\n".join(lines)
