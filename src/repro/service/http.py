"""The HTTP front-end (stdlib ``http.server``, zero new dependencies).

:class:`MappingService` is the transport-free facade — job submission
with cache short-circuit, status documents, artifact bytes, Prometheus
text — and the request handler is a thin JSON shim over it, so tests can
drive the service object directly and the HTTP layer stays trivial.

Endpoints::

    POST /jobs                  submit a JobSpec document -> 201 + status
    GET  /jobs                  list all job status documents
    GET  /jobs/<id>             one job's status document
    GET  /jobs/<id>/report      deterministic result.json (done jobs)
    GET  /jobs/<id>/trace       winning mapping's Chrome trace
    GET  /jobs/<id>/metrics     the tuning run's Prometheus metrics
    GET  /cache                 cache entries, sizes, and budget
    GET  /metrics               service-level Prometheus metrics
    GET  /healthz               liveness probe

Submitting a workload whose fingerprint is cached creates the job
directly in ``done`` with ``cache_hit`` set and ``simulations == 0`` —
no queueing, no engine, and ``/report`` serves the stored bytes
unchanged.  On an exact miss the service consults the AM6xx
near-equivalence prover (:mod:`repro.analysis.equivalence`): when a
cached workload is *provably* indistinguishable from the submission
(capacity slack above the static footprint bound, parameters of
unreachable resources, or a verified relabeling), the stored result is
pulled back through the proof's relabeling and served — still zero
simulations, ``cache_mode == "equiv"``, with the proof log published
beside the result as ``proof.json``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry, to_prometheus_text
from repro.obs.trace import TRACE_FILENAME
from repro.service.cache import ResultCache
from repro.service.result import RESULT_FILENAME
from repro.service.spec import JobSpec
from repro.service.store import JobRecord, JobState, JobStore
from repro.service.worker import JobWorker
from repro.util.logging import get_logger

__all__ = ["MappingService", "ServiceError", "make_server"]

_LOG = get_logger("service.http")

#: URL artifact name -> (cache filename, content type).
_ARTIFACTS = {
    "report": (RESULT_FILENAME, "application/json"),
    "trace": (TRACE_FILENAME, "application/json"),
    "metrics": ("metrics.txt", "text/plain; version=0.0.4"),
}


class ServiceError(Exception):
    """An error with an HTTP status (the handler's 4xx/5xx path)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class MappingService:
    """Job store + result cache + worker, behind one facade.

    Creating the service recovers jobs a previous process died while
    running (they re-queue and resume from their checkpoints);
    :meth:`start` launches the worker thread.
    """

    def __init__(
        self,
        root: Union[str, Path],
        metrics: Optional[MetricsRegistry] = None,
        poll_interval: float = 0.05,
        workers: int = 1,
        cache_max_bytes: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.root = Path(root)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.store = JobStore(self.root)
        self.cache = ResultCache(
            self.root, metrics=self.metrics, max_bytes=cache_max_bytes
        )
        recovered = self.store.recover_running()
        for record in recovered:
            _LOG.info(
                "recovered in-flight job %s (attempt %d) — will resume",
                record.job_id,
                record.attempts,
            )
        self.metrics.counter("service.jobs.recovered").inc(len(recovered))
        self.workers = [
            JobWorker(
                self.store,
                self.cache,
                metrics=self.metrics,
                poll_interval=poll_interval,
                index=index,
            )
            for index in range(workers)
        ]

    @property
    def worker(self) -> JobWorker:
        """The first worker (single-worker back-compat handle)."""
        return self.workers[0]

    # ------------------------------------------------------------------
    def start(self) -> None:
        for worker in self.workers:
            worker.start()

    def stop(self, timeout: float = 5.0) -> None:
        for worker in self.workers:
            worker.stop()
        for worker in self.workers:
            if worker.is_alive():
                worker.join(timeout)

    # ------------------------------------------------------------------
    def submit(self, doc: dict) -> JobRecord:
        """Validate, fingerprint, and enqueue one submission — or serve
        it from the cache (exact fingerprint hit, else a proved AM6xx
        near-equivalent).  Raises :class:`ServiceError` (400) for specs
        that do not validate or build."""
        from repro.service.fingerprint import spec_config, workload_fingerprint

        try:
            spec = JobSpec.from_doc(doc)
            _, graph, machine, space = spec.build()
            config = spec_config(spec)
            fingerprint = workload_fingerprint(
                graph, machine, config, spec.start_mapping, space=space
            )
        except ValueError as exc:
            raise ServiceError(400, str(exc)) from exc
        self.metrics.counter("service.jobs.submitted").inc()
        if self.cache.lookup(fingerprint) is not None:
            record = self.store.create(
                spec.to_doc(),
                fingerprint,
                state=JobState.DONE,
                cache_hit=True,
                cache_mode="exact",
            )
            _LOG.info(
                "job %s: cache hit for %s (0 simulations)",
                record.job_id,
                fingerprint[:16],
            )
            return record
        record = self._serve_equivalent(
            spec, graph, machine, space, config, fingerprint
        )
        if record is not None:
            return record
        record = self.store.create(spec.to_doc(), fingerprint)
        _LOG.info(
            "job %s: queued %s (fingerprint %s)",
            record.job_id,
            spec.label(),
            fingerprint[:16],
        )
        return record

    def _serve_equivalent(
        self, spec, graph, machine, space, config, fingerprint
    ) -> Optional[JobRecord]:
        """Serve an exact-miss submission from a provably-equivalent
        cached workload, if one exists — zero simulations, result bytes
        pulled back through the proof's relabeling, proof published
        beside the entry."""
        from repro.analysis.equivalence import Workload, pullback_result_doc
        from repro.service.fingerprint import workload_class_key
        from repro.service.result import result_json_bytes
        from repro.service.spec import spec_json_bytes

        try:
            class_key = workload_class_key(
                graph, machine, config, spec.start_mapping, space=space
            )
            target = Workload(
                graph, machine, config, spec.start_mapping, space
            )
        except Exception:  # noqa: BLE001 - equivalence is best-effort
            return None
        found = self.cache.lookup_equivalent(class_key, target, fingerprint)
        if found is None:
            return None
        source_fp, proof = found
        result_bytes = self.cache.read(source_fp, RESULT_FILENAME)
        if result_bytes is None:  # pragma: no cover - entry raced away
            return None
        result = pullback_result_doc(
            json.loads(result_bytes.decode("utf-8")), proof, fingerprint
        )
        proof_doc = dict(proof.to_doc())
        proof_doc["source"] = source_fp
        files = {
            RESULT_FILENAME: result_json_bytes(result),
            "spec.json": spec_json_bytes(spec),
            "proof.json": (
                json.dumps(proof_doc, sort_keys=True, indent=2) + "\n"
            ).encode("utf-8"),
        }
        if not proof.relabel:
            # With no relabeling the workloads are indistinguishable in
            # every artifact — share the trace and run metrics too.
            for name in (TRACE_FILENAME, "metrics.txt"):
                data = self.cache.read(source_fp, name)
                if data is not None:
                    files[name] = data
        self.cache.put(fingerprint, files, class_key=class_key)
        record = self.store.create(
            spec.to_doc(),
            fingerprint,
            state=JobState.DONE,
            cache_hit=True,
            cache_mode="equiv",
        )
        _LOG.info(
            "job %s: equivalent to cached %s — proof-served "
            "(0 simulations)",
            record.job_id,
            source_fp[:16],
        )
        return record

    # ------------------------------------------------------------------
    def job_record(self, job_id: str) -> JobRecord:
        record = self.store.get(job_id)
        if record is None:
            raise ServiceError(404, f"no such job: {job_id}")
        return record

    def artifact(self, job_id: str, name: str) -> Tuple[bytes, str]:
        """The exact stored bytes of one artifact of a finished job."""
        if name not in _ARTIFACTS:
            raise ServiceError(404, f"no such artifact: {name}")
        record = self.job_record(job_id)
        if record.state is JobState.FAILED:
            raise ServiceError(
                409, f"job {job_id} failed: {record.error}"
            )
        if record.state is not JobState.DONE:
            raise ServiceError(
                409, f"job {job_id} is {record.state.value}, not done"
            )
        filename, content_type = _ARTIFACTS[name]
        data = self.cache.read(record.fingerprint, filename)
        if data is None:
            raise ServiceError(
                404, f"job {job_id} has no {name} artifact"
            )
        return data, content_type

    # ------------------------------------------------------------------
    def cache_doc(self) -> dict:
        """The ``GET /cache`` document (entries, sizes, budget)."""
        return {
            "entries": self.cache.entries(),
            "total_bytes": self.cache.total_bytes(),
            "max_bytes": self.cache.max_bytes,
        }

    def metrics_text(self) -> str:
        """Service-level Prometheus exposition, including a live
        job-state histogram and the cache entry count."""
        for state, count in self.store.counts().items():
            self.metrics.gauge(f"service.jobs.state.{state}").set(count)
        self.metrics.gauge("service.cache.entries").set(len(self.cache))
        self.metrics.gauge("service.cache.bytes").set(
            self.cache.total_bytes()
        )
        return to_prometheus_text(self.metrics)


# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    """JSON shim over :class:`MappingService`."""

    server_version = "automap-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> MappingService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # route through our logger
        _LOG.debug("%s %s", self.address_string(), fmt % args)

    # -- helpers -------------------------------------------------------
    def _send(self, status: int, data: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_json(self, status: int, doc) -> None:
        data = (json.dumps(doc, sort_keys=True, indent=2) + "\n").encode()
        self._send(status, data, "application/json")

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    # -- routes --------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path.rstrip("/") != "/jobs":
            self._send_error_json(404, f"no such endpoint: {self.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            try:
                doc = json.loads(self.rfile.read(length) or b"null")
            except json.JSONDecodeError as exc:
                raise ServiceError(400, f"invalid JSON body: {exc}")
            record = self.service.submit(doc)
        except ServiceError as exc:
            self._send_error_json(exc.status, str(exc))
            return
        self._send_json(201, record.to_doc())

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            self._route_get()
        except ServiceError as exc:
            self._send_error_json(exc.status, str(exc))

    def _route_get(self) -> None:
        path = self.path.split("?", 1)[0]
        parts = [p for p in path.split("/") if p]
        if parts == ["healthz"]:
            self._send_json(200, {"status": "ok"})
        elif parts == ["metrics"]:
            self._send(
                200,
                self.service.metrics_text().encode(),
                "text/plain; version=0.0.4",
            )
        elif parts == ["cache"]:
            self._send_json(200, self.service.cache_doc())
        elif parts == ["jobs"]:
            self._send_json(
                200,
                {
                    "jobs": [
                        record.to_doc()
                        for record in self.service.store.list_records()
                    ]
                },
            )
        elif len(parts) == 2 and parts[0] == "jobs":
            self._send_json(200, self.service.job_record(parts[1]).to_doc())
        elif len(parts) == 3 and parts[0] == "jobs":
            data, content_type = self.service.artifact(parts[1], parts[2])
            self._send(200, data, content_type)
        else:
            raise ServiceError(404, f"no such endpoint: {path}")


def make_server(
    service: MappingService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A threading HTTP server bound to ``host:port`` (0 = ephemeral)
    and wired to ``service``.  The caller owns both lifecycles:
    ``service.start()`` before serving, ``service.stop()`` plus
    ``server.shutdown()`` to tear down."""
    server = ThreadingHTTPServer((host, port), _Handler)
    server.service = service  # type: ignore[attr-defined]
    return server
