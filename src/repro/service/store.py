"""The on-disk job store.

One directory per job under ``<root>/jobs/``, with the job's metadata in
``job.json`` and the tuning run's working directory (checkpoint,
profiles, trace) in ``work/``.  Every metadata write is atomic
(:func:`repro.util.serialization.dump_json` — temp file + ``os.replace``)
so a SIGKILL at any instant leaves either the old record or the new one,
never a torn file; crash recovery is therefore a pure read
(:meth:`JobStore.recover_running`) plus the checkpoint machinery the
engine already has.

States move ``submitted -> running -> done | failed``; a cache hit jumps
straight to ``done`` (with ``cache_hit`` set and zero simulations).  The
store is shared between the HTTP threads and the worker loop, so every
mutating method holds one lock; the artifacts themselves are written by
exactly one owner (the worker for fresh runs, the cache populater for
hits) and never rewritten.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from enum import Enum
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.util.serialization import dump_json, load_json

__all__ = ["JOB_FILENAME", "JobRecord", "JobState", "JobStore"]

JOB_FILENAME = "job.json"
_RECORD_FORMAT = "automap-jobrecord-v1"


class JobState(str, Enum):
    SUBMITTED = "submitted"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED)


@dataclass(frozen=True)
class JobRecord:
    """One job's metadata (the ``GET /jobs/<id>`` document)."""

    job_id: str
    spec_doc: dict
    fingerprint: str
    state: JobState = JobState.SUBMITTED
    #: True when the result was served from the content-addressed cache
    #: (and ``simulations`` is therefore zero).
    cache_hit: bool = False
    #: How the cache served it: ``"none"`` (fresh run), ``"exact"``
    #: (fingerprint hit), or ``"equiv"`` (AM6xx near-equivalence proof).
    cache_mode: str = "none"
    #: Simulator executions this job actually paid for.
    simulations: int = 0
    error: Optional[str] = None
    #: How many times the service (re)started this job — 1 for a clean
    #: run, more after crash recovery.
    attempts: int = 0
    created_at: float = field(default_factory=time.time)
    updated_at: float = field(default_factory=time.time)

    def with_(self, **changes) -> "JobRecord":
        changes.setdefault("updated_at", time.time())
        return replace(self, **changes)

    # ------------------------------------------------------------------
    def to_doc(self) -> dict:
        return {
            "format": _RECORD_FORMAT,
            "job_id": self.job_id,
            "spec": self.spec_doc,
            "fingerprint": self.fingerprint,
            "state": self.state.value,
            "cache_hit": self.cache_hit,
            "cache_mode": self.cache_mode,
            "simulations": self.simulations,
            "error": self.error,
            "attempts": self.attempts,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
        }

    @staticmethod
    def from_doc(doc: dict) -> "JobRecord":
        if doc.get("format") != _RECORD_FORMAT:
            raise ValueError(
                f"unsupported job record format {doc.get('format')!r}"
            )
        return JobRecord(
            job_id=doc["job_id"],
            spec_doc=doc["spec"],
            fingerprint=doc["fingerprint"],
            state=JobState(doc["state"]),
            cache_hit=bool(doc.get("cache_hit", False)),
            cache_mode=str(
                doc.get("cache_mode")
                or ("exact" if doc.get("cache_hit") else "none")
            ),
            simulations=int(doc.get("simulations", 0)),
            error=doc.get("error"),
            attempts=int(doc.get("attempts", 0)),
            created_at=float(doc.get("created_at", 0.0)),
            updated_at=float(doc.get("updated_at", 0.0)),
        )


class JobStore:
    """Directory-backed job records with atomic persistence."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._next_id = self._scan_next_id()

    # ------------------------------------------------------------------
    def _scan_next_id(self) -> int:
        """Next job number = max existing + 1 — crash-safe without a
        separate counter file."""
        highest = 0
        for entry in self.jobs_dir.iterdir():
            name = entry.name
            if entry.is_dir() and name.startswith("job-"):
                try:
                    highest = max(highest, int(name[4:]))
                except ValueError:
                    continue
        return highest + 1

    def job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def work_dir(self, job_id: str) -> Path:
        """The tuning run's working directory (checkpoint, trace, ...)."""
        return self.job_dir(job_id) / "work"

    # ------------------------------------------------------------------
    def create(
        self,
        spec_doc: dict,
        fingerprint: str,
        state: JobState = JobState.SUBMITTED,
        cache_hit: bool = False,
        cache_mode: Optional[str] = None,
    ) -> JobRecord:
        with self._lock:
            job_id = f"job-{self._next_id:06d}"
            self._next_id += 1
            record = JobRecord(
                job_id=job_id,
                spec_doc=spec_doc,
                fingerprint=fingerprint,
                state=state,
                cache_hit=cache_hit,
                cache_mode=cache_mode
                or ("exact" if cache_hit else "none"),
            )
            self.job_dir(job_id).mkdir(parents=True)
            self._write(record)
        return record

    def _write(self, record: JobRecord) -> None:
        dump_json(record.to_doc(), self.job_dir(record.job_id) / JOB_FILENAME)

    def update(self, record: JobRecord) -> JobRecord:
        with self._lock:
            self._write(record)
        return record

    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[JobRecord]:
        path = self.job_dir(job_id) / JOB_FILENAME
        if not path.exists():
            return None
        return JobRecord.from_doc(load_json(path))

    def list_ids(self) -> List[str]:
        return sorted(
            entry.name
            for entry in self.jobs_dir.iterdir()
            if entry.is_dir() and (entry / JOB_FILENAME).exists()
        )

    def list_records(self) -> List[JobRecord]:
        records = []
        for job_id in self.list_ids():
            record = self.get(job_id)
            if record is not None:
                records.append(record)
        return records

    # ------------------------------------------------------------------
    def claim_next(self) -> Optional[JobRecord]:
        """Atomically claim the oldest ``submitted`` job (FIFO by job
        number) and mark it ``running``."""
        with self._lock:
            for job_id in sorted(
                entry.name
                for entry in self.jobs_dir.iterdir()
                if entry.is_dir()
            ):
                path = self.job_dir(job_id) / JOB_FILENAME
                if not path.exists():
                    continue
                record = JobRecord.from_doc(load_json(path))
                if record.state is JobState.SUBMITTED:
                    claimed = record.with_(
                        state=JobState.RUNNING,
                        attempts=record.attempts + 1,
                    )
                    self._write(claimed)
                    return claimed
        return None

    def recover_running(self) -> List[JobRecord]:
        """Jobs the previous process died while executing.  Called once
        at startup (before the worker starts) — each is re-queued as
        ``submitted`` so the worker re-claims it and resumes from its
        on-disk checkpoint."""
        recovered = []
        with self._lock:
            for job_id in sorted(
                entry.name
                for entry in self.jobs_dir.iterdir()
                if entry.is_dir()
            ):
                path = self.job_dir(job_id) / JOB_FILENAME
                if not path.exists():
                    continue
                record = JobRecord.from_doc(load_json(path))
                if record.state is JobState.RUNNING:
                    requeued = record.with_(state=JobState.SUBMITTED)
                    self._write(requeued)
                    recovered.append(requeued)
        return recovered

    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Job-state histogram (for ``GET /metrics``)."""
        totals = {state.value: 0 for state in JobState}
        for record in self.list_records():
            totals[record.state.value] += 1
        return totals
