"""Job specifications: the workload a client submits to the service.

A :class:`JobSpec` is the plain-JSON description of one tuning request:
which application (paper app or generator family, with its knobs), which
zoo machine at which node count, and the search configuration.  It is
deliberately the same vocabulary as ``repro tune`` — anything tunable
from the CLI is submittable over HTTP.

Two groups of knobs are distinguished on purpose:

* **semantic** knobs change the tuning *result* (algorithm, seed,
  budget, noise, spill mode, pruning passes, start mapping) and are part
  of the cache fingerprint (:mod:`repro.service.fingerprint`);
* **execution** knobs change only *how* the run is carried out
  (``workers``, ``incremental``, ``checkpoint_every``) — the repository
  contracts (PR 1, PR 3, PR 6; fuzzed per-case by the ``parallel``
  invariant) guarantee bit-identical results across them, so they are
  excluded from the fingerprint and a cached result legitimately serves
  any of them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.apps import APP_REGISTRY, make_app
from repro.machine.builders import MACHINE_ZOO

__all__ = [
    "JobSpec",
    "SEMANTIC_FIELDS",
    "EXECUTION_FIELDS",
    "spec_json_bytes",
]

_FORMAT = "automap-job-v1"

#: Fields that enter the workload fingerprint (via the materialised
#: graph/machine for the app/machine ones, directly for the rest).
SEMANTIC_FIELDS: Tuple[str, ...] = (
    "app",
    "input",
    "gen_params",
    "machine",
    "nodes",
    "machine_params",
    "algorithm",
    "seed",
    "max_suggestions",
    "noise_sigma",
    "spill",
    "static_prune",
    "bound_prune",
    "start_mapping",
)

#: Result-preserving execution knobs (never fingerprinted).
EXECUTION_FIELDS: Tuple[str, ...] = (
    "workers",
    "incremental",
    "checkpoint_every",
)

_ALGORITHMS = ("ccd", "cd", "opentuner", "random")


@dataclass(frozen=True)
class JobSpec:
    """One submittable tuning workload."""

    app: str
    #: Paper-style input label (``None`` keeps the app defaults).
    input: Optional[str] = None
    #: Generator-family constructor knobs (``--gen-param`` equivalents).
    gen_params: Dict[str, object] = field(default_factory=dict)
    machine: str = "shepard"
    nodes: int = 1
    #: Declarative overrides applied to the zoo machine (see
    #: :func:`repro.machine.overrides.apply_machine_params`) — semantic:
    #: they change the materialised machine and thus the fingerprint,
    #: though the AM6xx equivalence prover may still serve a cached
    #: result when the overrides are provably unobservable.
    machine_params: Dict[str, object] = field(default_factory=dict)
    algorithm: str = "ccd"
    seed: int = 0
    max_suggestions: int = 20_000
    noise_sigma: float = 0.04
    spill: bool = True
    static_prune: bool = True
    bound_prune: bool = True
    #: Optional starting mapping (a ``kinds`` document as produced by
    #: :func:`repro.mapping.io.mapping_to_doc`); canonicalized before
    #: both fingerprinting and tuning, so canonically-equivalent starts
    #: are one workload.
    start_mapping: Optional[dict] = None
    # ------------------------------------------------------------ (exec)
    workers: int = 1
    incremental: bool = True
    checkpoint_every: int = 10

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if self.app not in APP_REGISTRY:
            raise ValueError(
                f"unknown application {self.app!r}; "
                f"choose from {sorted(APP_REGISTRY)}"
            )
        if self.machine not in MACHINE_ZOO:
            raise ValueError(
                f"unknown machine {self.machine!r}; "
                f"choose from {sorted(MACHINE_ZOO)}"
            )
        if self.algorithm not in _ALGORITHMS:
            raise ValueError(
                f"unknown search algorithm {self.algorithm!r}; "
                f"choose from {sorted(_ALGORITHMS)}"
            )
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if not isinstance(self.machine_params, dict):
            raise ValueError("machine_params must be an object")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_suggestions < 1:
            raise ValueError("max_suggestions must be >= 1")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")

    # ------------------------------------------------------------------
    def to_doc(self) -> dict:
        """The normalized JSON form (every field explicit)."""
        return {
            "format": _FORMAT,
            "app": self.app,
            "input": self.input,
            "gen_params": dict(self.gen_params),
            "machine": self.machine,
            "nodes": self.nodes,
            "machine_params": dict(self.machine_params),
            "algorithm": self.algorithm,
            "seed": self.seed,
            "max_suggestions": self.max_suggestions,
            "noise_sigma": self.noise_sigma,
            "spill": self.spill,
            "static_prune": self.static_prune,
            "bound_prune": self.bound_prune,
            "start_mapping": self.start_mapping,
            "workers": self.workers,
            "incremental": self.incremental,
            "checkpoint_every": self.checkpoint_every,
        }

    @staticmethod
    def from_doc(doc: dict) -> "JobSpec":
        """Parse a client-submitted document.  Unknown keys are an
        error (they would otherwise silently not do what the client
        asked); the ``format`` marker is optional on input."""
        if not isinstance(doc, dict):
            raise ValueError("job spec must be a JSON object")
        known = set(SEMANTIC_FIELDS) | set(EXECUTION_FIELDS) | {"format"}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(f"unknown job-spec field(s): {unknown}")
        fmt = doc.get("format", _FORMAT)
        if fmt != _FORMAT:
            raise ValueError(f"unsupported job-spec format {fmt!r}")
        if "app" not in doc:
            raise ValueError("job spec requires an 'app' field")
        gen_params = doc.get("gen_params") or {}
        if not isinstance(gen_params, dict):
            raise ValueError("gen_params must be an object")
        start = doc.get("start_mapping")
        if start is not None and not isinstance(start, dict):
            raise ValueError("start_mapping must be a 'kinds' object")
        machine_params = doc.get("machine_params") or {}
        if not isinstance(machine_params, dict):
            raise ValueError("machine_params must be an object")
        try:
            return JobSpec(
                app=str(doc["app"]),
                input=(
                    None if doc.get("input") is None else str(doc["input"])
                ),
                gen_params=dict(gen_params),
                machine=str(doc.get("machine", "shepard")),
                nodes=int(doc.get("nodes", 1)),
                machine_params=dict(machine_params),
                algorithm=str(doc.get("algorithm", "ccd")),
                seed=int(doc.get("seed", 0)),
                max_suggestions=int(doc.get("max_suggestions", 20_000)),
                noise_sigma=float(doc.get("noise_sigma", 0.04)),
                spill=bool(doc.get("spill", True)),
                static_prune=bool(doc.get("static_prune", True)),
                bound_prune=bool(doc.get("bound_prune", True)),
                start_mapping=start,
                workers=int(doc.get("workers", 1)),
                incremental=bool(doc.get("incremental", True)),
                checkpoint_every=int(doc.get("checkpoint_every", 10)),
            )
        except (TypeError, KeyError) as exc:
            raise ValueError(f"malformed job spec: {exc}") from exc

    def with_(self, **changes) -> "JobSpec":
        return replace(self, **changes)

    # ------------------------------------------------------------------
    def build(self):
        """Materialise (app, graph, machine, space).

        Raises ``ValueError`` for labels/knobs the registries reject —
        the HTTP layer turns that into a 400 at submit time, before the
        job is ever queued.
        """
        from repro.cli import parse_app_input

        factory = MACHINE_ZOO[self.machine]
        machine = factory(self.nodes)
        if self.machine_params:
            from repro.machine.overrides import apply_machine_params

            machine = apply_machine_params(machine, self.machine_params)
        try:
            kwargs = parse_app_input(self.app, self.input)
        except SystemExit as exc:  # parse_app_input raises SystemExit
            raise ValueError(str(exc)) from None
        kwargs.update(self.gen_params)
        try:
            app = make_app(self.app, **kwargs)
        except TypeError as exc:
            raise ValueError(str(exc)) from None
        return app, app.graph(machine), machine, app.space(machine)

    def label(self) -> str:
        params = ",".join(
            f"{k}={v}" for k, v in sorted(self.gen_params.items())
        )
        detail = self.input or params or "defaults"
        return (
            f"{self.app}({detail}) on {self.machine}({self.nodes}) "
            f"{self.algorithm}/seed={self.seed}"
        )


def spec_json_bytes(spec: JobSpec) -> bytes:
    """The canonical on-disk encoding of a spec (``spec.json`` in cache
    entries — what the near-equivalence prover rebuilds workloads from)."""
    return (
        json.dumps(spec.to_doc(), sort_keys=True, indent=2) + "\n"
    ).encode("utf-8")
