"""The content-addressed workload fingerprint.

A cache key for tuning results must identify the *workload*, not the
submission: two requests that provably run the same tune have to hash
identically, and any request that could produce a different result
document must not.  The fingerprint therefore hashes the canonical JSON
of four components:

1. the **materialised task graph** (kinds, slots, launches, collections,
   dependences) — so a generator knob spelled explicitly at its default
   value hashes like the omitted knob, and textual re-orderings of the
   submitted spec are invisible;
2. the **materialised machine** (processors, memories, access links,
   channels) plus the space's fixed decisions;
3. the **semantic search configuration** (algorithm, seed, budget,
   noise, spill, pruning passes) — execution knobs with a bit-identity
   contract (``workers``, ``incremental``, ``checkpoint_every``) are
   deliberately excluded: serial/parallel (PR 1), checkpointed (PR 3)
   and incremental/full (PR 6) runs return byte-identical results, a
   contract the ``parallel`` fuzz invariant re-checks per case;
4. the **canonicalized start mapping**:
   :class:`repro.analysis.canonical.Canonicalizer` folds provably
   unobservable choices (dead distribute bits, zero-byte memory
   choices) and machine-symmetry relabelings onto orbit minima, so
   canonically-equivalent starts are one cache entry.  The worker runs
   the job from the same canonical start, keeping the cached result
   valid for every member of the equivalence class.

JSON canonicalisation is ``sort_keys=True`` with compact separators —
key order in the client's submission can never split the cache.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Optional

from repro.util.serialization import to_jsonable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.model import Machine
    from repro.mapping.space import SearchSpace
    from repro.service.spec import JobSpec
    from repro.taskgraph.graph import TaskGraph

__all__ = [
    "FINGERPRINT_FORMAT",
    "CLASS_KEY_FORMAT",
    "canonical_graph_doc",
    "canonical_machine_doc",
    "canonical_start_doc",
    "workload_fingerprint",
    "workload_class_key",
    "spec_config",
    "spec_fingerprint",
]

#: Version marker hashed into every fingerprint; bump when the result
#: document or the engine's deterministic contract changes shape, which
#: invalidates every previously cached entry at once.
FINGERPRINT_FORMAT = "automap-workload-v1"

#: Version marker of the *erased* (equivalence-class) key; bump together
#: with any change to the AM6xx prover's lemmas.
CLASS_KEY_FORMAT = "automap-workload-class-v1"


def canonical_graph_doc(graph: "TaskGraph") -> dict:
    """The graph's structural identity: everything the simulator and
    the search can observe, nothing else."""
    return {
        "name": graph.name,
        "launches": [to_jsonable(launch) for launch in graph.launches],
        "dependences": [to_jsonable(dep) for dep in graph.dependences],
    }


def canonical_machine_doc(machine: "Machine") -> dict:
    """The machine's structural identity (a plain dataclass tree)."""
    return to_jsonable(machine)


def canonical_start_doc(
    graph: "TaskGraph",
    machine: "Machine",
    start_doc: Optional[dict],
) -> Optional[dict]:
    """The canonical representative of a submitted start mapping, as a
    ``kinds`` document — or ``None`` when no start was given.

    Uses the :mod:`repro.analysis` canonicalizer, so any two starts in
    the same provable runtime-equivalence class (folded dead distribute
    bits, folded zero-byte memory choices, machine-symmetry relabelings)
    collapse onto one document."""
    if start_doc is None:
        return None
    from repro.analysis.canonical import Canonicalizer
    from repro.mapping.io import mapping_from_doc, mapping_to_doc

    canon = Canonicalizer(graph, machine)
    return mapping_to_doc(canon.canonical(mapping_from_doc(start_doc)))


def _canonical_json(doc) -> str:
    return json.dumps(
        to_jsonable(doc), sort_keys=True, separators=(",", ":")
    )


def workload_fingerprint(
    graph: "TaskGraph",
    machine: "Machine",
    config: dict,
    start_doc: Optional[dict] = None,
    space: Optional["SearchSpace"] = None,
) -> str:
    """The hex SHA-256 fingerprint of one workload.

    ``config`` holds the semantic search knobs (already normalized —
    see :data:`repro.service.spec.SEMANTIC_FIELDS`); ``start_doc`` the
    raw submitted start mapping (canonicalized here); ``space`` the
    app-provided search space, whose ``fixed_decisions`` restriction is
    part of the workload identity (the graph and machine alone do not
    record it).
    """
    doc = {
        "format": FINGERPRINT_FORMAT,
        "graph": canonical_graph_doc(graph),
        "machine": canonical_machine_doc(machine),
        "config": dict(config),
        "start": canonical_start_doc(graph, machine, start_doc),
        "fixed_decisions": (
            None if space is None else to_jsonable(space.fixed_decisions)
        ),
    }
    return hashlib.sha256(_canonical_json(doc).encode()).hexdigest()


def workload_class_key(
    graph: "TaskGraph",
    machine: "Machine",
    config: dict,
    start_doc: Optional[dict] = None,
    space: Optional["SearchSpace"] = None,
) -> str:
    """The *erased* fingerprint grouping near-equivalent workloads.

    Hashes the same components as :func:`workload_fingerprint` after
    erasing everything the AM6xx prover (:mod:`repro.analysis
    .equivalence`) can prove immaterial: names are dropped, touchable
    memories' capacities are clamped to ``min(capacity, U(m))`` (the
    static footprint bound), and the parameters of unreachable
    processors, their access links, and off-route channels are blanked.
    Two provably-equivalent workloads therefore hash identically — but
    not conversely: the key only *narrows* the candidate walk, and the
    full prover re-checks every candidate, so a collision costs a proof
    attempt, never soundness.
    """
    from repro.analysis.equivalence import (
        footprint_bounds,
        graph_body_doc,
        touchable_resources,
    )
    from repro.analysis.routing import channel_key

    if space is None:
        from repro.mapping.space import SearchSpace

        space = SearchSpace(graph, machine)
    bounds = footprint_bounds(graph, machine, space)
    touch = touchable_resources(graph, machine, space)

    machine_doc = to_jsonable(machine)
    machine_doc["name"] = None
    proc_kind = {p.uid: p.kind for p in machine.processors}
    for proc in machine_doc["processors"]:
        if proc_kind[proc["uid"]] not in touch.proc_kinds:
            proc["throughput"] = None
            proc["launch_overhead"] = None
    for mem in machine_doc["memories"]:
        mem["capacity"] = min(
            mem["capacity"], bounds.get(mem["uid"], 0)
        )
    for link in machine_doc["access_links"]:
        if proc_kind[link["proc"]] not in touch.proc_kinds:
            link["bandwidth"] = None
            link["latency"] = None
    for chan in machine_doc["channels"]:
        if channel_key(chan["mem_a"], chan["mem_b"]) not in (
            touch.channel_keys
        ):
            chan["bandwidth"] = None
            chan["latency"] = None

    graph_doc = graph_body_doc(graph)
    doc = {
        "format": CLASS_KEY_FORMAT,
        "graph": graph_doc,
        "machine": machine_doc,
        "config": dict(config),
        "start": canonical_start_doc(graph, machine, start_doc),
        "fixed_decisions": to_jsonable(space.fixed_decisions),
    }
    return hashlib.sha256(_canonical_json(doc).encode()).hexdigest()


def spec_config(spec: "JobSpec") -> dict:
    """The semantic search-configuration dict of a spec — the ``config``
    component both fingerprints hash and the prover compares."""
    return {
        "algorithm": spec.algorithm,
        "seed": spec.seed,
        "max_suggestions": spec.max_suggestions,
        "noise_sigma": spec.noise_sigma,
        "spill": spec.spill,
        "static_prune": spec.static_prune,
        "bound_prune": spec.bound_prune,
    }


def spec_fingerprint(spec: "JobSpec") -> str:
    """Materialise a :class:`~repro.service.spec.JobSpec` and fingerprint
    it.  Raises ``ValueError`` for specs that cannot build."""
    _, graph, machine, space = spec.build()
    return workload_fingerprint(
        graph, machine, spec_config(spec), spec.start_mapping, space=space
    )
