"""The background worker loop.

One or more daemon threads drain the job store FIFO: claim the oldest
``submitted`` job (an atomic claim-and-mark, so concurrent workers never
double-claim), run it through :class:`repro.core.AutoMapSession`
(which drives the stateless engine with the full checkpoint/observability
stack), publish the deterministic artifacts into the result cache, and
mark the job ``done`` — or ``failed`` with the error message.

Crash recovery is the whole point of the layering: the job's working
directory lives inside the job directory, the engine checkpoints into it
periodically, and :meth:`JobWorker.execute` resumes from that checkpoint
whenever one exists.  A service killed mid-job and restarted therefore
finishes the job with a **bit-identical** result document — the PR-3
replay contract, promoted to job level — which the CI service-smoke gate
asserts by SIGKILLing a live server.

Jobs run with telemetry off (wall-clock lines would make reruns differ
on disk) and tracing on (the ``/jobs/<id>/trace`` endpoint is
unconditional; tracing is observational and cannot change the result).
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.core.oracle import OracleConfig
from repro.core.session import AutoMapSession
from repro.obs.metrics import MetricsRegistry, to_prometheus_text
from repro.obs.trace import TRACE_FILENAME
from repro.resilience.checkpoint import CHECKPOINT_FILENAME
from repro.runtime.simulator import SimConfig
from repro.service.cache import ResultCache
from repro.service.fingerprint import (
    canonical_start_doc,
    spec_config,
    workload_class_key,
)
from repro.service.result import RESULT_FILENAME, result_doc, result_json_bytes
from repro.service.spec import JobSpec, spec_json_bytes
from repro.service.store import JobRecord, JobState, JobStore
from repro.util.logging import get_logger

__all__ = ["JobWorker"]

_LOG = get_logger("service.worker")


class JobWorker(threading.Thread):
    """Daemon thread executing queued jobs one at a time.

    A service may run several workers (``repro serve --workers N``):
    each claims jobs through :meth:`JobStore.claim_next`, which is a
    single atomic claim-and-mark under the store lock, so no job is ever
    executed twice.  Crash recovery stays trivial — a recovered
    ``running`` job simply re-queues and resumes from its checkpoint,
    whichever worker claims it.
    """

    def __init__(
        self,
        store: JobStore,
        cache: ResultCache,
        metrics: Optional[MetricsRegistry] = None,
        poll_interval: float = 0.05,
        index: int = 0,
    ) -> None:
        super().__init__(name=f"automap-job-worker-{index}", daemon=True)
        self.index = index
        self.store = store
        self.cache = cache
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.poll_interval = poll_interval
        # (named to dodge threading.Thread's private ``_stop`` method)
        self._stop_requested = threading.Event()

    # ------------------------------------------------------------------
    def stop(self) -> None:
        self._stop_requested.set()

    def run(self) -> None:  # pragma: no cover - exercised via service
        while not self._stop_requested.is_set():
            record = self.store.claim_next()
            if record is None:
                self._stop_requested.wait(self.poll_interval)
                continue
            self.execute(record)

    # ------------------------------------------------------------------
    def execute(self, record: JobRecord) -> JobRecord:
        """Run one claimed job to completion (resuming if a checkpoint
        exists) and persist the outcome."""
        try:
            finished = self._run_job(record)
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            _LOG.warning("job %s failed: %s", record.job_id, exc)
            self.metrics.counter("service.jobs.failed").inc()
            finished = record.with_(
                state=JobState.FAILED,
                error=f"{type(exc).__name__}: {exc}",
            )
        return self.store.update(finished)

    def _run_job(self, record: JobRecord) -> JobRecord:
        spec = JobSpec.from_doc(record.spec_doc)
        _, graph, machine, space = spec.build()
        workdir = self.store.work_dir(record.job_id)
        resume = (workdir / CHECKPOINT_FILENAME).exists()
        if resume:
            _LOG.info(
                "job %s: resuming from checkpoint (attempt %d)",
                record.job_id,
                record.attempts,
            )
            self.metrics.counter("service.jobs.resumed").inc()

        session = AutoMapSession(
            graph,
            machine,
            algorithm=spec.algorithm,
            workdir=workdir,
            oracle_config=OracleConfig(max_suggestions=spec.max_suggestions),
            sim_config=SimConfig(
                noise_sigma=spec.noise_sigma,
                seed=spec.seed,
                spill=spec.spill,
                incremental=spec.incremental,
            ),
            seed=spec.seed,
            space=space,
            workers=spec.workers,
            static_prune=spec.static_prune,
            bound_prune=spec.bound_prune,
            checkpoint_every=spec.checkpoint_every,
            resume=resume,
            trace=True,
            telemetry=False,
        )
        start = None
        if spec.start_mapping is not None:
            from repro.mapping.io import mapping_from_doc

            # Tune from the canonical representative, so the cached
            # result is valid for the whole equivalence class the
            # fingerprint collapses (see repro.service.fingerprint).
            start = mapping_from_doc(
                canonical_start_doc(graph, machine, spec.start_mapping)
            )
        report = session.tune(start=start)

        files = {
            RESULT_FILENAME: result_json_bytes(
                result_doc(report, fingerprint=record.fingerprint)
            )
        }
        trace_path = workdir / TRACE_FILENAME
        if trace_path.exists():
            files[TRACE_FILENAME] = trace_path.read_bytes()
        if report.metrics is not None:
            files["metrics.txt"] = to_prometheus_text(report.metrics).encode(
                "utf-8"
            )
        # The spec rides along so the near-equivalence prover can rebuild
        # this entry's workload as a candidate; the class key indexes it.
        files["spec.json"] = spec_json_bytes(spec)
        try:
            class_key = workload_class_key(
                graph,
                machine,
                spec_config(spec),
                spec.start_mapping,
                space=space,
            )
        except Exception:  # noqa: BLE001 - class index is best-effort
            class_key = None
        self.cache.put(record.fingerprint, files, class_key=class_key)

        self.metrics.counter("service.jobs.completed").inc()
        self.metrics.counter("service.simulations").inc(report.simulations)
        _LOG.info(
            "job %s done: best %.6g over %d simulations",
            record.job_id,
            report.best_mean,
            report.simulations,
        )
        return record.with_(
            state=JobState.DONE, simulations=report.simulations
        )
