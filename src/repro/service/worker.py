"""The background worker loop.

A single daemon thread drains the job store FIFO: claim the oldest
``submitted`` job, run it through :class:`repro.core.AutoMapSession`
(which drives the stateless engine with the full checkpoint/observability
stack), publish the deterministic artifacts into the result cache, and
mark the job ``done`` — or ``failed`` with the error message.

Crash recovery is the whole point of the layering: the job's working
directory lives inside the job directory, the engine checkpoints into it
periodically, and :meth:`JobWorker.execute` resumes from that checkpoint
whenever one exists.  A service killed mid-job and restarted therefore
finishes the job with a **bit-identical** result document — the PR-3
replay contract, promoted to job level — which the CI service-smoke gate
asserts by SIGKILLing a live server.

Jobs run with telemetry off (wall-clock lines would make reruns differ
on disk) and tracing on (the ``/jobs/<id>/trace`` endpoint is
unconditional; tracing is observational and cannot change the result).
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.core.oracle import OracleConfig
from repro.core.session import AutoMapSession
from repro.obs.metrics import MetricsRegistry, to_prometheus_text
from repro.obs.trace import TRACE_FILENAME
from repro.resilience.checkpoint import CHECKPOINT_FILENAME
from repro.runtime.simulator import SimConfig
from repro.service.cache import ResultCache
from repro.service.fingerprint import canonical_start_doc
from repro.service.result import RESULT_FILENAME, result_doc, result_json_bytes
from repro.service.spec import JobSpec
from repro.service.store import JobRecord, JobState, JobStore
from repro.util.logging import get_logger

__all__ = ["JobWorker"]

_LOG = get_logger("service.worker")


class JobWorker(threading.Thread):
    """Daemon thread executing queued jobs one at a time.

    One worker per service: intra-job parallelism comes from the job's
    own ``workers`` knob (the engine's process pool), and keeping the
    queue serial keeps crash recovery trivial — at most one job can ever
    be ``running``.
    """

    def __init__(
        self,
        store: JobStore,
        cache: ResultCache,
        metrics: Optional[MetricsRegistry] = None,
        poll_interval: float = 0.05,
    ) -> None:
        super().__init__(name="automap-job-worker", daemon=True)
        self.store = store
        self.cache = cache
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.poll_interval = poll_interval
        # (named to dodge threading.Thread's private ``_stop`` method)
        self._stop_requested = threading.Event()

    # ------------------------------------------------------------------
    def stop(self) -> None:
        self._stop_requested.set()

    def run(self) -> None:  # pragma: no cover - exercised via service
        while not self._stop_requested.is_set():
            record = self.store.claim_next()
            if record is None:
                self._stop_requested.wait(self.poll_interval)
                continue
            self.execute(record)

    # ------------------------------------------------------------------
    def execute(self, record: JobRecord) -> JobRecord:
        """Run one claimed job to completion (resuming if a checkpoint
        exists) and persist the outcome."""
        try:
            finished = self._run_job(record)
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            _LOG.warning("job %s failed: %s", record.job_id, exc)
            self.metrics.counter("service.jobs.failed").inc()
            finished = record.with_(
                state=JobState.FAILED,
                error=f"{type(exc).__name__}: {exc}",
            )
        return self.store.update(finished)

    def _run_job(self, record: JobRecord) -> JobRecord:
        spec = JobSpec.from_doc(record.spec_doc)
        _, graph, machine, space = spec.build()
        workdir = self.store.work_dir(record.job_id)
        resume = (workdir / CHECKPOINT_FILENAME).exists()
        if resume:
            _LOG.info(
                "job %s: resuming from checkpoint (attempt %d)",
                record.job_id,
                record.attempts,
            )
            self.metrics.counter("service.jobs.resumed").inc()

        session = AutoMapSession(
            graph,
            machine,
            algorithm=spec.algorithm,
            workdir=workdir,
            oracle_config=OracleConfig(max_suggestions=spec.max_suggestions),
            sim_config=SimConfig(
                noise_sigma=spec.noise_sigma,
                seed=spec.seed,
                spill=spec.spill,
                incremental=spec.incremental,
            ),
            seed=spec.seed,
            space=space,
            workers=spec.workers,
            static_prune=spec.static_prune,
            bound_prune=spec.bound_prune,
            checkpoint_every=spec.checkpoint_every,
            resume=resume,
            trace=True,
            telemetry=False,
        )
        start = None
        if spec.start_mapping is not None:
            from repro.mapping.io import mapping_from_doc

            # Tune from the canonical representative, so the cached
            # result is valid for the whole equivalence class the
            # fingerprint collapses (see repro.service.fingerprint).
            start = mapping_from_doc(
                canonical_start_doc(graph, machine, spec.start_mapping)
            )
        report = session.tune(start=start)

        files = {
            RESULT_FILENAME: result_json_bytes(
                result_doc(report, fingerprint=record.fingerprint)
            )
        }
        trace_path = workdir / TRACE_FILENAME
        if trace_path.exists():
            files[TRACE_FILENAME] = trace_path.read_bytes()
        if report.metrics is not None:
            files["metrics.txt"] = to_prometheus_text(report.metrics).encode(
                "utf-8"
            )
        self.cache.put(record.fingerprint, files)

        self.metrics.counter("service.jobs.completed").inc()
        self.metrics.counter("service.simulations").inc(report.simulations)
        _LOG.info(
            "job %s done: best %.6g over %d simulations",
            record.job_id,
            report.best_mean,
            report.simulations,
        )
        return record.with_(
            state=JobState.DONE, simulations=report.simulations
        )
