"""The deterministic result document served by ``GET /jobs/<id>/report``.

``report.txt`` (the human summary) is *not* deterministic across
execution modes: it prints wall-clock telemetry and resume/checkpoint
counters that legitimately differ between an uninterrupted run and a
killed-and-resumed one.  The service's contractual artifact is therefore
``result.json``, built from exactly the fields the resilience replay
contract guarantees bit-identical — the same field list the fuzz
harness's resume and parallel invariants compare:

``best_mapping``, ``best_mean``, ``best_stddev``, the best-so-far search
``trace``, ``suggested`` / ``evaluated`` / ``invalid_suggestions`` /
``failed_evaluations``, ``search_seconds`` (the *simulated* search
clock), and the ``finalists`` table.

Everything outside that list (simulation counts, wall seconds, worker
recovery stats) varies with ``workers`` / ``incremental`` / checkpoint
placement and is reported per-job via ``GET /jobs/<id>`` instead — it
must never leak into the cached artifact, or a cache hit could not be
byte-identical to a recomputation.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Optional

from repro.util.serialization import to_jsonable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import TuningReport

__all__ = [
    "RESULT_FILENAME",
    "RESULT_FORMAT",
    "result_doc",
    "result_json_bytes",
]

RESULT_FORMAT = "automap-result-v1"
RESULT_FILENAME = "result.json"


def result_doc(
    report: "TuningReport", fingerprint: Optional[str] = None
) -> dict:
    """The deterministic JSON document for one tuning report."""
    from repro.mapping.io import mapping_to_doc

    return {
        "format": RESULT_FORMAT,
        "fingerprint": fingerprint,
        "application": report.application,
        "machine": report.machine_name,
        "algorithm": report.algorithm,
        "best_mapping": (
            None
            if report.best_mapping is None
            else mapping_to_doc(report.best_mapping)
        ),
        "best_mean": report.best_mean,
        "best_stddev": report.best_stddev,
        "search_seconds": report.search_seconds,
        "suggested": report.suggested,
        "evaluated": report.evaluated,
        "invalid_suggestions": report.invalid_suggestions,
        "failed_evaluations": report.failed_evaluations,
        "trace": [
            {
                "elapsed": point.elapsed,
                "evaluations": point.evaluations,
                "suggested": point.suggested,
                "best_performance": point.best_performance,
            }
            for point in report.search.trace
        ],
        "finalists": [
            {
                "mapping": mapping_to_doc(mapping),
                "mean": mean,
                "stddev": stddev,
                "runs": runs,
            }
            for mapping, mean, stddev, runs in report.finalists
        ],
    }


def result_json_bytes(doc: dict) -> bytes:
    """Canonical byte encoding of a result document.

    Sorted keys, fixed separators, trailing newline — the exact bytes
    are the cache artifact and the byte-identity contract, so there is
    one encoder and everything (worker, cache, tests, CI smoke) goes
    through it."""
    return (
        json.dumps(to_jsonable(doc), sort_keys=True, indent=2) + "\n"
    ).encode("utf-8")
