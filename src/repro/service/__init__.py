"""Mapping as a service (:mod:`repro.service`).

The ROADMAP north-star is a production service answering repeated
mapping queries at scale; this package puts a job API and a
content-addressed result cache on top of the stateless
:class:`repro.core.engine.TuningEngine`:

- :mod:`~repro.service.spec` — :class:`JobSpec`, the serialisable
  workload description (application + machine + search config) a client
  submits;
- :mod:`~repro.service.fingerprint` — the canonical workload
  fingerprint: two submissions that provably request the same tune hash
  to the same key (reordered JSON keys, defaulted-vs-explicit knobs,
  canonically-equivalent start mappings);
- :mod:`~repro.service.store` — the on-disk job store
  (submitted/running/done/failed, atomic JSON persistence);
- :mod:`~repro.service.cache` — the content-addressed result cache:
  a fingerprint hit serves the stored artifacts byte-identically with
  zero new simulations; a coarse class index plus the AM6xx prover
  (:mod:`repro.analysis.equivalence`) also serves *near*-equivalent
  submissions (provable capacity slack, unreachable-resource slack,
  verified relabelings) with zero simulations, and an optional
  ``max_bytes`` budget evicts least-recently-used entries atomically;
- :mod:`~repro.service.result` — the deterministic result document
  (exactly the fields the resilience contract guarantees bit-identical
  across kill/resume and serial/parallel/incremental modes);
- :mod:`~repro.service.worker` — the background worker loop, including
  crash recovery: jobs found ``running`` at startup resume from their
  checkpoint bit-identically (the PR-3 contract, now job-level);
- :mod:`~repro.service.http` — the stdlib HTTP front-end
  (``POST /jobs``, ``GET /jobs/<id>``, ``GET /jobs/<id>/report|trace|
  metrics``, ``GET /cache``, ``GET /metrics`` Prometheus text,
  ``GET /healthz``).
"""

from repro.service.cache import ResultCache
from repro.service.fingerprint import (
    canonical_graph_doc,
    canonical_machine_doc,
    spec_config,
    workload_class_key,
    workload_fingerprint,
)
from repro.service.http import MappingService, make_server
from repro.service.result import result_doc, result_json_bytes
from repro.service.spec import JobSpec, spec_json_bytes
from repro.service.store import JobRecord, JobState, JobStore
from repro.service.worker import JobWorker

__all__ = [
    "JobSpec",
    "JobRecord",
    "JobState",
    "JobStore",
    "JobWorker",
    "MappingService",
    "ResultCache",
    "canonical_graph_doc",
    "canonical_machine_doc",
    "make_server",
    "result_doc",
    "result_json_bytes",
    "spec_config",
    "spec_json_bytes",
    "workload_class_key",
    "workload_fingerprint",
]
