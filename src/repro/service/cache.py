"""The content-addressed result cache.

One directory per workload fingerprint under ``<root>/cache/``, holding
the finished run's artifacts (``result.json``, ``trace.json``,
``metrics.txt``) plus service metadata: the submitted job spec
(``spec.json``, what the near-equivalence prover rebuilds candidate
workloads from), the equivalence proof log (``proof.json``, present on
entries published through the prover), a reverse class pointer
(``class.txt``) and an LRU timestamp (``.atime``).  A resubmitted
equivalent workload — same fingerprint, see
:mod:`repro.service.fingerprint` — is served from here with **zero** new
simulations and byte-for-byte the stored artifacts: a hit does not
re-encode anything, it hands back the files the original run wrote.

Beside the exact-fingerprint index lives a coarse one:
``<root>/classes/<class_key>/<fingerprint>`` marker files group entries
by :func:`repro.service.fingerprint.workload_class_key`, the erased
fingerprint that is invariant under everything the AM6xx prover can
prove immaterial.  On an exact miss the service walks the class's
candidates and runs the full prover against each — the class key only
narrows the search, the proof carries the soundness.

Population is atomic: artifacts are staged into a temp directory next to
the final one and published with a single ``os.replace`` rename, so a
concurrent reader sees either no entry or a complete entry.  Losing the
race to another populater is fine — both wrote the same content-addressed
bytes (the determinism contract), so the survivor is interchangeable.
Eviction is atomic the same way in reverse: the entry is renamed out of
the cache directory first, then deleted, so readers never see a partial
entry.  With ``max_bytes`` set, every publish evicts
least-recently-used entries (by ``.atime``, touched on every lookup and
read) until the cache fits.

Hit/miss/store/eviction counters go through the service's
:class:`repro.obs.metrics.MetricsRegistry` and out the Prometheus text
endpoint.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry

__all__ = ["CACHE_ARTIFACTS", "ResultCache"]

#: Artifact filenames a complete cache entry holds; ``result.json`` is
#: mandatory (the deterministic report), the others best-effort.
CACHE_ARTIFACTS = ("result.json", "trace.json", "metrics.txt")

#: Service-metadata filenames riding along in an entry.
_ATIME = ".atime"
_CLASS = "class.txt"


class ResultCache:
    """Fingerprint-keyed store of finished tuning artifacts."""

    def __init__(
        self,
        root: Union[str, Path],
        metrics: Optional[MetricsRegistry] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        self.root = Path(root)
        self.cache_dir = self.root / "cache"
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.classes_dir = self.root / "classes"
        self.max_bytes = max_bytes
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # ------------------------------------------------------------------
    def entry_dir(self, fingerprint: str) -> Path:
        return self.cache_dir / fingerprint

    def _touch(self, entry: Path) -> None:
        try:
            (entry / _ATIME).write_text(f"{time.time():.6f}\n")
        except OSError:  # pragma: no cover - entry raced away
            pass

    def _atime(self, entry: Path) -> float:
        try:
            return float((entry / _ATIME).read_text().strip())
        except (OSError, ValueError):
            try:
                return entry.stat().st_mtime
            except OSError:  # pragma: no cover - entry raced away
                return 0.0

    def lookup(self, fingerprint: str) -> Optional[Path]:
        """The entry directory on a hit, ``None`` on a miss — counting
        either way."""
        entry = self.entry_dir(fingerprint)
        if (entry / "result.json").exists():
            self.metrics.counter("service.cache.hits").inc()
            self._touch(entry)
            return entry
        self.metrics.counter("service.cache.misses").inc()
        return None

    def contains(self, fingerprint: str) -> bool:
        """A metrics-silent probe (used by status endpoints)."""
        return (self.entry_dir(fingerprint) / "result.json").exists()

    # ------------------------------------------------------------------
    def put(
        self,
        fingerprint: str,
        files: Dict[str, bytes],
        class_key: Optional[str] = None,
    ) -> Path:
        """Publish a complete entry atomically.

        ``files`` maps artifact name to exact bytes; ``result.json`` is
        required.  An existing entry is kept (first writer wins — the
        bytes are content-addressed, so identical by contract).  With a
        ``class_key`` the entry is additionally indexed for
        near-equivalence candidate lookup.
        """
        if "result.json" not in files:
            raise ValueError("a cache entry requires result.json")
        entry = self.entry_dir(fingerprint)
        if (entry / "result.json").exists():
            if class_key is not None:
                self._mark_class(class_key, fingerprint)
            return entry
        staging = tempfile.mkdtemp(
            prefix=f".{fingerprint[:16]}-", dir=self.cache_dir
        )
        try:
            for name, data in files.items():
                (Path(staging) / name).write_bytes(data)
            if class_key is not None:
                (Path(staging) / _CLASS).write_text(class_key + "\n")
            (Path(staging) / _ATIME).write_text(f"{time.time():.6f}\n")
            try:
                os.replace(staging, entry)
            except OSError:
                # Lost the publish race (entry now exists): keep theirs.
                shutil.rmtree(staging, ignore_errors=True)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        if class_key is not None:
            self._mark_class(class_key, fingerprint)
        self.metrics.counter("service.cache.stores").inc()
        self._evict_lru(keep=fingerprint)
        return entry

    def read(self, fingerprint: str, name: str) -> Optional[bytes]:
        """Exact stored bytes of one artifact, or ``None``."""
        entry = self.entry_dir(fingerprint)
        path = entry / name
        if not path.exists():
            return None
        self._touch(entry)
        return path.read_bytes()

    # ------------------------------------------------------------------
    # Near-equivalence class index
    # ------------------------------------------------------------------
    def _mark_class(self, class_key: str, fingerprint: str) -> None:
        marker_dir = self.classes_dir / class_key
        marker_dir.mkdir(parents=True, exist_ok=True)
        marker = marker_dir / fingerprint
        if not marker.exists():
            try:
                marker.write_text("")
            except OSError:  # pragma: no cover - concurrent purge
                pass

    def _unmark_class(self, class_key: str, fingerprint: str) -> None:
        marker_dir = self.classes_dir / class_key
        try:
            (marker_dir / fingerprint).unlink()
        except OSError:
            pass
        try:
            marker_dir.rmdir()  # only succeeds when empty
        except OSError:
            pass

    def candidates(self, class_key: str) -> List[str]:
        """Fingerprints of live entries in one equivalence class,
        oldest-published first (stable prover walk order)."""
        marker_dir = self.classes_dir / class_key
        if not marker_dir.is_dir():
            return []
        out = [
            marker.name
            for marker in sorted(marker_dir.iterdir())
            if self.contains(marker.name)
        ]
        return out

    def entry_class(self, fingerprint: str) -> Optional[str]:
        """The class key an entry was published under, if any."""
        try:
            text = (self.entry_dir(fingerprint) / _CLASS).read_text()
        except OSError:
            return None
        return text.strip() or None

    def spec_doc(self, fingerprint: str) -> Optional[dict]:
        """The job-spec document stored beside an entry, if any."""
        data = self.read(fingerprint, "spec.json")
        if data is None:
            return None
        try:
            doc = json.loads(data)
        except ValueError:
            return None
        return doc if isinstance(doc, dict) else None

    def lookup_equivalent(self, class_key: str, workload, fingerprint):
        """The first cached entry provably equivalent to ``workload``.

        Walks the class's candidates oldest-first, rebuilds each
        candidate's workload from its stored ``spec.json``, and runs the
        full AM6xx prover (:func:`repro.analysis.equivalence
        .prove_equivalent`) against the submitted one.  Returns
        ``(candidate_fingerprint, proof)`` — with the proof's relabeling
        mapping candidate names onto the submission's — or ``None``.
        Candidates that fail to rebuild or to prove are skipped; only a
        completed proof ever serves bytes, so a class-key collision costs
        a proof attempt, never correctness.
        """
        from repro.analysis.equivalence import Workload, prove_equivalent
        from repro.service.fingerprint import spec_config
        from repro.service.spec import JobSpec

        for candidate in self.candidates(class_key):
            if candidate == fingerprint:
                continue
            spec_doc = self.spec_doc(candidate)
            if spec_doc is None:
                continue
            try:
                cand_spec = JobSpec.from_doc(spec_doc)
                _, graph, machine, space = cand_spec.build()
                source = Workload(
                    graph,
                    machine,
                    spec_config(cand_spec),
                    cand_spec.start_mapping,
                    space,
                )
                proof = prove_equivalent(source, workload)
            except Exception:  # noqa: BLE001 - stale/foreign entries
                continue
            if proof.equivalent:
                self.metrics.counter("service.cache.equiv_hits").inc()
                return candidate, proof
        return None

    # ------------------------------------------------------------------
    # Size accounting and eviction
    # ------------------------------------------------------------------
    def entry_bytes(self, fingerprint: str) -> int:
        entry = self.entry_dir(fingerprint)
        total = 0
        try:
            for path in entry.iterdir():
                if path.is_file():
                    total += path.stat().st_size
        except OSError:
            return 0
        return total

    def total_bytes(self) -> int:
        return sum(self.entry_bytes(fp) for fp in self.fingerprints())

    def entries(self) -> List[dict]:
        """One summary document per live entry (admin/endpoint view)."""
        out = []
        for fp in self.fingerprints():
            entry = self.entry_dir(fp)
            artifacts = sorted(
                p.name
                for p in entry.iterdir()
                if p.is_file()
                and not p.name.startswith(".")
                and p.name != _CLASS
            )
            out.append(
                {
                    "fingerprint": fp,
                    "bytes": self.entry_bytes(fp),
                    "atime": self._atime(entry),
                    "artifacts": artifacts,
                    "class": self.entry_class(fp),
                    "equivalent": (entry / "proof.json").exists(),
                }
            )
        return out

    def evict(self, fingerprint: str) -> bool:
        """Atomically delete one entry (and its class marker).

        The entry is renamed out of the cache directory first, so
        concurrent readers see either the complete entry or none.
        """
        entry = self.entry_dir(fingerprint)
        if not entry.is_dir():
            return False
        class_key = self.entry_class(fingerprint)
        grave = tempfile.mkdtemp(
            prefix=f".evict-{fingerprint[:16]}-", dir=self.cache_dir
        )
        try:
            os.replace(entry, grave)
        except OSError:
            shutil.rmtree(grave, ignore_errors=True)
            return False
        shutil.rmtree(grave, ignore_errors=True)
        if class_key is not None:
            self._unmark_class(class_key, fingerprint)
        self.metrics.counter("service.cache.evictions").inc()
        return True

    def purge(self) -> int:
        """Evict every entry; returns the number removed."""
        removed = 0
        for fp in self.fingerprints():
            if self.evict(fp):
                removed += 1
        return removed

    def _evict_lru(self, keep: Optional[str] = None) -> None:
        """Enforce ``max_bytes`` by evicting least-recently-used entries
        (never the just-published ``keep`` entry)."""
        if self.max_bytes is None:
            return
        while self.total_bytes() > self.max_bytes:
            victims = sorted(
                (
                    fp
                    for fp in self.fingerprints()
                    if fp != keep
                ),
                key=lambda fp: self._atime(self.entry_dir(fp)),
            )
            if not victims:
                return
            if not self.evict(victims[0]):
                return

    # ------------------------------------------------------------------
    def fingerprints(self) -> List[str]:
        return sorted(
            entry.name
            for entry in self.cache_dir.iterdir()
            if entry.is_dir()
            and not entry.name.startswith(".")
            and (entry / "result.json").exists()
        )

    def __len__(self) -> int:
        return len(self.fingerprints())
