"""The content-addressed result cache.

One directory per workload fingerprint under ``<root>/cache/``, holding
the finished run's artifacts (``result.json``, ``trace.json``,
``metrics.txt``).  A resubmitted equivalent workload — same fingerprint,
see :mod:`repro.service.fingerprint` — is served from here with **zero**
new simulations and byte-for-byte the stored artifacts: a hit does not
re-encode anything, it hands back the files the original run wrote.

Population is atomic: artifacts are staged into a temp directory next to
the final one and published with a single ``os.replace`` rename, so a
concurrent reader sees either no entry or a complete entry.  Losing the
race to another populater is fine — both wrote the same content-addressed
bytes (the determinism contract), so the survivor is interchangeable.

Hit/miss/store counters go through the service's
:class:`repro.obs.metrics.MetricsRegistry` and out the Prometheus text
endpoint.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry

__all__ = ["CACHE_ARTIFACTS", "ResultCache"]

#: Artifact filenames a complete cache entry holds; ``result.json`` is
#: mandatory (the deterministic report), the others best-effort.
CACHE_ARTIFACTS = ("result.json", "trace.json", "metrics.txt")


class ResultCache:
    """Fingerprint-keyed store of finished tuning artifacts."""

    def __init__(
        self,
        root: Union[str, Path],
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.root = Path(root)
        self.cache_dir = self.root / "cache"
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # ------------------------------------------------------------------
    def entry_dir(self, fingerprint: str) -> Path:
        return self.cache_dir / fingerprint

    def lookup(self, fingerprint: str) -> Optional[Path]:
        """The entry directory on a hit, ``None`` on a miss — counting
        either way."""
        entry = self.entry_dir(fingerprint)
        if (entry / "result.json").exists():
            self.metrics.counter("service.cache.hits").inc()
            return entry
        self.metrics.counter("service.cache.misses").inc()
        return None

    def contains(self, fingerprint: str) -> bool:
        """A metrics-silent probe (used by status endpoints)."""
        return (self.entry_dir(fingerprint) / "result.json").exists()

    # ------------------------------------------------------------------
    def put(self, fingerprint: str, files: Dict[str, bytes]) -> Path:
        """Publish a complete entry atomically.

        ``files`` maps artifact name to exact bytes; ``result.json`` is
        required.  An existing entry is kept (first writer wins — the
        bytes are content-addressed, so identical by contract).
        """
        if "result.json" not in files:
            raise ValueError("a cache entry requires result.json")
        entry = self.entry_dir(fingerprint)
        if (entry / "result.json").exists():
            return entry
        staging = tempfile.mkdtemp(
            prefix=f".{fingerprint[:16]}-", dir=self.cache_dir
        )
        try:
            for name, data in files.items():
                (Path(staging) / name).write_bytes(data)
            try:
                os.replace(staging, entry)
            except OSError:
                # Lost the publish race (entry now exists): keep theirs.
                shutil.rmtree(staging, ignore_errors=True)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        self.metrics.counter("service.cache.stores").inc()
        return entry

    def read(self, fingerprint: str, name: str) -> Optional[bytes]:
        """Exact stored bytes of one artifact, or ``None``."""
        path = self.entry_dir(fingerprint) / name
        if not path.exists():
            return None
        return path.read_bytes()

    # ------------------------------------------------------------------
    def fingerprints(self) -> List[str]:
        return sorted(
            entry.name
            for entry in self.cache_dir.iterdir()
            if entry.is_dir()
            and not entry.name.startswith(".")
            and (entry / "result.json").exists()
        )

    def __len__(self) -> int:
        return len(self.fingerprints())
