"""The search-space representation (paper §3.2, §3.3).

AutoMap's input is "a file containing the search space and machine model
representation containing all or a subset of tasks and data collections of
the target application", produced by profiling the application once.
:class:`SearchSpace` is that representation: for every task kind it
records the distribution options, the processor kinds with variants, and
for each collection-argument slot the memory-kind choices.

Two views of the space coexist:

* the **constrained** view — only mappings satisfying addressability —
  used by CD/CCD and for the Figure 5 size estimates;
* the **unconstrained** view — the plain cross-product over all memory
  kinds — used by the OpenTuner-style ensemble, which "cannot represent
  constrained search spaces" (§4.3) and therefore proposes invalid
  mappings that AutoMap rejects with a high value.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.machine.kinds import MemKind, ProcKind
from repro.machine.model import Machine
from repro.mapping.decision import MappingDecision
from repro.mapping.mapping import Mapping
from repro.taskgraph.graph import TaskGraph
from repro.util.rng import RngStream
from repro.util.serialization import dump_json, load_json

__all__ = ["KindDimensions", "SearchSpace"]


@dataclass(frozen=True)
class KindDimensions:
    """Search dimensions for one task kind."""

    kind_name: str
    slot_names: Tuple[str, ...]
    distribute_options: Tuple[bool, ...]
    proc_options: Tuple[ProcKind, ...]
    #: Memory options per slot *given* each processor kind choice.
    mem_options: Dict[ProcKind, Tuple[MemKind, ...]]
    #: Memory options per slot in the unconstrained view.
    all_mem_options: Tuple[MemKind, ...]

    @property
    def num_slots(self) -> int:
        return len(self.slot_names)

    def valid_combinations(self) -> int:
        """Number of valid (distribute, proc, mems...) combinations."""
        total = 0
        for proc in self.proc_options:
            per_slot = len(self.mem_options[proc])
            total += per_slot**self.num_slots
        return len(self.distribute_options) * total

    def unconstrained_combinations(self) -> int:
        """Cross-product size in the unconstrained view."""
        return (
            len(self.distribute_options)
            * len(self.proc_options)
            * len(self.all_mem_options) ** self.num_slots
        )


class SearchSpace:
    """The mapping search space for one (task graph, machine) pair.

    ``fixed_decisions`` pins selected task kinds to given decisions and
    removes them from the searched dimensions — §3.3's "all or a subset
    of tasks and data collections", used e.g. by the Maestro experiment
    where the high-fidelity simulation's mapping is fixed and only the
    low-fidelity ensemble is tuned (§5.1).
    """

    def __init__(
        self,
        graph: TaskGraph,
        machine: Machine,
        fixed_decisions: Optional[Dict[str, MappingDecision]] = None,
    ) -> None:
        self.graph = graph
        self.machine = machine
        self._fixed: Dict[str, MappingDecision] = dict(fixed_decisions or {})
        graph_kinds = {k.name for k in graph.task_kinds}
        for name in self._fixed:
            if name not in graph_kinds:
                raise ValueError(
                    f"fixed decision for unknown task kind {name!r}"
                )
        machine_proc_kinds = set(machine.proc_kinds())
        all_mem_kinds = machine.mem_kinds()

        # Static-analysis pruning tables (see :meth:`prune_infeasible`).
        # Empty on a freshly built space: every dimension is searched.
        self._dead_mems: Dict[Tuple[str, ProcKind, int], Tuple[MemKind, ...]] = {}
        self._canonical_mems: Dict[Tuple[str, ProcKind, int], MemKind] = {}
        self._dead_distribute: frozenset = frozenset()
        #: kind -> processor kinds a machine-symmetry proof drops from
        #: enumeration (their orbits' canonical members use the kept kinds).
        self._sym_procs: Dict[str, Tuple[ProcKind, ...]] = {}

        self._dims: Dict[str, KindDimensions] = {}
        for kind in graph.task_kinds:
            procs = tuple(
                pk for pk in ProcKind
                if pk in kind.variants and pk in machine_proc_kinds
            )
            if not procs:
                raise ValueError(
                    f"task kind {kind.name!r} has no variant runnable on "
                    f"machine {machine.name!r}"
                )
            mem_options = {
                proc: machine.mem_kinds_for(proc) for proc in procs
            }
            for proc, mems in mem_options.items():
                if not mems:
                    raise ValueError(
                        f"machine {machine.name!r} offers no memory "
                        f"addressable from {proc.value}"
                    )
            distribute_options = (
                (True, False) if machine.num_nodes > 1 else (True,)
            )
            self._dims[kind.name] = KindDimensions(
                kind_name=kind.name,
                slot_names=tuple(s.name for s in kind.slots),
                distribute_options=distribute_options,
                proc_options=procs,
                mem_options=mem_options,
                all_mem_options=all_mem_kinds,
            )

    # ------------------------------------------------------------------
    # Dimensions
    # ------------------------------------------------------------------
    def dims(self, kind_name: str) -> KindDimensions:
        """The *full* dimensions of a kind.

        Always unpruned: the Figure 5 size estimates, the §4.1 default
        mapping, legalization, and co-location all reason over the real
        space.  Move enumeration should use :meth:`searched_mem_options`
        and :meth:`searched_distribute_options`, which respect
        :meth:`prune_infeasible`.
        """
        return self._dims[kind_name]

    def searched_distribute_options(self, kind_name: str) -> Tuple[bool, ...]:
        """Distribute options the search should enumerate for a kind."""
        if kind_name in self._dead_distribute:
            return (True,)
        return self._dims[kind_name].distribute_options

    def searched_mem_options(
        self, kind_name: str, proc: ProcKind, slot_index: int
    ) -> Tuple[MemKind, ...]:
        """Memory options the search should enumerate for one slot
        given a processor-kind choice.

        On a pruned view this drops options a static pass proved dead
        (``AM101``: any containing mapping overflows) or runtime-
        equivalent to the canonical choice (``AM202``); never empty.
        """
        options = self._dims[kind_name].mem_options[proc]
        key = (kind_name, proc, slot_index)
        canonical = self._canonical_mems.get(key)
        if canonical is not None:
            return (canonical,)
        dead = self._dead_mems.get(key)
        if dead:
            kept = tuple(m for m in options if m not in dead)
            if kept:
                return kept
        return options

    def searched_proc_options(self, kind_name: str) -> Tuple[ProcKind, ...]:
        """Processor kinds the search should enumerate for a kind.

        On a pruned view this drops kinds a machine-symmetry proof
        showed redundant (``AM502``): every mapping using a dropped kind
        canonicalizes onto one using a kept kind, so enumerating it can
        only re-propose cached twins; never empty.
        """
        options = self._dims[kind_name].proc_options
        dropped = self._sym_procs.get(kind_name)
        if dropped:
            kept = tuple(p for p in options if p not in dropped)
            if kept:
                return kept
        return options

    @property
    def is_pruned(self) -> bool:
        """Whether this view carries static-analysis pruning tables."""
        return bool(
            self._dead_mems
            or self._canonical_mems
            or self._dead_distribute
            or self._sym_procs
        )

    def prune_infeasible(
        self, feasibility=None, canonicalizer=None
    ) -> "SearchSpace":
        """A constrained view of this space for move enumeration.

        Returns a new :class:`SearchSpace` whose ``searched_*`` methods
        skip provably-dead coordinates: memory options whose footprint
        contribution alone overflows some memory under every distribute
        choice (from
        :class:`repro.analysis.memfeas.StaticMemoryFeasibility`), and —
        when a :class:`repro.analysis.canonical.Canonicalizer` is given
        — coordinates that fold onto a canonical representative, whose
        re-evaluation could never beat the incumbent's cached result.

        ``dims()`` and everything built on it (sizes, default/random
        mappings, codecs) are unchanged, so pruning cannot alter the
        §4.1 starting mapping, legalization, or reported space sizes.

        Called with no arguments, a fresh feasibility pass is built;
        passing ``feasibility=None`` alongside an explicit
        ``canonicalizer`` skips feasibility pruning (the driver does
        this when spill mode turns overflow into demotion rather than
        failure, making overflowing options live again).
        """
        if feasibility is None and canonicalizer is None:
            from repro.analysis.memfeas import StaticMemoryFeasibility

            feasibility = StaticMemoryFeasibility(self.graph, self.machine)
        pruned = SearchSpace(self.graph, self.machine, self._fixed)
        if feasibility is not None:
            pruned._dead_mems = dict(feasibility.dead_slot_options(self))
        if canonicalizer is not None:
            pruned._dead_distribute = frozenset(
                canonicalizer.dead_distribute_kinds()
            )
            canonical_mems: Dict[Tuple[str, ProcKind, int], MemKind] = {}
            for kind_name, dims in self._dims.items():
                for proc in dims.proc_options:
                    for slot_index in range(dims.num_slots):
                        target = canonicalizer.canonical_mem(
                            kind_name, slot_index, proc
                        )
                        if target is not None:
                            canonical_mems[(kind_name, proc, slot_index)] = (
                                target
                            )
            pruned._canonical_mems = canonical_mems
            sym_procs: Dict[str, Tuple[ProcKind, ...]] = {}
            for kind_name, dropped in canonicalizer.symmetric_proc_drops(
                self
            ).items():
                options = self._dims[kind_name].proc_options
                kept = tuple(p for p in options if p not in dropped)
                # A fold must always leave at least one enumerable
                # processor option; on single-processor(-kind) machines
                # a total drop would empty the dimension, so it is
                # discarded here (searched_proc_options re-checks at
                # read time as a second line of defence).
                if kept:
                    sym_procs[kind_name] = tuple(
                        p for p in dropped if p in options
                    )
            pruned._sym_procs = sym_procs
        return pruned

    def kind_names(self) -> Tuple[str, ...]:
        """The *searched* task kinds (fixed kinds excluded)."""
        return tuple(
            name for name in self._dims if name not in self._fixed
        )

    @property
    def fixed_decisions(self) -> Dict[str, MappingDecision]:
        return dict(self._fixed)

    def is_tunable(self, kind_name: str) -> bool:
        """Whether the search may change this kind's decision."""
        return kind_name in self._dims and kind_name not in self._fixed

    def _tunable_dims(self) -> Dict[str, KindDimensions]:
        return {
            name: dims
            for name, dims in self._dims.items()
            if name not in self._fixed
        }

    @property
    def num_tasks(self) -> int:
        """Figure 5's "Tasks" column: searched task kinds (Maestro's row
        reads "13 (only LFs)" because the HF kinds are fixed)."""
        return len(self._tunable_dims())

    @property
    def num_collection_arguments(self) -> int:
        """Figure 5's "Collection Arguments" column (searched slots)."""
        return sum(d.num_slots for d in self._tunable_dims().values())

    # ------------------------------------------------------------------
    # Size estimates
    # ------------------------------------------------------------------
    def size(self) -> int:
        """Exact number of valid mappings (over searched kinds)."""
        total = 1
        for dims in self._tunable_dims().values():
            total *= dims.valid_combinations()
        return total

    def log2_size(self) -> float:
        """``log2`` of the valid-mapping count — the Figure 5 "Search
        Space Size" column (the paper reports ``~2^k``)."""
        return math.log2(self.size())

    def unconstrained_size(self) -> int:
        """Cross-product size of the unconstrained (generic-tuner) view."""
        total = 1
        for dims in self._tunable_dims().values():
            total *= dims.unconstrained_combinations()
        return total

    # ------------------------------------------------------------------
    # Canonical mappings
    # ------------------------------------------------------------------
    def default_mapping(self) -> Mapping:
        """The paper's starting point (§4.1): group tasks distributed
        across all nodes, tasks with GPU variants on GPUs, collections in
        Frame-Buffer memory (capacity overflow is handled at runtime by
        the priority-list fallback)."""
        decisions = {}
        for kind_name, dims in self._dims.items():
            if kind_name in self._fixed:
                decisions[kind_name] = self._fixed[kind_name]
                continue
            proc = (
                ProcKind.GPU
                if ProcKind.GPU in dims.proc_options
                else dims.proc_options[0]
            )
            fastest = dims.mem_options[proc][0]
            decisions[kind_name] = MappingDecision(
                distribute=True,
                proc_kind=proc,
                mem_kinds=(fastest,) * dims.num_slots,
            )
        return Mapping(decisions)

    def random_mapping(
        self, rng: RngStream, valid: bool = True
    ) -> Mapping:
        """A uniformly random mapping.

        With ``valid=True`` memory kinds are drawn from the chosen
        processor's addressable kinds; with ``valid=False`` from all
        machine memory kinds (the generic tuner's view).
        """
        decisions = {}
        for kind_name, dims in self._dims.items():
            if kind_name in self._fixed:
                decisions[kind_name] = self._fixed[kind_name]
                continue
            distribute = rng.choice(dims.distribute_options)
            proc = rng.choice(dims.proc_options)
            pool: Sequence[MemKind] = (
                dims.mem_options[proc] if valid else dims.all_mem_options
            )
            mems = tuple(rng.choice(pool) for _ in range(dims.num_slots))
            decisions[kind_name] = MappingDecision(
                distribute=distribute, proc_kind=proc, mem_kinds=mems
            )
        return Mapping(decisions)

    def enumerate_valid(self) -> Iterator[Mapping]:
        """Yield every valid mapping (exhaustive search on tiny spaces;
        guard with :meth:`size` before calling)."""
        per_kind: List[List[MappingDecision]] = []
        kind_names = list(self._dims)
        for kind_name in kind_names:
            dims = self._dims[kind_name]
            if kind_name in self._fixed:
                per_kind.append([self._fixed[kind_name]])
                continue
            options: List[MappingDecision] = []
            for distribute in dims.distribute_options:
                for proc in dims.proc_options:
                    for mems in itertools.product(
                        dims.mem_options[proc], repeat=dims.num_slots
                    ):
                        options.append(
                            MappingDecision(
                                distribute=distribute,
                                proc_kind=proc,
                                mem_kinds=mems,
                            )
                        )
            per_kind.append(options)
        for combo in itertools.product(*per_kind):
            yield Mapping(dict(zip(kind_names, combo)))

    # ------------------------------------------------------------------
    # Integer-vector codec for generic tuners (unconstrained view)
    # ------------------------------------------------------------------
    def vector_dims(self) -> List[int]:
        """Cardinality of each integer dimension, kind by kind:
        ``[dist, proc, mem_0, ..., mem_{n-1}] ...``."""
        dims_out: List[int] = []
        for dims in self._tunable_dims().values():
            dims_out.append(len(dims.distribute_options))
            dims_out.append(len(dims.proc_options))
            dims_out.extend([len(dims.all_mem_options)] * dims.num_slots)
        return dims_out

    def decode(self, vector: Sequence[int]) -> Mapping:
        """Decode an unconstrained integer vector into a (possibly
        invalid) mapping."""
        expected = len(self.vector_dims())
        if len(vector) != expected:
            raise ValueError(
                f"vector length {len(vector)} != expected {expected}"
            )
        decisions = dict(self._fixed)
        i = 0
        for kind_name, dims in self._tunable_dims().items():
            distribute = dims.distribute_options[
                vector[i] % len(dims.distribute_options)
            ]
            proc = dims.proc_options[vector[i + 1] % len(dims.proc_options)]
            i += 2
            mems = []
            for _ in range(dims.num_slots):
                mems.append(
                    dims.all_mem_options[vector[i] % len(dims.all_mem_options)]
                )
                i += 1
            decisions[kind_name] = MappingDecision(
                distribute=distribute, proc_kind=proc, mem_kinds=tuple(mems)
            )
        return Mapping(decisions)

    def encode(self, mapping: Mapping) -> List[int]:
        """Encode a mapping into the unconstrained integer vector."""
        vector: List[int] = []
        for kind_name, dims in self._tunable_dims().items():
            decision = mapping.decision(kind_name)
            vector.append(dims.distribute_options.index(decision.distribute))
            vector.append(dims.proc_options.index(decision.proc_kind))
            for mem in decision.mem_kinds:
                vector.append(dims.all_mem_options.index(mem))
        return vector

    # ------------------------------------------------------------------
    # File I/O (paper §3.3: the search-space representation file)
    # ------------------------------------------------------------------
    def to_file(self, path: Union[str, Path]) -> None:
        """Persist the search-space representation as JSON."""
        doc = {
            "format": "automap-search-space-v1",
            "graph": self.graph.name,
            "machine": self.machine.name,
            "num_nodes": self.machine.num_nodes,
            "kinds": [
                {
                    "name": dims.kind_name,
                    "slots": list(dims.slot_names),
                    "distribute_options": list(dims.distribute_options),
                    "proc_options": [p.value for p in dims.proc_options],
                    "mem_options": {
                        p.value: [m.value for m in mems]
                        for p, mems in dims.mem_options.items()
                    },
                }
                for dims in self._dims.values()
            ],
            "size_log2": self.log2_size(),
        }
        dump_json(doc, path)

    @staticmethod
    def summary_from_file(path: Union[str, Path]) -> Dict:
        """Read back the persisted representation (summary form)."""
        doc = load_json(path)
        if doc.get("format") != "automap-search-space-v1":
            raise ValueError(f"not a search-space file: {path}")
        return doc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SearchSpace(tasks={self.num_tasks}, "
            f"args={self.num_collection_arguments}, "
            f"size~2^{self.log2_size():.0f})"
        )
