"""The full mapping function.

A :class:`Mapping` is an immutable assignment of a
:class:`~repro.mapping.decision.MappingDecision` to every task kind of a
task graph.  Search algorithms explore the space through the functional
update helpers (``with_*``), which share unchanged decisions — mappings
are cheap to copy and safe to keep in a profiles database keyed by
:meth:`Mapping.key`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping as TMapping, Tuple

from repro.machine.kinds import MemKind, ProcKind
from repro.mapping.decision import MappingDecision

__all__ = ["Mapping"]


class Mapping:
    """An immutable mapping: task kind name → :class:`MappingDecision`."""

    __slots__ = ("_decisions", "_key")

    def __init__(self, decisions: TMapping[str, MappingDecision]) -> None:
        if not decisions:
            raise ValueError("a mapping must cover at least one task kind")
        self._decisions: Dict[str, MappingDecision] = dict(decisions)
        self._key: Tuple = tuple(
            (name, self._decisions[name].key())
            for name in sorted(self._decisions)
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def decision(self, kind_name: str) -> MappingDecision:
        """The decision for the named task kind (``KeyError`` if absent)."""
        return self._decisions[kind_name]

    def __contains__(self, kind_name: str) -> bool:
        return kind_name in self._decisions

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._decisions))

    def __len__(self) -> int:
        return len(self._decisions)

    def kind_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._decisions))

    def items(self) -> Iterable[Tuple[str, MappingDecision]]:
        return ((name, self._decisions[name]) for name in sorted(self._decisions))

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------
    def with_decision(self, kind_name: str, decision: MappingDecision) -> "Mapping":
        """Copy with one kind's whole decision replaced."""
        if kind_name not in self._decisions:
            raise KeyError(f"mapping does not cover task kind {kind_name!r}")
        new = dict(self._decisions)
        new[kind_name] = decision
        return Mapping(new)

    def with_distribute(self, kind_name: str, distribute: bool) -> "Mapping":
        return self.with_decision(
            kind_name, self.decision(kind_name).with_distribute(distribute)
        )

    def with_proc(self, kind_name: str, proc_kind: ProcKind) -> "Mapping":
        return self.with_decision(
            kind_name, self.decision(kind_name).with_proc(proc_kind)
        )

    def with_mem(
        self, kind_name: str, slot_index: int, mem_kind: MemKind
    ) -> "Mapping":
        return self.with_decision(
            kind_name, self.decision(kind_name).with_mem(slot_index, mem_kind)
        )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def key(self) -> Tuple:
        """Canonical hashable identity (used to deduplicate evaluations:
        §5.3 distinguishes mappings *suggested* from mappings *evaluated*)."""
        return self._key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    # ------------------------------------------------------------------
    # Introspection helpers used by reports and tests
    # ------------------------------------------------------------------
    def count_proc(self, proc_kind: ProcKind) -> int:
        """Number of task kinds mapped to ``proc_kind``."""
        return sum(
            1 for d in self._decisions.values() if d.proc_kind == proc_kind
        )

    def count_mem(self, mem_kind: MemKind) -> int:
        """Number of argument slots mapped to ``mem_kind``."""
        return sum(
            sum(1 for m in d.mem_kinds if m == mem_kind)
            for d in self._decisions.values()
        )

    def describe(self) -> str:
        """One line per kind: ``kind [dist|gpu|fb,fb,zc]``."""
        return "\n".join(
            f"{name} {decision}" for name, decision in self.items()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Mapping({len(self._decisions)} kinds)"
