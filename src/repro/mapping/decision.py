"""Per-task-kind mapping decisions.

For a task kind with ``n`` collection-argument slots, a decision is the
triple the factored search space ranges over (paper §3.2):

* ``distribute`` — whether launches of this kind are spread blocked
  across all machine nodes (True) or run entirely on the initial leader
  node (False) (paper §3.1);
* ``proc_kind`` — the processor kind every point task runs on;
* ``mem_kinds`` — one memory kind per argument slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.machine.kinds import MemKind, ProcKind

__all__ = ["MappingDecision"]


@dataclass(frozen=True)
class MappingDecision:
    """The mapping decision for one task kind."""

    distribute: bool
    proc_kind: ProcKind
    mem_kinds: Tuple[MemKind, ...]

    def __post_init__(self) -> None:
        if not self.mem_kinds:
            raise ValueError("a decision needs at least one memory kind")

    @property
    def num_slots(self) -> int:
        return len(self.mem_kinds)

    def with_distribute(self, distribute: bool) -> "MappingDecision":
        """Copy with the distribution flag replaced."""
        return MappingDecision(
            distribute=distribute,
            proc_kind=self.proc_kind,
            mem_kinds=self.mem_kinds,
        )

    def with_proc(self, proc_kind: ProcKind) -> "MappingDecision":
        """Copy with the processor kind replaced (memories untouched —
        callers re-establish addressability via the constraint logic)."""
        return MappingDecision(
            distribute=self.distribute,
            proc_kind=proc_kind,
            mem_kinds=self.mem_kinds,
        )

    def with_mem(self, slot_index: int, mem_kind: MemKind) -> "MappingDecision":
        """Copy with one slot's memory kind replaced."""
        if not 0 <= slot_index < len(self.mem_kinds):
            raise IndexError(
                f"slot index {slot_index} out of range "
                f"(kind has {len(self.mem_kinds)} slots)"
            )
        mems = list(self.mem_kinds)
        mems[slot_index] = mem_kind
        return MappingDecision(
            distribute=self.distribute,
            proc_kind=self.proc_kind,
            mem_kinds=tuple(mems),
        )

    def key(self) -> Tuple:
        """A canonical hashable key (used for mapping deduplication).

        Cached on first use — decisions are immutable, and the search
        loop, the bound analyzer, and the memoised runtime layers all
        key their caches on it for every candidate."""
        cached = self.__dict__.get("_key")
        if cached is None:
            cached = (
                self.distribute,
                self.proc_kind.value,
                tuple(m.value for m in self.mem_kinds),
            )
            object.__setattr__(self, "_key", cached)
        return cached

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dist = "dist" if self.distribute else "leader"
        mems = ",".join(m.value for m in self.mem_kinds)
        return f"[{dist}|{self.proc_kind.value}|{mems}]"
