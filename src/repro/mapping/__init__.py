"""Mapping representation (paper §2, §3.1, §3.2).

A mapping assigns each task a processor kind and a distribution flag, and
each collection-argument slot a memory kind — the factored signature
``tasks × collections → bool × processor kind × memory kind`` of §3.2.
Concrete processor/memory selection of the chosen kind is deterministic
runtime logic (:mod:`repro.runtime.placement`).

Public surface:

- :class:`~repro.mapping.decision.MappingDecision` — per-kind decisions;
- :class:`~repro.mapping.mapping.Mapping` — the full mapping function,
  immutable with functional update helpers;
- :mod:`~repro.mapping.validate` — constraint (1) checks (addressability,
  variants);
- :class:`~repro.mapping.space.SearchSpace` — the search-space
  representation (dimensions, size estimates, encode/decode for generic
  tuners, starting point, file I/O).
"""

from repro.mapping.decision import MappingDecision
from repro.mapping.mapping import Mapping
from repro.mapping.validate import MappingError, explain_invalid, is_valid, validate
from repro.mapping.space import SearchSpace
from repro.mapping.io import load_mapping, save_mapping

__all__ = [
    "MappingDecision",
    "Mapping",
    "MappingError",
    "validate",
    "is_valid",
    "explain_invalid",
    "SearchSpace",
    "save_mapping",
    "load_mapping",
]
