"""Mapping validity: constraint (1) of the paper.

"A task argument is mapped to a memory visible to the task's processor"
(§4.2, constraint 1) plus the variant requirement of §2 ("to run on a
processor kind, a task must have a variant for that processor kind").
Validity here is *kind-level*: capacity violations are a runtime matter —
a valid mapping may still fail with OOM at execution (§3.1), which the
evaluation oracle reports separately.

The actual checking lives in :mod:`repro.analysis.validity` (one shared
implementation, also used by the parallel workers and ``repro analyze``);
this module keeps the historical exception-and-string API.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.validity import explain_problems
from repro.machine.model import Machine
from repro.mapping.mapping import Mapping
from repro.taskgraph.graph import TaskGraph

__all__ = ["MappingError", "validate", "is_valid", "explain_invalid"]


class MappingError(ValueError):
    """Raised when a mapping violates a kind-level validity constraint."""


def validate(graph: TaskGraph, machine: Machine, mapping: Mapping) -> None:
    """Raise :class:`MappingError` if ``mapping`` is invalid for the
    graph/machine pair."""
    reason = explain_problems(graph, machine, mapping)
    if reason is not None:
        raise MappingError(reason)


def is_valid(graph: TaskGraph, machine: Machine, mapping: Mapping) -> bool:
    """Whether ``mapping`` satisfies all kind-level constraints."""
    return explain_problems(graph, machine, mapping) is None


def explain_invalid(
    graph: TaskGraph, machine: Machine, mapping: Mapping
) -> Optional[str]:
    """Human-readable reason the mapping is invalid, or ``None`` if valid."""
    return explain_problems(graph, machine, mapping)
