"""Mapping validity: constraint (1) of the paper.

"A task argument is mapped to a memory visible to the task's processor"
(§4.2, constraint 1) plus the variant requirement of §2 ("to run on a
processor kind, a task must have a variant for that processor kind").
Validity here is *kind-level*: capacity violations are a runtime matter —
a valid mapping may still fail with OOM at execution (§3.1), which the
evaluation oracle reports separately.
"""

from __future__ import annotations

from typing import List, Optional

from repro.machine.kinds import ADDRESSABLE
from repro.machine.model import Machine
from repro.mapping.mapping import Mapping
from repro.taskgraph.graph import TaskGraph

__all__ = ["MappingError", "validate", "is_valid", "explain_invalid"]


class MappingError(ValueError):
    """Raised when a mapping violates a kind-level validity constraint."""


def _problems(graph: TaskGraph, machine: Machine, mapping: Mapping) -> List[str]:
    problems: List[str] = []
    machine_proc_kinds = set(machine.proc_kinds())
    machine_mem_kinds = set(machine.mem_kinds())

    for kind in graph.task_kinds:
        if kind.name not in mapping:
            problems.append(f"task kind {kind.name!r} has no decision")
            continue
        decision = mapping.decision(kind.name)
        if decision.num_slots != kind.num_slots:
            problems.append(
                f"{kind.name}: decision covers {decision.num_slots} slots, "
                f"kind has {kind.num_slots}"
            )
            continue
        if decision.proc_kind not in kind.variants:
            problems.append(
                f"{kind.name}: no {decision.proc_kind.value} variant"
            )
        if decision.proc_kind not in machine_proc_kinds:
            problems.append(
                f"{kind.name}: machine has no "
                f"{decision.proc_kind.value} processors"
            )
        for slot_index, mem_kind in enumerate(decision.mem_kinds):
            if mem_kind not in machine_mem_kinds:
                problems.append(
                    f"{kind.name}[{kind.slots[slot_index].name}]: machine "
                    f"has no {mem_kind.value} memory"
                )
            elif (decision.proc_kind, mem_kind) not in ADDRESSABLE:
                problems.append(
                    f"{kind.name}[{kind.slots[slot_index].name}]: "
                    f"{mem_kind.value} not addressable from "
                    f"{decision.proc_kind.value}"
                )

    covered = set(mapping.kind_names())
    graph_kinds = {k.name for k in graph.task_kinds}
    for extra in sorted(covered - graph_kinds):
        problems.append(f"decision for unknown task kind {extra!r}")
    return problems


def validate(graph: TaskGraph, machine: Machine, mapping: Mapping) -> None:
    """Raise :class:`MappingError` if ``mapping`` is invalid for the
    graph/machine pair."""
    problems = _problems(graph, machine, mapping)
    if problems:
        raise MappingError("; ".join(problems))


def is_valid(graph: TaskGraph, machine: Machine, mapping: Mapping) -> bool:
    """Whether ``mapping`` satisfies all kind-level constraints."""
    return not _problems(graph, machine, mapping)


def explain_invalid(
    graph: TaskGraph, machine: Machine, mapping: Mapping
) -> Optional[str]:
    """Human-readable reason the mapping is invalid, or ``None`` if valid."""
    problems = _problems(graph, machine, mapping)
    if not problems:
        return None
    return "; ".join(problems)
