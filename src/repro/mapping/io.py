"""Mapping persistence.

A tuned mapping is the *product* of an AutoMap run: users save it next to
their application and load it into :class:`repro.core.AutoMapMapper` for
production runs ("AutoMap helps users discover efficient mapping
strategies to tune their custom mappers", paper §5).  The format is
plain JSON, one entry per task kind.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

from repro.machine.kinds import MemKind, ProcKind
from repro.mapping.decision import MappingDecision
from repro.mapping.mapping import Mapping
from repro.taskgraph.graph import TaskGraph
from repro.util.serialization import dump_json, load_json

__all__ = [
    "save_mapping",
    "load_mapping",
    "mapping_to_doc",
    "mapping_from_doc",
]

_FORMAT = "automap-mapping-v1"


def mapping_to_doc(mapping: Mapping) -> Dict[str, dict]:
    """Encode a mapping as the plain-JSON ``kinds`` document (one entry
    per task kind) shared by mapping files, the profiles database, and
    tuning checkpoints."""
    return {
        name: {
            "distribute": decision.distribute,
            "proc_kind": decision.proc_kind.value,
            "mem_kinds": [m.value for m in decision.mem_kinds],
        }
        for name, decision in mapping.items()
    }


def mapping_from_doc(doc: Dict[str, dict]) -> Mapping:
    """Decode a ``kinds`` document produced by :func:`mapping_to_doc`."""
    decisions: Dict[str, MappingDecision] = {}
    for name, entry in doc.items():
        decisions[name] = MappingDecision(
            distribute=bool(entry["distribute"]),
            proc_kind=ProcKind(entry["proc_kind"]),
            mem_kinds=tuple(MemKind(m) for m in entry["mem_kinds"]),
        )
    return Mapping(decisions)


def save_mapping(
    mapping: Mapping,
    path: Union[str, Path],
    application: Optional[str] = None,
) -> None:
    """Write ``mapping`` to ``path`` as JSON (atomically — see
    :func:`repro.util.serialization.dump_json`).

    ``application`` (e.g. the task graph's name) is stored so loads can
    be checked against the graph they are applied to.
    """
    doc = {
        "format": _FORMAT,
        "application": application,
        "kinds": mapping_to_doc(mapping),
    }
    dump_json(doc, path)


def load_mapping(
    path: Union[str, Path], graph: Optional[TaskGraph] = None
) -> Mapping:
    """Read a mapping back from ``path``.

    When ``graph`` is given, the file is validated against it: every
    task kind must be covered with the right slot count, and a stored
    application name must match the graph's.  Kind-level addressability
    is *not* checked here — validate against a machine with
    :func:`repro.mapping.validate.validate` before executing.
    """
    doc = load_json(path)
    if doc.get("format") != _FORMAT:
        raise ValueError(f"not an AutoMap mapping file: {path}")
    mapping = mapping_from_doc(doc["kinds"])

    if graph is not None:
        stored_app = doc.get("application")
        if stored_app is not None and stored_app != graph.name:
            raise ValueError(
                f"mapping was saved for {stored_app!r}, "
                f"not {graph.name!r}"
            )
        for kind in graph.task_kinds:
            if kind.name not in mapping:
                raise ValueError(
                    f"mapping file covers no decision for task kind "
                    f"{kind.name!r}"
                )
            if mapping.decision(kind.name).num_slots != kind.num_slots:
                raise ValueError(
                    f"mapping for {kind.name!r} has "
                    f"{mapping.decision(kind.name).num_slots} slots; "
                    f"the graph expects {kind.num_slots}"
                )
    return mapping
