"""Diagnostic framework for the static analysis passes.

Every finding any pass produces is a :class:`Diagnostic`: a stable rule
id (``AM001`` ...), a :class:`Severity`, a human-readable message, and a
:class:`Span` naming the task kind / argument slot / launch / collection
the finding is about.  Rule ids are registered centrally in :data:`RULES`
so the CLI and docs can enumerate them, and reports render through
:class:`repro.viz.table.Table` for aligned, greppable output.

Severity semantics follow the usual linter convention:

* ``ERROR`` — the artifact is wrong (invalid mapping, provable OOM,
  missing dependence edge); ``repro analyze`` exits non-zero.
* ``WARNING`` — suspicious but not provably wrong (spurious dependence
  edge, dead search coordinate worth knowing about).
* ``INFO`` — a fact the passes proved that is useful context (a
  recognised reduction idiom, an equivalence class collapse).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.viz.table import Table

# NOTE: repro.viz is imported lazily inside the rendering helpers.
# Importing it at module load would close the cycle
# viz.__init__ -> mapping -> mapping.validate -> analysis.validity ->
# analysis.diagnostics -> viz.__init__.

__all__ = [
    "Severity",
    "Span",
    "Diagnostic",
    "Rule",
    "RULES",
    "rule",
    "rule_table",
    "DiagnosticReport",
]


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            names = ", ".join(s.name.lower() for s in cls)
            raise ValueError(
                f"unknown severity {text!r} (expected one of: {names})"
            ) from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Span:
    """What a diagnostic is *about*: any subset of kind, slot, launch,
    collection, and memory.  All fields optional; ``str()`` renders the
    most specific description available."""

    kind: Optional[str] = None
    slot: Optional[str] = None
    launch: Optional[str] = None
    collection: Optional[str] = None
    memory: Optional[str] = None

    def __str__(self) -> str:
        parts: List[str] = []
        if self.kind is not None:
            parts.append(
                f"{self.kind}[{self.slot}]" if self.slot is not None else self.kind
            )
        elif self.slot is not None:
            parts.append(f"[{self.slot}]")
        if self.launch is not None:
            parts.append(self.launch)
        if self.collection is not None:
            parts.append(f"collection {self.collection}")
        if self.memory is not None:
            parts.append(f"memory {self.memory}")
        return " ".join(parts) if parts else "-"


@dataclass(frozen=True)
class Rule:
    """A registered diagnostic rule."""

    id: str
    severity: Severity
    title: str
    doc: str = ""

    @property
    def passname(self) -> str:
        """The analysis pass this rule belongs to, from its id prefix."""
        return _PASSES.get(self.id[:3], "other")


#: Analysis pass per rule-id century, used to group ``--list-rules``.
_PASSES: Dict[str, str] = {
    "AM0": "mapping validity",
    "AM1": "memory feasibility",
    "AM2": "canonicalization",
    "AM3": "graph sanitizer",
    "AM4": "cost bounds",
    "AM5": "routing & symmetry",
    "AM6": "workload equivalence",
}

RULES: Dict[str, Rule] = {}


def rule(rule_id: str) -> Rule:
    """Look up a registered rule (raises ``KeyError`` on unknown ids)."""
    return RULES[rule_id]


def _register(rule_id: str, severity: Severity, title: str, doc: str) -> Rule:
    if rule_id in RULES:  # pragma: no cover - registry misuse guard
        raise ValueError(f"duplicate rule id {rule_id!r}")
    r = Rule(rule_id, severity, title, doc)
    RULES[rule_id] = r
    return r


# -- AM0xx: kind-level mapping validity (paper §4.2 constraint 1) -------
_register(
    "AM001",
    Severity.ERROR,
    "task kind has no mapping decision",
    "Every task kind of the graph needs a decision in the mapping.",
)
_register(
    "AM002",
    Severity.ERROR,
    "decision slot count differs from kind",
    "A decision must carry one memory kind per collection-argument slot.",
)
_register(
    "AM003",
    Severity.ERROR,
    "no task variant for chosen processor kind",
    "The kind has no object code for the processor kind the decision picks.",
)
_register(
    "AM004",
    Severity.ERROR,
    "machine has no processor of chosen kind",
    "The decision targets a processor kind absent from the machine.",
)
_register(
    "AM005",
    Severity.ERROR,
    "machine has no memory of chosen kind",
    "A slot targets a memory kind absent from the machine.",
)
_register(
    "AM006",
    Severity.ERROR,
    "memory kind not addressable from processor",
    "The slot's memory kind violates the kind addressability relation.",
)
_register(
    "AM007",
    Severity.ERROR,
    "decision for task kind not in the graph",
    "The mapping covers a task kind the graph never launches.",
)

# -- AM1xx: static memory feasibility ----------------------------------
_register(
    "AM101",
    Severity.WARNING,
    "search coordinate provably exceeds memory",
    "Any mapping using this coordinate overflows a memory; the search "
    "skips it.",
)
_register(
    "AM102",
    Severity.ERROR,
    "mapping provably exceeds memory capacity",
    "The liveness-based footprint bound proves this mapping cannot fit.",
)

# -- AM2xx: equivalence canonicalization -------------------------------
_register(
    "AM201",
    Severity.INFO,
    "distribute choice cannot affect runtime",
    "Single-point or single-node launches run identically either way.",
)
_register(
    "AM202",
    Severity.INFO,
    "memory choice cannot affect runtime",
    "Zero-byte slots move no data, so their memory kind is folded.",
)
_register(
    "AM203",
    Severity.WARNING,
    "task kind has zero launches",
    "A kind with no launches adds dead coordinates to the search space.",
)

# -- AM3xx: task-graph sanitizer ---------------------------------------
_register(
    "AM301",
    Severity.ERROR,
    "read-write overlap not covered by dependence",
    "Two launches touch overlapping bytes with no dependence path: a race.",
)
_register(
    "AM302",
    Severity.WARNING,
    "dependence edge without interval overlap",
    "The edge's collections never overlap, so it only serialises work.",
)
_register(
    "AM303",
    Severity.ERROR,
    "overlapping writes within one group launch",
    "Point tasks of one group are independent and must write disjointly.",
)
_register(
    "AM304",
    Severity.INFO,
    "replicated read-write slot (reduction idiom)",
    "A replicated read-write argument is a recognised reduction pattern.",
)

# -- AM4xx: static cost bounds -----------------------------------------
_register(
    "AM401",
    Severity.WARNING,
    "mapping provably dominated",
    "The static makespan lower bound already exceeds the reference "
    "mapping's simulated time.",
)
_register(
    "AM402",
    Severity.WARNING,
    "communication-dominated placement",
    "Mandatory traffic through one memory outweighs every compute bound; "
    "the offending edge is named.",
)
_register(
    "AM403",
    Severity.INFO,
    "statically idle processor kind",
    "The machine offers a processor kind with task variants that the "
    "mapping never uses.",
)


# -- AM5xx: channel routing & machine symmetry -------------------------
_register(
    "AM501",
    Severity.WARNING,
    "bottleneck channel dominates routed traffic",
    "One channel carries a majority of all routed bytes; its congestion "
    "sets the communication bound.",
)
_register(
    "AM502",
    Severity.INFO,
    "machine kinds interchangeable under relabeling",
    "A verified kind automorphism folds relabeled mappings onto one "
    "canonical orbit member.",
)
_register(
    "AM503",
    Severity.WARNING,
    "memory pair unreachable via channels",
    "No channel path connects the pair; any mapping needing a copy "
    "between them fails at simulation time.",
)


# -- AM6xx: workload observational equivalence -------------------------
_register(
    "AM601",
    Severity.INFO,
    "memory capacity exceeds reachable footprint bound",
    "Capacity above the exact static footprint bound is unobservable: "
    "no reachable mapping can tell this memory from a larger one.",
)
_register(
    "AM602",
    Severity.INFO,
    "resource unreachable by any searched mapping",
    "No searched or fixed decision can touch this processor kind, "
    "memory, or channel, so its parameters are unobservable.",
)
_register(
    "AM603",
    Severity.INFO,
    "workload equivalent modulo verified relabeling",
    "A verified machine automorphism maps the workload onto itself; "
    "relabeled submissions can be served from the same cached result.",
)


def rule_table() -> "Table":
    """All registered rules, grouped by analysis pass, with their
    one-line docs — rendered straight from the registry so the CLI
    listing can never drift from the code."""
    from repro.viz.table import Table

    table = Table(["rule", "pass", "severity", "title", "doc"])
    for r in sorted(RULES.values(), key=lambda r: r.id):
        table.add_row([r.id, r.passname, str(r.severity), r.title, r.doc])
    return table


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static analysis pass."""

    rule_id: str
    message: str
    span: Span = field(default_factory=Span)
    severity: Optional[Severity] = None

    def __post_init__(self) -> None:
        if self.rule_id not in RULES:
            raise ValueError(f"unregistered rule id {self.rule_id!r}")
        if self.severity is None:
            object.__setattr__(self, "severity", RULES[self.rule_id].severity)

    def __str__(self) -> str:
        return f"{self.rule_id} {self.severity}: {self.span}: {self.message}"


class DiagnosticReport:
    """An ordered collection of diagnostics from one or more passes."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self._diagnostics: List[Diagnostic] = list(diagnostics)

    # -- collection protocol ------------------------------------------
    def add(self, diagnostic: Diagnostic) -> None:
        self._diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self._diagnostics.extend(diagnostics)

    def __iter__(self):
        return iter(self._diagnostics)

    def __len__(self) -> int:
        return len(self._diagnostics)

    def __bool__(self) -> bool:
        return bool(self._diagnostics)

    @property
    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        return tuple(self._diagnostics)

    # -- queries -------------------------------------------------------
    def with_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self._diagnostics if d.severity is severity]

    def at_least(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self._diagnostics if d.severity >= severity]

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self._diagnostics if d.rule_id == rule_id]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.with_severity(Severity.ERROR)

    def max_severity(self) -> Optional[Severity]:
        if not self._diagnostics:
            return None
        return max(d.severity for d in self._diagnostics)

    def counts(self) -> Dict[Severity, int]:
        out = {s: 0 for s in Severity}
        for d in self._diagnostics:
            out[d.severity] += 1
        return out

    # -- rendering -----------------------------------------------------
    def to_table(self, min_severity: Severity = Severity.INFO) -> "Table":
        """Render as an aligned :class:`repro.viz.table.Table`."""
        from repro.viz.table import Table

        table = Table(["rule", "severity", "where", "message"])
        for d in self._diagnostics:
            if d.severity < min_severity:
                continue
            table.add_row([d.rule_id, str(d.severity), str(d.span), d.message])
        return table

    def render(
        self,
        title: Optional[str] = None,
        min_severity: Severity = Severity.INFO,
    ) -> str:
        shown = [d for d in self._diagnostics if d.severity >= min_severity]
        if not shown:
            return f"{title}: no diagnostics" if title else "no diagnostics"
        counts = self.counts()
        summary = ", ".join(
            f"{counts[s]} {s}" + ("s" if counts[s] != 1 else "")
            for s in sorted(Severity, reverse=True)
            if counts[s]
        )
        body = self.to_table(min_severity).render(title)
        return f"{body}\n{summary}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
