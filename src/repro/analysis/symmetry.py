"""Machine symmetry detection: interchangeable kind relabelings.

Two mappings that differ only by a relabeling of *interchangeable*
machine kinds (say, two processor kinds with identical pools, speeds,
and memory systems) produce identical simulated executions, so the
search should treat them as one point.  This module finds the kind
relabelings under which the machine — and the task graph's view of it —
is provably indistinguishable, and the canonicalizer folds every
mapping onto the lexicographically least member of its orbit.

A candidate relabeling is a pair of permutations ``(π over processor
kinds, σ over memory kinds)``.  It is accepted only when *every* layer
the simulator consults is preserved exactly:

1. **Preference order** — ``σ`` maps ``mem_kinds_for(pk)`` elementwise
   onto ``mem_kinds_for(π(pk))``: addressability, legalization, the
   default mapper's "fastest" choice, and the spill planner's demotion
   order are all index-based lookups into this tuple.
2. **Task-kind closure** — each task kind's variant set is closed under
   ``π``, and (for non-identity ``π``) every kind's ``gpu_speedup`` is
   1.0, because the executor applies the speedup by *kind identity*
   (``proc_kind == GPU``), not by relative capability.
3. **Processor pools** — for every ``(kind, node)``, the pools pair up
   index-by-index with equal throughput and launch overhead (the placer
   assigns points by pool index, so index-wise pairing mirrors it).
4. **Memory pools** — likewise with equal capacity.
5. **Access links** — every link's image exists with equal bandwidth
   and latency (a bijection, so one direction implies both).
6. **Closest-memory choice** — ``closest_memory`` commutes with the
   pairing for every processor and addressable memory kind (this
   absorbs socket/device locality without constraining the raw fields).
7. **Channels** — every channel's image exists with equal bandwidth and
   latency.
8. **Routes** — the topology's chosen ``copy_path`` between every
   memory pair maps hop-by-hop onto the path between the image pair.
   Bandwidth/latency equality (7) does not pin down *which* shortest
   path networkx picks, and the executor reserves the channels of the
   chosen path, so route equality is checked explicitly.

Under these checks, relabeling a mapping permutes which concrete
resources carry which timeline reservations but leaves every float
operand and operation order of the simulation unchanged, so the
makespan — and the entire trace — is bit-identical (property-tested in
``tests/analysis/test_symmetry.py``).

The accepted set is automatically a group: structure-preserving
bijections compose and invert, and every candidate permutation pair is
verified independently, so the enumeration *is* the automorphism group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations
from typing import Dict, List, Optional, Tuple

from repro.analysis.routing import routing_model
from repro.machine.kinds import MemKind, ProcKind
from repro.machine.model import Machine
from repro.mapping.decision import MappingDecision
from repro.mapping.mapping import Mapping
from repro.taskgraph.graph import TaskGraph

__all__ = ["KindRelabeling", "MachineSymmetry"]


@dataclass(frozen=True)
class KindRelabeling:
    """One verified kind automorphism of a machine."""

    proc_map: Dict[ProcKind, ProcKind] = field(default_factory=dict)
    mem_map: Dict[MemKind, MemKind] = field(default_factory=dict)

    def proc(self, kind: ProcKind) -> ProcKind:
        return self.proc_map.get(kind, kind)

    def mem(self, kind: MemKind) -> MemKind:
        return self.mem_map.get(kind, kind)

    def is_identity(self) -> bool:
        return all(k == v for k, v in self.proc_map.items()) and all(
            k == v for k, v in self.mem_map.items()
        )

    def apply_decision(self, decision: MappingDecision) -> MappingDecision:
        """The decision with every kind relabeled (distribute kept)."""
        return MappingDecision(
            distribute=decision.distribute,
            proc_kind=self.proc(decision.proc_kind),
            mem_kinds=tuple(self.mem(mk) for mk in decision.mem_kinds),
        )

    def apply(self, mapping: Mapping) -> Mapping:
        """The mapping with every decision relabeled."""
        return Mapping(
            {
                name: self.apply_decision(mapping.decision(name))
                for name, _ in mapping.key()
            }
        )

    def describe(self) -> str:
        """Human-readable cycle notation of the moved kinds."""
        moved = [
            f"{k.value}->{v.value}"
            for k, v in list(self.proc_map.items()) + list(self.mem_map.items())
            if k != v
        ]
        return ", ".join(moved) if moved else "identity"


class MachineSymmetry:
    """The verified kind-automorphism group of one (graph, machine)."""

    def __init__(self, graph: TaskGraph, machine: Machine) -> None:
        self.graph = graph
        self.machine = machine
        self._automorphisms: Tuple[KindRelabeling, ...] = tuple(
            self._enumerate()
        )

    def automorphisms(self) -> Tuple[KindRelabeling, ...]:
        """Every verified non-identity relabeling."""
        return self._automorphisms

    def is_trivial(self) -> bool:
        """Whether the identity is the only automorphism."""
        return not self._automorphisms

    # ------------------------------------------------------------------
    # Enumeration and verification
    # ------------------------------------------------------------------
    def _enumerate(self) -> List[KindRelabeling]:
        proc_kinds = self.machine.proc_kinds()
        mem_kinds = self.machine.mem_kinds()
        found: List[KindRelabeling] = []
        for proc_perm in permutations(proc_kinds):
            proc_map = dict(zip(proc_kinds, proc_perm))
            for mem_perm in permutations(mem_kinds):
                mem_map = dict(zip(mem_kinds, mem_perm))
                rel = KindRelabeling(proc_map=proc_map, mem_map=mem_map)
                if rel.is_identity():
                    continue
                if self._verify(rel):
                    found.append(rel)
        return found

    def _verify(self, rel: KindRelabeling) -> bool:
        machine = self.machine
        # 1. Preference order commutes with the relabeling.
        for pk in machine.proc_kinds():
            before = machine.mem_kinds_for(pk)
            after = machine.mem_kinds_for(rel.proc(pk))
            if tuple(rel.mem(mk) for mk in before) != after:
                return False
        # 2. Task kinds cannot tell the relabeled kinds apart.
        proc_moved = any(k != v for k, v in rel.proc_map.items())
        for kind in self.graph.task_kinds:
            for pk in ProcKind:
                if kind.has_variant(pk) != kind.has_variant(rel.proc(pk)):
                    return False
            if proc_moved and kind.gpu_speedup != 1.0:
                return False
        # 3 + 4. Concrete pools pair index-wise with equal capability.
        proc_pair = self._pair_processors(rel)
        if proc_pair is None:
            return False
        mem_pair = self._pair_memories(rel)
        if mem_pair is None:
            return False
        # 5. Access links are preserved.
        for link in machine.access_links:
            image = machine.access_link(
                proc_pair[link.proc], mem_pair[link.mem]
            )
            if (
                image is None
                or image.bandwidth != link.bandwidth
                or image.latency != link.latency
            ):
                return False
        # 6. The closest-memory choice commutes with the pairing.
        for proc in machine.processors:
            partner = machine.processor(proc_pair[proc.uid])
            for mk in machine.mem_kinds_for(proc.kind):
                mine = machine.closest_memory(proc, mk)
                theirs = machine.closest_memory(partner, rel.mem(mk))
                if mine is None or theirs is None:
                    if mine is not theirs:
                        return False
                    continue
                if mem_pair[mine.uid] != theirs.uid:
                    return False
        # 7. Channels are preserved.
        for chan in machine.channels:
            image = machine.channel(
                mem_pair[chan.mem_a], mem_pair[chan.mem_b]
            )
            if (
                image is None
                or image.bandwidth != chan.bandwidth
                or image.latency != chan.latency
            ):
                return False
        # 8. The topology's chosen routes commute with the pairing.
        topology = routing_model(machine).topology
        mems = [m.uid for m in machine.memories]
        for src in mems:
            for dst in mems:
                if src == dst:
                    continue
                path = topology.copy_path(src, dst)
                image = topology.copy_path(mem_pair[src], mem_pair[dst])
                if path is None or image is None:
                    if (path is None) != (image is None):
                        return False
                    continue
                if len(path.hops) != len(image.hops):
                    return False
                for hop, hop_image in zip(path.hops, image.hops):
                    mapped = sorted(
                        (mem_pair[hop.mem_a], mem_pair[hop.mem_b])
                    )
                    actual = sorted((hop_image.mem_a, hop_image.mem_b))
                    if (
                        mapped != actual
                        or hop.bandwidth != hop_image.bandwidth
                        or hop.latency != hop_image.latency
                    ):
                        return False
        return True

    def _pair_processors(
        self, rel: KindRelabeling
    ) -> Optional[Dict[str, str]]:
        machine = self.machine
        pairing: Dict[str, str] = {}
        for pk in machine.proc_kinds():
            for node in range(machine.num_nodes):
                mine = machine.processors_of_kind(pk, node)
                theirs = machine.processors_of_kind(rel.proc(pk), node)
                if len(mine) != len(theirs):
                    return None
                for a, b in zip(mine, theirs):
                    if (
                        a.throughput != b.throughput
                        or a.launch_overhead != b.launch_overhead
                    ):
                        return None
                    pairing[a.uid] = b.uid
        return pairing

    def _pair_memories(
        self, rel: KindRelabeling
    ) -> Optional[Dict[str, str]]:
        machine = self.machine
        pairing: Dict[str, str] = {}
        for mk in machine.mem_kinds():
            for node in range(machine.num_nodes):
                mine = machine.memories_of_kind(mk, node)
                theirs = machine.memories_of_kind(rel.mem(mk), node)
                if len(mine) != len(theirs):
                    return None
                for a, b in zip(mine, theirs):
                    if a.capacity != b.capacity:
                        return None
                    pairing[a.uid] = b.uid
        return pairing
