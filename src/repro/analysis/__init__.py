"""Static analysis over ``(TaskGraph, Machine, Mapping/SearchSpace)``.

The paper treats the runtime as a black-box oracle: a kind-valid mapping
"may still fail with OOM at execution" (§3.1), and generic tuners
"cannot represent constrained search spaces" (§4.3), so the search pays
a full discrete-event simulation to learn facts a static pass can prove
in microseconds.  This package is that pre-simulation pruning layer:

* :mod:`~repro.analysis.validity` — the single kind-level validity
  checker (constraint 1) shared by the mapping validator, the oracle,
  and the parallel workers;
* :mod:`~repro.analysis.memfeas` — a liveness-based per-memory footprint
  bound that proves out-of-memory without simulating, short-circuits the
  oracle, and marks provably-dead search coordinates;
* :mod:`~repro.analysis.canonical` — equivalence canonicalization:
  coordinates that provably cannot affect simulated runtime are folded
  onto a canonical representative, raising profile/dedup hit rates;
* :mod:`~repro.analysis.sanitizer` — a race/dependence checker for task
  graphs: every read-write interval overlap between launches must be
  covered by a dependence path, and every edge must be justified;
* :mod:`~repro.analysis.bounds` — sound static lower bounds on the
  simulated makespan (critical path, processor load, communication
  volume), powering bound-based search pruning and the AM4xx
  diagnostics;
* :mod:`~repro.analysis.routing` — the executor's channel-path routes
  exposed to the analyzer, powering the per-channel congestion bound
  and the AM501/AM503 diagnostics;
* :mod:`~repro.analysis.symmetry` — verified machine-kind automorphisms
  (interchangeable processor/memory kinds), folded by the
  canonicalizer and reported as AM502;
* :mod:`~repro.analysis.equivalence` — the static workload-equivalence
  prover: capacity-slack, unused-resource, and relabeling lemmas that
  let the mapping service serve provably-equivalent submissions from
  cache with zero simulations (AM6xx);
* :mod:`~repro.analysis.engine` — the ``repro analyze`` entry point
  combining the passes into one :class:`DiagnosticReport`.

Every finding is a :class:`~repro.analysis.diagnostics.Diagnostic` with
a stable ``AMxxx`` rule id, a severity, and a span naming the offending
kind/slot/launch, rendered via :mod:`repro.viz.table`.

Submodules that depend on the runtime layer are loaded lazily (PEP 562)
so that low-level modules (e.g. :mod:`repro.mapping.validate`) can import
:mod:`repro.analysis.validity` without a circular import.
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    RULES,
    Diagnostic,
    DiagnosticReport,
    Severity,
    Span,
    rule_table,
)
from repro.analysis.validity import check_mapping

__all__ = [
    "RULES",
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "Span",
    "rule_table",
    "check_mapping",
    # lazily loaded:
    "StaticMemoryFeasibility",
    "Canonicalizer",
    "sanitize_graph",
    "analyze",
    "StaticBoundAnalyzer",
    "BoundBreakdown",
    "RoutingModel",
    "routing_model",
    "MachineSymmetry",
    "KindRelabeling",
    "Workload",
    "EquivalenceProof",
    "TouchableResources",
    "prove_equivalent",
    "footprint_bounds",
    "touchable_resources",
    "diagnose_equivalence",
    "pullback_result_doc",
]

_LAZY = {
    "StaticMemoryFeasibility": ("repro.analysis.memfeas", "StaticMemoryFeasibility"),
    "Canonicalizer": ("repro.analysis.canonical", "Canonicalizer"),
    "sanitize_graph": ("repro.analysis.sanitizer", "sanitize_graph"),
    "analyze": ("repro.analysis.engine", "analyze"),
    "StaticBoundAnalyzer": ("repro.analysis.bounds", "StaticBoundAnalyzer"),
    "BoundBreakdown": ("repro.analysis.bounds", "BoundBreakdown"),
    "RoutingModel": ("repro.analysis.routing", "RoutingModel"),
    "routing_model": ("repro.analysis.routing", "routing_model"),
    "MachineSymmetry": ("repro.analysis.symmetry", "MachineSymmetry"),
    "KindRelabeling": ("repro.analysis.symmetry", "KindRelabeling"),
    "Workload": ("repro.analysis.equivalence", "Workload"),
    "EquivalenceProof": ("repro.analysis.equivalence", "EquivalenceProof"),
    "TouchableResources": ("repro.analysis.equivalence", "TouchableResources"),
    "prove_equivalent": ("repro.analysis.equivalence", "prove_equivalent"),
    "footprint_bounds": ("repro.analysis.equivalence", "footprint_bounds"),
    "touchable_resources": (
        "repro.analysis.equivalence",
        "touchable_resources",
    ),
    "diagnose_equivalence": (
        "repro.analysis.equivalence",
        "diagnose_equivalence",
    ),
    "pullback_result_doc": (
        "repro.analysis.equivalence",
        "pullback_result_doc",
    ),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
