"""Pass 2 — equivalence canonicalization.

Two mappings that provably produce the same simulated execution should
be *one* point in the search: the oracle deduplicates by
``mapping.key()`` (§5.3 separates mappings suggested from mappings
evaluated), so folding equivalence classes onto a canonical
representative turns repeat simulations into profile-database hits.

The passes here are deliberately conservative — a coordinate is folded
only when the cost model provably cannot observe it:

* **Dead distribute** (``AM201``): the distribute bit only enters the
  execution through ``node_of_point`` (``point * N // size`` vs node 0).
  On a single-node machine, or for a kind whose launches all have group
  size 1, both branches yield node 0 for every point, so the bit is
  unobservable; canonical form sets it to ``True`` (matching the §4.1
  default mapping).
* **Dead memory choice** (``AM202``): a slot whose shard intervals are
  empty for every launch and point (e.g. boundary-clamped ghost strips
  of a size-1 launch) contributes no footprint, no coherence copies,
  and no transferred bytes — only the per-access ``link.latency`` term
  of the streaming cost model.  When every concrete processor the kind
  could run on has equal access latency to its closest memory of each
  candidate kind, the choice is unobservable; canonical form picks the
  processor's first (fastest) addressable kind.
* **Zero launches** (``AM203``): a decision for a kind with no launches
  in the graph cannot affect the execution at all (it is also invalid
  per ``AM007``; this pass just reports it).
* **Machine symmetry** (``AM502``): when the machine's kinds are
  interchangeable under a verified relabeling (see
  :class:`repro.analysis.symmetry.MachineSymmetry`), relabeled mappings
  simulate identically, so the canonical form is the lexicographically
  least mapping (by ``mapping.key()``) in the automorphism orbit —
  applied after the coordinate folds above, whose fixed points the
  verified relabelings preserve (keeping ``canonical`` idempotent).

``canonical()`` is a pure, memoized function of the mapping; it is
idempotent and runtime-preserving by construction (covered by property
tests).  The search additionally consults :meth:`dead_distribute_kinds`
and :meth:`canonical_mem` through
:meth:`repro.mapping.space.SearchSpace.prune_infeasible` to skip moves
that canonicalize onto the incumbent (their cached evaluation can never
be a strict improvement).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, Span
from repro.analysis.symmetry import MachineSymmetry
from repro.machine.kinds import MemKind, ProcKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.model import Machine, Processor
    from repro.mapping.mapping import Mapping
    from repro.mapping.space import SearchSpace
    from repro.taskgraph.graph import TaskGraph

__all__ = ["Canonicalizer"]


class Canonicalizer:
    """Maps mappings onto canonical representatives of their provable
    runtime-equivalence classes."""

    def __init__(self, graph: "TaskGraph", machine: "Machine") -> None:
        self.graph = graph
        self.machine = machine
        self._dead_distribute: FrozenSet[str] = frozenset(
            self._find_dead_distribute()
        )
        #: (kind, slot_index) -> True when every shard interval is empty.
        self._zero_byte_slots: FrozenSet[Tuple[str, int]] = frozenset(
            self._find_zero_byte_slots()
        )
        #: (kind, slot_index, proc_kind) -> canonical MemKind, for slots
        #: where the memory choice is provably unobservable.
        self._canonical_mem: Dict[Tuple[str, int, ProcKind], MemKind] = (
            self._find_canonical_mems()
        )
        #: Verified kind automorphisms of the machine (often empty).
        self._symmetry = MachineSymmetry(graph, machine)
        self._cache: Dict[Tuple, "Mapping"] = {}
        #: canonicalization calls that changed the mapping.
        self.folded = 0
        #: canonicalization calls the symmetry orbit fold changed.
        self.symmetry_folds = 0

    # ------------------------------------------------------------------
    # Equivalence discovery (once per graph/machine pair)
    # ------------------------------------------------------------------
    def _find_dead_distribute(self) -> List[str]:
        if self.machine.num_nodes == 1:
            return [k.name for k in self.graph.task_kinds]
        out: List[str] = []
        for kind in self.graph.task_kinds:
            launches = self.graph.launches_of_kind(kind.name)
            if launches and all(t.size == 1 for t in launches):
                out.append(kind.name)
        return out

    def _find_zero_byte_slots(self) -> List[Tuple[str, int]]:
        out: List[Tuple[str, int]] = []
        for kind in self.graph.task_kinds:
            launches = self.graph.launches_of_kind(kind.name)
            if not launches:
                continue
            for slot_index in range(kind.num_slots):
                empty = True
                for launch in launches:
                    for point in range(launch.size):
                        lo, hi = launch.shard_interval(
                            slot_index, point, for_write=False
                        )
                        if hi > lo:
                            empty = False
                            break
                    if not empty:
                        break
                if empty:
                    out.append((kind.name, slot_index))
        return out

    def _find_canonical_mems(self) -> Dict[Tuple[str, int, ProcKind], MemKind]:
        out: Dict[Tuple[str, int, ProcKind], MemKind] = {}
        for kind_name, slot_index in self._zero_byte_slots:
            kind = self.graph.kind(kind_name)
            for proc_kind in kind.variants:
                if proc_kind not in self.machine.proc_kinds():
                    continue
                options = self.machine.mem_kinds_for(proc_kind)
                if len(options) <= 1:
                    continue
                if self._equal_latencies(proc_kind, options):
                    out[(kind_name, slot_index, proc_kind)] = options[0]
        return out

    def _equal_latencies(
        self, proc_kind: ProcKind, options: Tuple[MemKind, ...]
    ) -> bool:
        """Whether every concrete processor of ``proc_kind`` sees equal
        access latency to its closest memory of each candidate kind —
        the only term a zero-byte access still pays."""
        for node in range(self.machine.num_nodes):
            for proc in self.machine.processors_of_kind(proc_kind, node):
                latencies = set()
                for mem_kind in options:
                    mem = self.machine.closest_memory(proc, mem_kind)
                    if mem is None:  # pragma: no cover - defensive
                        return False
                    link = self.machine.access_link(proc.uid, mem.uid)
                    latencies.add(link.latency)
                if len(latencies) > 1:
                    return False
        return True

    # ------------------------------------------------------------------
    # Queries used by the pruned search-space view
    # ------------------------------------------------------------------
    def dead_distribute_kinds(self) -> FrozenSet[str]:
        """Kinds whose distribute bit is provably unobservable."""
        return self._dead_distribute

    def canonical_mem(
        self, kind_name: str, slot_index: int, proc_kind: ProcKind
    ) -> Optional[MemKind]:
        """The canonical memory kind for an unobservable slot choice, or
        ``None`` when the slot's memory choice is observable."""
        return self._canonical_mem.get((kind_name, slot_index, proc_kind))

    def is_identity(self) -> bool:
        """Whether canonicalization is the identity on this graph and
        machine pair (no foldable coordinates, no machine symmetry)."""
        return (
            not self._dead_distribute
            and not self._canonical_mem
            and self._symmetry.is_trivial()
        )

    def symmetric_proc_drops(
        self, space: "SearchSpace"
    ) -> Dict[str, Tuple[ProcKind, ...]]:
        """Processor kinds move enumeration may skip per task kind.

        Only provable in the one case where per-coordinate dropping is
        orbit-safe: a space searching exactly one kind with nothing
        fixed.  There a mapping is a single decision, ``mapping.key()``
        compares its processor value right after the (relabeling-
        invariant) distribute bit, so the orbit minimum always uses the
        smallest processor value in the orbit — any kind some
        automorphism maps to a smaller value never appears in a
        canonical representative, and (because relabeling commutes with
        legalization) the canonical twin of every skipped move is
        itself an enumerated move.  Multi-kind symmetric spaces still
        benefit through the oracle's orbit fold (profile-cache hits
        instead of repeat simulations).
        """
        if self._symmetry.is_trivial():
            return {}
        names = space.kind_names()
        if len(names) != 1 or space.fixed_decisions:
            return {}
        (kind_name,) = names
        options = space.dims(kind_name).proc_options
        dropped = set()
        for rel in self._symmetry.automorphisms():
            for pk in options:
                image = rel.proc(pk)
                if image in options and image.value < pk.value:
                    dropped.add(pk)
        if not dropped or len(dropped) == len(options):
            return {}
        return {
            kind_name: tuple(pk for pk in options if pk in dropped)
        }

    # ------------------------------------------------------------------
    # The canonicalization function
    # ------------------------------------------------------------------
    def canonical(self, mapping: "Mapping") -> "Mapping":
        """The canonical representative of ``mapping``'s equivalence
        class.  Pure, memoized, and idempotent; returns ``mapping``
        itself when already canonical."""
        key = mapping.key()
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        out = mapping
        for kind in self.graph.task_kinds:
            if kind.name not in mapping:
                continue
            decision = out.decision(kind.name)
            if (
                kind.name in self._dead_distribute
                and not decision.distribute
            ):
                out = out.with_distribute(kind.name, True)
                decision = out.decision(kind.name)
            for slot_index in range(
                min(kind.num_slots, decision.num_slots)
            ):
                target = self._canonical_mem.get(
                    (kind.name, slot_index, decision.proc_kind)
                )
                if (
                    target is not None
                    and decision.mem_kinds[slot_index] != target
                ):
                    out = out.with_mem(kind.name, slot_index, target)
                    decision = out.decision(kind.name)
        if not self._symmetry.is_trivial():
            # Orbit fold: the verified relabelings preserve the fixed
            # points of the coordinate folds above, so taking the orbit
            # minimum afterwards keeps ``canonical`` idempotent.
            best, best_key = out, out.key()
            for rel in self._symmetry.automorphisms():
                image = rel.apply(out)
                image_key = image.key()
                if image_key < best_key:
                    best, best_key = image, image_key
            if best is not out:
                self.symmetry_folds += 1
                out = best
        if out is not mapping:
            self.folded += 1
        self._cache[key] = out
        self._cache.setdefault(out.key(), out)
        return out

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def diagnose_space(self, space: "SearchSpace") -> List[Diagnostic]:
        """``AM201``/``AM202`` for every foldable coordinate of the
        space, plus ``AM203`` for searched kinds with zero launches."""
        out: List[Diagnostic] = []
        for kind_name in space.kind_names():
            dims = space.dims(kind_name)
            launches = self.graph.launches_of_kind(kind_name)
            if not launches:
                out.append(
                    Diagnostic(
                        "AM203",
                        f"task kind {kind_name!r} has zero launches; its "
                        f"decision cannot affect the execution",
                        Span(kind=kind_name),
                    )
                )
                continue
            if (
                kind_name in self._dead_distribute
                and len(dims.distribute_options) > 1
            ):
                out.append(
                    Diagnostic(
                        "AM201",
                        f"{kind_name}: all launches have group size 1; "
                        f"the distribute choice is unobservable "
                        f"(canonical: distribute=True)",
                        Span(kind=kind_name),
                    )
                )
            for proc in dims.proc_options:
                for slot_index, slot_name in enumerate(dims.slot_names):
                    target = self._canonical_mem.get(
                        (kind_name, slot_index, proc)
                    )
                    if target is not None and len(dims.mem_options[proc]) > 1:
                        out.append(
                            Diagnostic(
                                "AM202",
                                f"{kind_name}[{slot_name}] transfers zero "
                                f"bytes on {proc.value} with equal access "
                                f"latencies; the memory choice is "
                                f"unobservable (canonical: {target.value})",
                                Span(kind=kind_name, slot=slot_name),
                            )
                        )
        return out

    def diagnose_symmetry(self) -> List[Diagnostic]:
        """``AM502`` for every verified machine-kind automorphism."""
        return [
            Diagnostic(
                "AM502",
                f"machine kinds are interchangeable under the "
                f"relabeling {rel.describe()}; mappings are folded "
                f"onto the lexicographically least member of each "
                f"orbit",
            )
            for rel in self._symmetry.automorphisms()
        ]
