"""Pass 1 — static memory feasibility.

The paper's oracle contract (§3.1) lets a kind-valid mapping "fail at
runtime if a collection assignment exceeds the capacity of the physical
memory"; §5.2's memory-constrained searches then burn a full
discrete-event simulation per doomed candidate just to observe the OOM.
This pass proves the same out-of-memory outcome statically, and exactly:
it computes the very footprint :meth:`repro.runtime.memory.MemoryPlanner
.check` would compute, without building a simulator.

The key observation is that the placement function is *factored* the
same way the search space is (§3.2).  For a launch of kind ``k``, the
concrete processor of point ``i`` depends only on the kind's
``(distribute, proc_kind)`` choice, and the concrete memory of slot
``s`` is ``closest(proc_i, mem_kind_s)`` — a function of that processor
and the slot's own memory-kind choice.  Therefore the byte intervals a
slot contributes to each ``(concrete memory, root index space)`` pair
depend only on the tuple ``(kind, distribute, proc_kind, slot,
mem_kind)`` and can be precomputed per *option* rather than per
*mapping*.  A mapping's footprint is the union of its options'
contributions, and unions are order-independent — so the static check
equals the planner's check bit for bit.

Because footprint unions are monotone, a single option whose own
contribution already overflows some memory can never appear in any
feasible mapping with the same ``(distribute, proc)`` choice; an option
dead under *every* distribute choice is a provably-dead search
coordinate (rule ``AM101``) that
:meth:`repro.mapping.space.SearchSpace.prune_infeasible` removes from
move enumeration.

Instances are memoized aggressively: per-option contributions, per-launch
point->processor assignments, and per-mapping verdicts (keyed by
``mapping.key()``), so oracle-side checks are amortized O(kinds x slots)
dictionary unions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, Span
from repro.machine.kinds import MemKind, ProcKind
from repro.runtime.intervals import IntervalSet
from repro.runtime.memory import MemoryDemand
from repro.util.units import format_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.model import Machine, Memory, Processor
    from repro.mapping.mapping import Mapping
    from repro.mapping.space import SearchSpace
    from repro.taskgraph.graph import TaskGraph
    from repro.taskgraph.task import TaskLaunch

__all__ = ["StaticMemoryFeasibility"]

#: contribution of one (kind, distribute, proc, slot, mem_kind) option:
#: byte intervals per (concrete memory uid, root index space).
_Contribution = Dict[Tuple[str, str], IntervalSet]


class StaticMemoryFeasibility:
    """Exact static reimplementation of the memory planner's footprint
    check, factored per search-space option for memoization and dead
    coordinate detection."""

    def __init__(self, graph: "TaskGraph", machine: "Machine") -> None:
        self.graph = graph
        self.machine = machine
        self._capacity: Dict[str, int] = {
            mem.uid: mem.capacity for mem in machine.memories
        }
        self._procs_by_kind_node: Dict[Tuple[ProcKind, int], List["Processor"]] = {}
        for kind in machine.proc_kinds():
            for node in range(machine.num_nodes):
                self._procs_by_kind_node[(kind, node)] = (
                    machine.processors_of_kind(kind, node)
                )
        self._launches_by_kind: Dict[str, List["TaskLaunch"]] = {}
        for launch in graph.launches:
            self._launches_by_kind.setdefault(launch.kind.name, []).append(launch)

        self._closest_cache: Dict[Tuple[str, MemKind], "Memory"] = {}
        self._point_proc_cache: Dict[
            Tuple[str, bool, ProcKind], Tuple["Processor", ...]
        ] = {}
        self._contrib_cache: Dict[
            Tuple[str, bool, ProcKind, int, MemKind], _Contribution
        ] = {}
        self._reason_cache: Dict[Tuple, Optional[str]] = {}
        #: verdicts served from the per-mapping cache vs computed fresh.
        self.checks = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------
    # Placement mirrors (must match repro.runtime.placement.Placer)
    # ------------------------------------------------------------------
    def _closest(self, proc: "Processor", mem_kind: MemKind) -> "Memory":
        key = (proc.uid, mem_kind)
        mem = self._closest_cache.get(key)
        if mem is None:
            found = self.machine.closest_memory(proc, mem_kind)
            if found is None:
                raise ValueError(
                    f"processor {proc.uid} cannot address any "
                    f"{mem_kind.value} memory (run the validity check "
                    f"before the feasibility pass)"
                )
            mem = found
            self._closest_cache[key] = mem
        return mem

    def _point_procs(
        self, launch: "TaskLaunch", distribute: bool, proc_kind: ProcKind
    ) -> Tuple["Processor", ...]:
        """Processor executing each point of ``launch``, mirroring
        :meth:`Placer.place_launch`'s blocked split + round-robin."""
        key = (launch.uid, distribute, proc_kind)
        cached = self._point_proc_cache.get(key)
        if cached is not None:
            return cached
        num_nodes = self.machine.num_nodes
        procs: List["Processor"] = []
        rr_counters: Dict[int, int] = {}
        for point in range(launch.size):
            node = point * num_nodes // launch.size if distribute else 0
            pool = self._procs_by_kind_node.get((proc_kind, node), [])
            if not pool:
                raise ValueError(
                    f"no {proc_kind.value} processors on node {node}"
                )
            index = rr_counters.get(node, 0)
            rr_counters[node] = index + 1
            procs.append(pool[index % len(pool)])
        out = tuple(procs)
        self._point_proc_cache[key] = out
        return out

    # ------------------------------------------------------------------
    # Per-option contributions
    # ------------------------------------------------------------------
    def _slot_contribution(
        self,
        kind_name: str,
        distribute: bool,
        proc_kind: ProcKind,
        slot_index: int,
        mem_kind: MemKind,
    ) -> _Contribution:
        """Byte intervals this option adds to each (memory, root)."""
        key = (kind_name, distribute, proc_kind, slot_index, mem_kind)
        cached = self._contrib_cache.get(key)
        if cached is not None:
            return cached
        out: _Contribution = {}
        for launch in self._launches_by_kind.get(kind_name, ()):
            procs = self._point_procs(launch, distribute, proc_kind)
            root = launch.args[slot_index].root
            assert root is not None
            for point, proc in enumerate(procs):
                lo, hi = launch.shard_interval(
                    slot_index, point, for_write=False
                )
                if hi <= lo:
                    continue
                mem_uid = self._closest(proc, mem_kind).uid
                current = out.get((mem_uid, root), IntervalSet.empty())
                out[(mem_uid, root)] = current.union(IntervalSet.single(lo, hi))
        self._contrib_cache[key] = out
        return out

    def slot_contribution(
        self,
        kind_name: str,
        distribute: bool,
        proc_kind: ProcKind,
        slot_index: int,
        mem_kind: MemKind,
    ) -> _Contribution:
        """Public read access to the per-option contribution table.

        The equivalence prover (:mod:`repro.analysis.equivalence`) unions
        these per-option contributions over *every* reachable option to
        obtain the exact static footprint upper bound; raising
        ``ValueError`` here means the option is unreachable (no processor
        pool / unaddressable memory) and contributes nothing.
        """
        return self._slot_contribution(
            kind_name, distribute, proc_kind, slot_index, mem_kind
        )

    def _contribution_overflows(self, contrib: _Contribution) -> bool:
        """Whether this option's own footprint already exceeds some
        memory's capacity (a lower bound on any containing mapping)."""
        per_mem: Dict[str, int] = {}
        for (mem_uid, _root), ivs in contrib.items():
            per_mem[mem_uid] = per_mem.get(mem_uid, 0) + ivs.total
        return any(
            total > self._capacity[mem_uid]
            for mem_uid, total in per_mem.items()
        )

    # ------------------------------------------------------------------
    # Whole-mapping feasibility
    # ------------------------------------------------------------------
    def check(self, mapping: "Mapping") -> MemoryDemand:
        """Static footprint of ``mapping``; equals
        :meth:`MemoryPlanner.check` exactly."""
        per_mem_root: Dict[Tuple[str, str], IntervalSet] = {}
        for kind in self.graph.task_kinds:
            decision = mapping.decision(kind.name)
            for slot_index in range(kind.num_slots):
                contrib = self._slot_contribution(
                    kind.name,
                    decision.distribute,
                    decision.proc_kind,
                    slot_index,
                    decision.mem_kinds[slot_index],
                )
                for key, ivs in contrib.items():
                    current = per_mem_root.get(key)
                    per_mem_root[key] = (
                        ivs if current is None else current.union(ivs)
                    )
        per_memory: Dict[str, int] = {}
        for (mem_uid, _root), ivs in per_mem_root.items():
            per_memory[mem_uid] = per_memory.get(mem_uid, 0) + ivs.total
        demand = MemoryDemand(per_memory=per_memory)
        for uid, total in per_memory.items():
            if total > self._capacity[uid]:
                demand.overflows[uid] = (total, self._capacity[uid])
        return demand

    def oom_reason(self, mapping: "Mapping") -> Optional[str]:
        """The exact OOM message the runtime planner would raise for
        ``mapping``, or ``None`` when it fits.  Memoized per mapping."""
        key = mapping.key()
        if key in self._reason_cache:
            self.cache_hits += 1
            return self._reason_cache[key]
        self.checks += 1
        demand = self.check(mapping)
        reason = None if demand.ok else demand.oom_message()
        self._reason_cache[key] = reason
        return reason

    def is_feasible(self, mapping: "Mapping") -> bool:
        return self.oom_reason(mapping) is None

    # ------------------------------------------------------------------
    # Dead search coordinates
    # ------------------------------------------------------------------
    def dead_slot_options(
        self, space: "SearchSpace"
    ) -> Dict[Tuple[str, ProcKind, int], Tuple[MemKind, ...]]:
        """Memory-kind options that cannot appear in any feasible
        mapping, per ``(kind, proc, slot)``.

        An option is dead when its own contribution overflows some
        memory under *every* distribute choice the space offers —
        footprints only grow by union, so any mapping containing it
        overflows too.  Options are never reported dead when *all*
        options of a slot would die (the kind/proc combination itself is
        infeasible then; whole-mapping checks handle that case and move
        enumeration must not go empty).
        """
        dead: Dict[Tuple[str, ProcKind, int], Tuple[MemKind, ...]] = {}
        for kind_name in space.kind_names():
            dims = space.dims(kind_name)
            for proc in dims.proc_options:
                options = dims.mem_options[proc]
                for slot_index in range(dims.num_slots):
                    dead_mems = tuple(
                        mem
                        for mem in options
                        if all(
                            self._contribution_overflows(
                                self._slot_contribution(
                                    kind_name, dist, proc, slot_index, mem
                                )
                            )
                            for dist in dims.distribute_options
                        )
                    )
                    if dead_mems and len(dead_mems) < len(options):
                        dead[(kind_name, proc, slot_index)] = dead_mems
        return dead

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def diagnose_space(self, space: "SearchSpace") -> List[Diagnostic]:
        """``AM101`` for every provably-dead search coordinate."""
        out: List[Diagnostic] = []
        for (kind_name, proc, slot_index), mems in sorted(
            self.dead_slot_options(space).items(),
            key=lambda item: (item[0][0], item[0][1].value, item[0][2]),
        ):
            slot_name = space.dims(kind_name).slot_names[slot_index]
            for mem in mems:
                out.append(
                    Diagnostic(
                        "AM101",
                        f"{kind_name}[{slot_name}] in {mem.value} on "
                        f"{proc.value} overflows memory under every "
                        f"distribute choice",
                        Span(kind=kind_name, slot=slot_name),
                    )
                )
        return out

    def diagnose_mapping(self, mapping: "Mapping") -> List[Diagnostic]:
        """``AM102`` when the mapping's footprint provably overflows."""
        demand = self.check(mapping)
        if demand.ok:
            return []
        out: List[Diagnostic] = []
        for uid, (need, cap) in sorted(demand.overflows.items()):
            out.append(
                Diagnostic(
                    "AM102",
                    f"footprint {format_bytes(need)} exceeds "
                    f"{format_bytes(cap)} capacity",
                    Span(memory=uid),
                )
            )
        return out
