"""Channel-path routing model for the static cost bounds.

The communication component of :mod:`repro.analysis.bounds` originally
priced traffic at each memory's *incident* channel bandwidth — sound,
but far too loose on multi-hop machines where a copy crosses several
channels (e.g. framebuffer → zero-copy → remote zero-copy → remote
framebuffer).  This module exposes the executor's own routing decisions
to the analyzer:

* :class:`RoutingModel` wraps a :class:`repro.machine.topology.Topology`
  built from the same machine the simulator uses, so the channel
  sequence it reports for a ``(src, dst)`` memory pair is *exactly* the
  sequence :class:`repro.runtime.copies.CopyEngine` reserves when it
  executes that copy.  Each hop is identified by the engine's serial
  timeline key (``chan:{a}<->{b}`` with sorted endpoints), which is what
  makes the per-channel congestion bound sound: the executor serialises
  all traffic through one key on one timeline, so the simulated makespan
  is at least the busy time of the busiest channel.
* :func:`routing_model` caches one model per live machine object —
  analyses along a search chain hit the same machine thousands of
  times, and path computation dominates a cold analyzer otherwise.

The model also powers the AM503 diagnostic: a memory pair with no
channel path at all means the simulator will refuse any mapping that
needs a copy between them.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, Span
from repro.machine.model import Machine
from repro.machine.topology import Topology

__all__ = ["RoutingModel", "channel_key", "routing_model"]


def channel_key(mem_a: str, mem_b: str) -> str:
    """The copy engine's serial timeline key for a channel.

    Must stay in lock-step with
    :meth:`repro.runtime.copies.CopyEngine._channel_key` — the soundness
    of the per-channel congestion bound rests on bytes being attributed
    to the same serially-reused timeline the executor reserves.
    """
    a, b = sorted((mem_a, mem_b))
    return f"chan:{a}<->{b}"


class RoutingModel:
    """Cached channel-path routes for every memory pair of one machine.

    Routes are resolved through a fresh :class:`Topology` built from the
    machine — the identical construction the simulator performs — so the
    analyzer and the executor always agree on which channels a copy
    traverses.
    """

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.topology = Topology(machine)
        #: channel timeline key -> raw channel bandwidth (bytes/s).
        self._bandwidth: Dict[str, float] = {}
        for chan in machine.channels:
            self._bandwidth[channel_key(chan.mem_a, chan.mem_b)] = (
                chan.bandwidth
            )
        #: (src mem uid, dst mem uid) -> channel keys along the route,
        #: or ``None`` when the pair is disconnected.
        self._routes: Dict[Tuple[str, str], Optional[Tuple[str, ...]]] = {}

    def route(self, src_uid: str, dst_uid: str) -> Optional[Tuple[str, ...]]:
        """Channel timeline keys a copy from ``src`` to ``dst`` crosses.

        Returns an empty tuple when source equals destination and
        ``None`` when no channel path exists (the executor would raise).
        """
        key = (src_uid, dst_uid)
        cached = self._routes.get(key, _MISSING)
        if cached is not _MISSING:
            return cached
        path = self.topology.copy_path(src_uid, dst_uid)
        if path is None:
            resolved: Optional[Tuple[str, ...]] = None
        else:
            resolved = tuple(
                channel_key(hop.mem_a, hop.mem_b) for hop in path.hops
            )
        self._routes[key] = resolved
        return resolved

    def channel_bandwidth(self, key: str) -> Optional[float]:
        """Raw bandwidth of the channel behind a timeline key."""
        return self._bandwidth.get(key)

    def unreachable_pairs(self) -> List[Tuple[str, str]]:
        """Unordered memory pairs with no channel path between them."""
        out: List[Tuple[str, str]] = []
        mems = [m.uid for m in self.machine.memories]
        for i, src in enumerate(mems):
            for dst in mems[i + 1:]:
                if self.route(src, dst) is None:
                    out.append((src, dst))
        return out

    def diagnose(self) -> List[Diagnostic]:
        """``AM503`` for every memory pair the simulator cannot route."""
        return [
            Diagnostic(
                rule_id="AM503",
                message=(
                    f"no channel path between {src} and {dst}: any "
                    f"mapping that needs a copy between them fails at "
                    f"simulation time"
                ),
                span=Span(memory=src),
            )
            for src, dst in self.unreachable_pairs()
        ]


#: Sentinel distinguishing "not cached" from a cached ``None`` route.
_MISSING = object()

#: Per-machine model cache, keyed by object identity (``Machine`` is an
#: eq-comparable dataclass and therefore unhashable).  Entries whose
#: machine object was garbage-collected would never match again, so a
#: small LRU keeps the cache from growing across many machines.
_MODELS: "OrderedDict[int, RoutingModel]" = OrderedDict()
_MODEL_CACHE_SIZE = 8


def routing_model(machine: Machine) -> RoutingModel:
    """The (cached) :class:`RoutingModel` for ``machine``.

    Identity-keyed: two equal-but-distinct machine objects get distinct
    models, and a recycled ``id`` cannot alias because the stored model
    keeps its machine alive and is compared by identity before reuse.
    """
    key = id(machine)
    model = _MODELS.get(key)
    if model is not None and model.machine is machine:
        _MODELS.move_to_end(key)
        return model
    model = RoutingModel(machine)
    _MODELS[key] = model
    _MODELS.move_to_end(key)
    while len(_MODELS) > _MODEL_CACHE_SIZE:
        _MODELS.popitem(last=False)
    return model
