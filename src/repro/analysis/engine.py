"""The ``repro analyze`` entry point: run all static passes.

Combines the task-graph sanitizer, the canonicalization analysis, the
dead-coordinate feasibility scan, and (when a concrete mapping is
given) the validity checker and whole-mapping feasibility proof into
one :class:`~repro.analysis.diagnostics.DiagnosticReport`.  This is
what the CLI subcommand and the CI lint gate call; the search pipeline
instead wires the individual passes into the oracle and the search
space (see :class:`repro.core.driver.AutoMapDriver`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.analysis.canonical import Canonicalizer
from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.memfeas import StaticMemoryFeasibility
from repro.analysis.sanitizer import sanitize_graph
from repro.analysis.validity import check_mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.model import Machine
    from repro.mapping.mapping import Mapping
    from repro.mapping.space import SearchSpace
    from repro.taskgraph.graph import TaskGraph

__all__ = ["analyze"]


def analyze(
    graph: "TaskGraph",
    machine: "Machine",
    space: Optional["SearchSpace"] = None,
    mapping: Optional["Mapping"] = None,
    sanitize: bool = True,
    bounds: bool = False,
    equivalence: bool = False,
) -> DiagnosticReport:
    """Run every static pass over the graph/machine pair.

    ``space`` defaults to the full :class:`SearchSpace` of the pair and
    is scanned for dead/foldable coordinates; a concrete ``mapping`` is
    additionally validity-checked and, when valid, proven to fit (or
    not) in memory.  The sanitizer can be skipped for repeated calls on
    an already-sanitized graph.  With ``bounds`` the static cost-bound
    analyzer adds the AM4xx diagnostics, comparing the mapping (or the
    space's default mapping when none is given) against the default
    mapping's simulated makespan.  With ``equivalence`` the AM6xx
    workload-equivalence pass reports capacity slack above the footprint
    bound, unreachable resources, and verified self-relabelings.
    """
    report = DiagnosticReport()
    if sanitize:
        report.extend(sanitize_graph(graph))

    if space is None:
        from repro.mapping.space import SearchSpace

        space = SearchSpace(graph, machine)

    canonicalizer = Canonicalizer(graph, machine)
    report.extend(canonicalizer.diagnose_space(space))

    feasibility = StaticMemoryFeasibility(graph, machine)
    report.extend(feasibility.diagnose_space(space))

    valid_mapping = None
    if mapping is not None:
        validity = check_mapping(graph, machine, mapping)
        report.extend(validity)
        if not validity:
            report.extend(feasibility.diagnose_mapping(mapping))
            valid_mapping = mapping
    if bounds and (mapping is None or valid_mapping is not None):
        report.extend(
            _diagnose_bounds(
                graph, machine, space, valid_mapping, canonicalizer
            )
        )
    if equivalence:
        from repro.analysis.equivalence import diagnose_equivalence

        report.extend(diagnose_equivalence(graph, machine, space))
    return report


def _diagnose_bounds(
    graph: "TaskGraph",
    machine: "Machine",
    space: "SearchSpace",
    mapping: Optional["Mapping"],
    canonicalizer: Canonicalizer,
) -> DiagnosticReport:
    """AM4xx + AM5xx: bound/routing diagnostics for one (already valid)
    mapping.

    The reference makespan AM401 compares against is a noise-free,
    spill-enabled simulation of the space's default mapping — the
    "don't search at all" baseline; the bound is priced on the mapping
    the simulator would actually execute (spill demotions applied).
    The machine-level AM5xx findings ride along: unreachable memory
    pairs (AM503) from the routing model and interchangeable-kind folds
    (AM502) from the canonicalizer's verified symmetry group.
    The runtime import stays local: the analysis package must be
    importable from below the runtime layer.
    """
    from repro.analysis.bounds import StaticBoundAnalyzer
    from repro.analysis.routing import routing_model
    from repro.runtime.simulator import SimConfig, Simulator

    report = DiagnosticReport()
    report.extend(routing_model(machine).diagnose())
    report.extend(canonicalizer.diagnose_symmetry())
    if not graph.launches:
        # Degenerate graph: nothing to simulate and no mapping to
        # bound (``Mapping({})`` is invalid by construction), so the
        # machine-level findings above are the whole report.
        return report
    simulator = Simulator(
        graph, machine, SimConfig(noise_sigma=0.0, spill=True)
    )
    default = space.default_mapping()
    incumbent = simulator.run(default).makespan
    target = default if mapping is None else mapping
    analyzer = StaticBoundAnalyzer(graph, machine)
    report.extend(
        analyzer.diagnose_mapping(
            simulator.spill_plan(target), incumbent=incumbent
        )
    )
    return report
