"""The ``repro analyze`` entry point: run all static passes.

Combines the task-graph sanitizer, the canonicalization analysis, the
dead-coordinate feasibility scan, and (when a concrete mapping is
given) the validity checker and whole-mapping feasibility proof into
one :class:`~repro.analysis.diagnostics.DiagnosticReport`.  This is
what the CLI subcommand and the CI lint gate call; the search pipeline
instead wires the individual passes into the oracle and the search
space (see :class:`repro.core.driver.AutoMapDriver`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.analysis.canonical import Canonicalizer
from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.memfeas import StaticMemoryFeasibility
from repro.analysis.sanitizer import sanitize_graph
from repro.analysis.validity import check_mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.model import Machine
    from repro.mapping.mapping import Mapping
    from repro.mapping.space import SearchSpace
    from repro.taskgraph.graph import TaskGraph

__all__ = ["analyze"]


def analyze(
    graph: "TaskGraph",
    machine: "Machine",
    space: Optional["SearchSpace"] = None,
    mapping: Optional["Mapping"] = None,
    sanitize: bool = True,
) -> DiagnosticReport:
    """Run every static pass over the graph/machine pair.

    ``space`` defaults to the full :class:`SearchSpace` of the pair and
    is scanned for dead/foldable coordinates; a concrete ``mapping`` is
    additionally validity-checked and, when valid, proven to fit (or
    not) in memory.  The sanitizer can be skipped for repeated calls on
    an already-sanitized graph.
    """
    report = DiagnosticReport()
    if sanitize:
        report.extend(sanitize_graph(graph))

    if space is None:
        from repro.mapping.space import SearchSpace

        space = SearchSpace(graph, machine)

    canonicalizer = Canonicalizer(graph, machine)
    report.extend(canonicalizer.diagnose_space(space))

    feasibility = StaticMemoryFeasibility(graph, machine)
    report.extend(feasibility.diagnose_space(space))

    if mapping is not None:
        validity = check_mapping(graph, machine, mapping)
        report.extend(validity)
        if not validity:
            report.extend(feasibility.diagnose_mapping(mapping))
    return report
