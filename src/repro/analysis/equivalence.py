"""Pass 6 — static workload observational equivalence (AM6xx).

Two submitted workloads (task graph, machine, semantic search config,
fixed decisions, start mapping) are *observationally equivalent* when no
run of the tuner can distinguish them: every simulation either workload
could ever trigger returns the same floats in the same order, so the
final report — and the entire trace — is byte-identical.  Proving that
statically lets the mapping service answer a provably-equivalent
resubmission from the result cache with **zero** simulations.

The prover is deliberately one-sided: it either *proves* equivalence
through a pipeline of individually-sound lemmas, or reports the precise
witness that blocks the proof.  "Can't prove" never means "different" —
it means the service must run the tune.  The lemmas:

1. **Capacity slack** (AM601).  :func:`footprint_bounds` computes, per
   concrete memory, the exact static upper bound ``U(m)`` on the bytes
   *any* reachable mapping can ever place there: the union — over every
   option of every reachable search coordinate (fixed kinds contribute
   only their pinned decision) — of the per-option interval
   contributions of :class:`repro.analysis.memfeas
   .StaticMemoryFeasibility`.  Footprints grow by union and the planner
   compares totals against capacity, so two capacities that are equal,
   or that are both ``>= U(m)``, yield identical feasibility verdicts,
   spill decisions, and simulations for every reachable mapping.

2. **Unused-resource slack** (AM602).  :func:`touchable_resources`
   over-approximates what reachable mappings can touch: processor kinds
   from the space's (unpruned) dimensions plus fixed decisions, all
   concrete processors of those kinds (the placer round-robins over the
   whole pool), the closest memories those processors can be handed
   (including every spill-demotion target in ``mem_kinds_for``), and the
   channels on routed paths between touchable memories.  Parameters of
   resources *outside* that set are unobservable — with one deliberate
   subtlety: channel parameters feed networkx's weighted route choice,
   so the prover never reasons "unused channel, therefore immaterial"
   from parameters alone.  Instead it compares the two machines' *route
   tables* hop-for-hop over all touchable memory pairs; an unused
   channel whose parameter change flipped a route shows up there and
   blocks the proof.

3. **Relabeling** (AM603).  Names are pure metadata: the simulator
   keys noise off the mapping key (task-kind names only) and nothing
   else reads ``machine.name`` or ``graph.name`` except the final
   report's ``application`` / ``machine`` fields.  Workloads equal
   modulo a name change are therefore equivalent *modulo a pullback*
   recorded in the proof: rewrite those report fields before serving.
   Verified kind automorphisms (:class:`repro.analysis.symmetry
   .MachineSymmetry`) are surfaced as AM603 self-equivalence
   diagnostics; because capacity slack can create or destroy
   automorphisms (memory pairing requires capacity equality) and the
   canonicalizer folds orbits using them, the prover additionally
   requires the two workloads' automorphism *groups* to be equal.

Soundness notes the lemmas rest on (all re-checked by the "equivalence"
fuzz invariant, which bit-compares fresh noise-free tunes):

* ``quick_bound`` (move ordering) reads critical-path and load terms
  from throughput/launch overhead and ``typical_access_bandwidth`` of
  *touchable* kinds only — and ``typical_access_bandwidth`` maxes over
  all links of a kind shape, which is why access-link parameters must
  be equal for every link whose processor kind is touchable, not just
  for links of touchable concrete processors.
* The full routed bound feeds only pruning, which is report-invariant
  by the PR 5 contract (strictly fewer simulations, identical result).
* ``kind_runtimes`` (finalist ordering) simulates the canonical default
  mapping — covered by touchable-parameter equality plus the capacity
  lemma (its OOM fallback triggers identically).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, Span
from repro.analysis.memfeas import StaticMemoryFeasibility
from repro.analysis.routing import channel_key, routing_model
from repro.analysis.symmetry import MachineSymmetry
from repro.machine.kinds import ProcKind
from repro.util.serialization import to_jsonable
from repro.util.units import format_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.model import Machine
    from repro.mapping.space import SearchSpace
    from repro.taskgraph.graph import TaskGraph

__all__ = [
    "TouchableResources",
    "Workload",
    "EquivalenceProof",
    "footprint_bounds",
    "touchable_resources",
    "graph_body_doc",
    "diagnose_equivalence",
    "prove_equivalent",
    "pullback_result_doc",
]


# ----------------------------------------------------------------------
# Lemma 1: exact static footprint upper bounds
# ----------------------------------------------------------------------
def footprint_bounds(
    graph: "TaskGraph",
    machine: "Machine",
    space: Optional["SearchSpace"] = None,
) -> Dict[str, int]:
    """Per-memory upper bound ``U(m)`` on any reachable mapping's
    footprint, in bytes (0 for memories nothing can reach).

    Exact in the sense that it is the footprint of the (hypothetical)
    mapping that picks *every* option at once: the per-``(memory,
    root)`` interval union over all options of all reachable
    coordinates.  Any real mapping picks a subset of those options, and
    footprint unions are monotone, so its planner-checked total per
    memory is ``<= U(m)``; equally, each single option's own
    contribution is ``<= U(m)``, so capacities at or above ``U`` also
    freeze the AM101 dead-coordinate and AM102 verdicts.

    Options the placement mirrors reject with ``ValueError`` (no
    processor pool on a node, unaddressable memory kind) are
    unreachable — legalization repairs or validity rejects them before
    any simulation — and are skipped.
    """
    if space is None:
        from repro.mapping.space import SearchSpace

        space = SearchSpace(graph, machine)
    feas = StaticMemoryFeasibility(graph, machine)
    fixed = space.fixed_decisions
    per_mem_root: Dict[Tuple[str, str], object] = {}
    for kind in graph.task_kinds:
        dims = space.dims(kind.name)
        decision = fixed.get(kind.name)
        if decision is not None:
            options = [
                (
                    decision.distribute,
                    decision.proc_kind,
                    slot,
                    decision.mem_kinds[slot],
                )
                for slot in range(dims.num_slots)
            ]
        else:
            options = [
                (dist, proc, slot, mem)
                for dist in dims.distribute_options
                for proc in dims.proc_options
                for slot in range(dims.num_slots)
                for mem in dims.mem_options[proc]
            ]
        for dist, proc, slot, mem in options:
            try:
                contrib = feas.slot_contribution(
                    kind.name, dist, proc, slot, mem
                )
            except ValueError:
                continue
            for key, ivs in contrib.items():
                current = per_mem_root.get(key)
                per_mem_root[key] = (
                    ivs if current is None else current.union(ivs)
                )
    bounds: Dict[str, int] = {mem.uid: 0 for mem in machine.memories}
    for (mem_uid, _root), ivs in per_mem_root.items():
        bounds[mem_uid] = bounds.get(mem_uid, 0) + ivs.total
    return bounds


# ----------------------------------------------------------------------
# Lemma 2: what reachable mappings can touch
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TouchableResources:
    """Over-approximation of the resources any reachable mapping (or
    its spill demotions) can observe."""

    proc_kinds: FrozenSet[ProcKind]
    proc_uids: FrozenSet[str]
    mem_uids: FrozenSet[str]
    channel_keys: FrozenSet[str]


def touchable_resources(
    graph: "TaskGraph",
    machine: "Machine",
    space: Optional["SearchSpace"] = None,
) -> TouchableResources:
    """The touchable-resource set of one workload.

    Computed from the *unpruned* dimensions (a superset of anything
    move enumeration will ever propose — pruning only shrinks), plus
    fixed decisions.  Memories include every ``closest_memory`` target
    over all addressable memory kinds of each touchable processor, so
    spill-planner demotions stay inside the set.  Channels are the hops
    of the topology's chosen routes between touchable memory pairs.
    """
    if space is None:
        from repro.mapping.space import SearchSpace

        space = SearchSpace(graph, machine)
    kinds = set()
    fixed = space.fixed_decisions
    for kind in graph.task_kinds:
        decision = fixed.get(kind.name)
        if decision is not None:
            kinds.add(decision.proc_kind)
        else:
            kinds.update(space.dims(kind.name).proc_options)
    procs = [p for p in machine.processors if p.kind in kinds]
    mems = set()
    for proc in procs:
        for mk in machine.mem_kinds_for(proc.kind):
            mem = machine.closest_memory(proc, mk)
            if mem is not None:
                mems.add(mem.uid)
    model = routing_model(machine)
    chans = set()
    ordered = sorted(mems)
    for src in ordered:
        for dst in ordered:
            if src == dst:
                continue
            route = model.route(src, dst)
            if route:
                chans.update(route)
    return TouchableResources(
        proc_kinds=frozenset(kinds),
        proc_uids=frozenset(p.uid for p in procs),
        mem_uids=frozenset(mems),
        channel_keys=frozenset(chans),
    )


# ----------------------------------------------------------------------
# AM6xx diagnostics
# ----------------------------------------------------------------------
def diagnose_equivalence(
    graph: "TaskGraph",
    machine: "Machine",
    space: Optional["SearchSpace"] = None,
) -> List[Diagnostic]:
    """AM601/AM602/AM603 findings for one workload."""
    if space is None:
        from repro.mapping.space import SearchSpace

        space = SearchSpace(graph, machine)
    out: List[Diagnostic] = []
    bounds = footprint_bounds(graph, machine, space)
    touch = touchable_resources(graph, machine, space)
    for mem in machine.memories:
        bound = bounds.get(mem.uid, 0)
        if mem.uid in touch.mem_uids and mem.capacity > bound:
            out.append(
                Diagnostic(
                    "AM601",
                    f"capacity {format_bytes(mem.capacity)} exceeds the "
                    f"reachable footprint bound {format_bytes(bound)}; "
                    f"any capacity >= the bound is unobservable",
                    Span(memory=mem.uid),
                )
            )
    for pk in machine.proc_kinds():
        if pk not in touch.proc_kinds:
            out.append(
                Diagnostic(
                    "AM602",
                    f"processor kind {pk.value} is unreachable: no "
                    f"searched or fixed decision can place work on it",
                )
            )
    for mem in machine.memories:
        if mem.uid not in touch.mem_uids:
            out.append(
                Diagnostic(
                    "AM602",
                    "memory is unreachable: no reachable placement or "
                    "spill demotion maps a collection here",
                    Span(memory=mem.uid),
                )
            )
    for chan in machine.channels:
        if channel_key(chan.mem_a, chan.mem_b) not in touch.channel_keys:
            out.append(
                Diagnostic(
                    "AM602",
                    f"channel {chan.mem_a}<->{chan.mem_b} lies on no "
                    f"route between reachable memories",
                )
            )
    for rel in MachineSymmetry(graph, machine).automorphisms():
        out.append(
            Diagnostic(
                "AM603",
                f"machine is self-equivalent modulo the verified "
                f"relabeling [{rel.describe()}]",
            )
        )
    return out


# ----------------------------------------------------------------------
# The prover
# ----------------------------------------------------------------------
def graph_body_doc(graph: "TaskGraph") -> dict:
    """The graph's structural identity *without* its name (names are
    report metadata handled by the relabel lemma)."""
    return {
        "launches": [to_jsonable(launch) for launch in graph.launches],
        "dependences": [to_jsonable(dep) for dep in graph.dependences],
    }


@dataclass
class Workload:
    """One canonicalized workload as the prover sees it."""

    graph: "TaskGraph"
    machine: "Machine"
    config: Dict[str, object]
    start_doc: Optional[dict] = None
    space: Optional["SearchSpace"] = None

    def __post_init__(self) -> None:
        if self.space is None:
            from repro.mapping.space import SearchSpace

            self.space = SearchSpace(self.graph, self.machine)


@dataclass
class EquivalenceProof:
    """Outcome of :func:`prove_equivalent`.

    ``equivalent`` with an empty ``relabel`` means byte-identical
    service is sound as-is; a non-empty ``relabel`` maps result-document
    fields (``application`` / ``machine``) to the values the cached
    report must be rewritten to before serving.  When not equivalent,
    ``witness`` names the first blocking obligation.
    """

    equivalent: bool
    log: List[str] = field(default_factory=list)
    witness: Optional[str] = None
    relabel: Dict[str, str] = field(default_factory=dict)

    def render(self) -> str:
        lines = list(self.log)
        if self.equivalent:
            lines.append("verdict: equivalent")
        else:
            lines.append(f"verdict: not proven ({self.witness})")
        return "\n".join(lines)

    def to_doc(self) -> dict:
        return {
            "format": "automap-equivalence-proof-v1",
            "equivalent": self.equivalent,
            "witness": self.witness,
            "relabel": dict(self.relabel),
            "log": list(self.log),
        }


def _automorphism_group(graph: "TaskGraph", machine: "Machine"):
    """The verified automorphism group as a hashable set (the
    relabelings' dict fields are unhashable)."""
    return {
        (
            tuple(sorted((k.value, v.value) for k, v in rel.proc_map.items())),
            tuple(sorted((k.value, v.value) for k, v in rel.mem_map.items())),
        )
        for rel in MachineSymmetry(graph, machine).automorphisms()
    }


def _dims_doc(space: "SearchSpace") -> dict:
    out = {}
    for kind in space.graph.task_kinds:
        dims = space.dims(kind.name)
        out[kind.name] = {
            "slots": list(dims.slot_names),
            "distribute": list(dims.distribute_options),
            "procs": [p.value for p in dims.proc_options],
            "mems": {
                p.value: [m.value for m in mems]
                for p, mems in dims.mem_options.items()
            },
        }
    return out


def prove_equivalent(w1: Workload, w2: Workload) -> EquivalenceProof:
    """Prove ``w1`` and ``w2`` observationally equivalent, or report the
    blocking witness.  Sound, not complete: an ``equivalent`` verdict
    guarantees byte-identical tuner output (after the recorded name
    pullback); any doubt returns a witness instead.
    """
    log: List[str] = []
    relabel: Dict[str, str] = {}

    def blocked(witness: str) -> EquivalenceProof:
        return EquivalenceProof(False, log, witness=witness)

    # Obligation 0: identical semantic search configuration.
    c1, c2 = dict(w1.config), dict(w2.config)
    if c1 != c2:
        keys = sorted(
            k for k in set(c1) | set(c2) if c1.get(k) != c2.get(k)
        )
        return blocked(f"search config differs on {', '.join(keys)}")
    log.append("config: semantic search knobs equal")

    # Obligation 1: identical fixed decisions.
    if to_jsonable(w1.space.fixed_decisions) != to_jsonable(
        w2.space.fixed_decisions
    ):
        return blocked("fixed decisions differ")
    log.append("space: fixed decisions equal")

    # Obligation 2: graphs equal modulo name (name is report metadata;
    # noise streams key off task-kind names, which live in the body).
    if graph_body_doc(w1.graph) != graph_body_doc(w2.graph):
        return blocked("task graphs differ structurally")
    if w1.graph.name != w2.graph.name:
        relabel["application"] = w2.graph.name
        log.append(
            f"graph: equal modulo name "
            f"{w1.graph.name!r} -> {w2.graph.name!r} (pullback recorded)"
        )
    else:
        log.append("graph: identical")

    # Obligation 3: identical canonicalized start mappings.
    def canonical_start(w: Workload) -> Optional[dict]:
        if w.start_doc is None:
            return None
        from repro.analysis.canonical import Canonicalizer
        from repro.mapping.io import mapping_from_doc, mapping_to_doc

        canon = Canonicalizer(w.graph, w.machine)
        return mapping_to_doc(canon.canonical(mapping_from_doc(w.start_doc)))

    if to_jsonable(canonical_start(w1)) != to_jsonable(canonical_start(w2)):
        return blocked("canonicalized start mappings differ")
    log.append("start: canonical representatives equal")

    # Obligation 4: identical searched dimensions (defense in depth —
    # equal machines below imply it, but the check is cheap and local).
    if _dims_doc(w1.space) != _dims_doc(w2.space):
        return blocked("search dimensions differ")

    m1, m2 = w1.machine, w2.machine
    touch = touchable_resources(w1.graph, m1, w1.space)
    bounds = footprint_bounds(w1.graph, m1, w1.space)

    # Obligation 5: processors pair index-wise; parameters equal for
    # touchable kinds (typical_access_bandwidth and quick_bound read
    # kind-level aggregates, so every processor of a touchable kind is
    # observable, pooled or not).
    if len(m1.processors) != len(m2.processors):
        return blocked("processor inventories differ in size")
    slack_procs: List[str] = []
    for a, b in zip(m1.processors, m2.processors):
        if (a.uid, a.kind, a.node, a.socket, a.device) != (
            b.uid,
            b.kind,
            b.node,
            b.socket,
            b.device,
        ):
            return blocked(f"processor {a.uid} structure differs")
        same = (
            a.throughput == b.throughput
            and a.launch_overhead == b.launch_overhead
        )
        if a.kind in touch.proc_kinds:
            if not same:
                return blocked(
                    f"reachable processor {a.uid} ({a.kind.value}) "
                    f"differs in throughput or launch overhead"
                )
        elif not same:
            slack_procs.append(a.uid)
    if slack_procs:
        log.append(
            f"procs: AM602 slack on unreachable "
            f"{', '.join(slack_procs)}; all reachable kinds equal"
        )
    else:
        log.append("procs: parameters equal")

    # Obligation 6: memories pair index-wise; capacities equal, or both
    # at/above the footprint bound (lemma AM601).
    if len(m1.memories) != len(m2.memories):
        return blocked("memory inventories differ in size")
    for a, b in zip(m1.memories, m2.memories):
        if (a.uid, a.kind, a.node, a.socket, a.device) != (
            b.uid,
            b.kind,
            b.node,
            b.socket,
            b.device,
        ):
            return blocked(f"memory {a.uid} structure differs")
        if a.capacity == b.capacity:
            continue
        bound = bounds.get(a.uid, 0)
        if a.capacity < bound or b.capacity < bound:
            return blocked(
                f"memory {a.uid} capacities "
                f"{format_bytes(a.capacity)} vs {format_bytes(b.capacity)} "
                f"differ below the footprint bound {format_bytes(bound)}"
            )
        log.append(
            f"mem {a.uid}: AM601 slack — capacities "
            f"{format_bytes(a.capacity)} vs {format_bytes(b.capacity)} "
            f"both >= footprint bound {format_bytes(bound)}"
        )

    # Obligation 7: access links — same edge set; parameters equal for
    # every link whose processor kind is touchable.
    links1 = {(li.proc, li.mem): li for li in m1.access_links}
    links2 = {(li.proc, li.mem): li for li in m2.access_links}
    if set(links1) != set(links2):
        return blocked("access-link sets differ")
    slack_links: List[str] = []
    for key in links1:
        la, lb = links1[key], links2[key]
        same = la.bandwidth == lb.bandwidth and la.latency == lb.latency
        if m1.processor(la.proc).kind in touch.proc_kinds:
            if not same:
                return blocked(
                    f"access link {la.proc}->{la.mem} (reachable kind) "
                    f"differs in bandwidth or latency"
                )
        elif not same:
            slack_links.append(f"{la.proc}->{la.mem}")
    if slack_links:
        log.append(
            f"links: AM602 slack on {', '.join(sorted(slack_links))}"
        )
    else:
        log.append("links: parameters equal")

    # Obligation 8: channels — same edge set; parameters equal for
    # channels on touchable routes (untouchable ones may differ only if
    # obligation 9's route tables still agree).
    chans1 = {channel_key(c.mem_a, c.mem_b): c for c in m1.channels}
    chans2 = {channel_key(c.mem_a, c.mem_b): c for c in m2.channels}
    if set(chans1) != set(chans2):
        return blocked("channel sets differ")
    slack_chans: List[str] = []
    for key in chans1:
        ca, cb = chans1[key], chans2[key]
        same = ca.bandwidth == cb.bandwidth and ca.latency == cb.latency
        if key in touch.channel_keys:
            if not same:
                return blocked(
                    f"channel {ca.mem_a}<->{ca.mem_b} lies on a "
                    f"reachable route and differs in bandwidth or latency"
                )
        elif not same:
            slack_chans.append(f"{ca.mem_a}<->{ca.mem_b}")
    if slack_chans:
        log.append(
            f"channels: AM602 slack on {', '.join(sorted(slack_chans))}"
        )
    else:
        log.append("channels: parameters equal")

    # Obligation 9: route tables agree hop-for-hop over every touchable
    # memory pair.  Channel parameters weight networkx's path choice, so
    # even an unused channel's slack must not have flipped a route.
    topo1 = routing_model(m1).topology
    topo2 = routing_model(m2).topology
    ordered = sorted(touch.mem_uids)
    for src in ordered:
        for dst in ordered:
            if src == dst:
                continue
            p1 = topo1.copy_path(src, dst)
            p2 = topo2.copy_path(src, dst)
            if (p1 is None) != (p2 is None):
                return blocked(
                    f"route {src}->{dst} exists on only one machine"
                )
            if p1 is None:
                continue
            h1 = [
                (tuple(sorted((h.mem_a, h.mem_b))), h.bandwidth, h.latency)
                for h in p1.hops
            ]
            h2 = [
                (tuple(sorted((h.mem_a, h.mem_b))), h.bandwidth, h.latency)
                for h in p2.hops
            ]
            if h1 != h2:
                return blocked(f"route {src}->{dst} differs between machines")
    log.append(
        f"routes: {len(ordered)}x{len(ordered) - 1} touchable-pair "
        f"route tables identical hop-for-hop"
    )

    # Obligation 10: equal automorphism groups — capacity/parameter
    # slack can create or destroy foldable relabelings, and the
    # canonicalizer folds orbits using them.
    if _automorphism_group(w1.graph, m1) != _automorphism_group(
        w2.graph, m2
    ):
        return blocked(
            "machine-symmetry automorphism groups differ "
            "(slack changed the foldable relabelings)"
        )
    log.append("symmetry: automorphism groups equal")

    # Obligation 11: machine name (pure report metadata).
    if m1.name != m2.name:
        relabel["machine"] = m2.name
        log.append(
            f"machine: equal modulo name "
            f"{m1.name!r} -> {m2.name!r} (pullback recorded)"
        )
    else:
        log.append("machine: identical")

    return EquivalenceProof(True, log, relabel=relabel)


def pullback_result_doc(
    doc: dict, proof: EquivalenceProof, fingerprint: str
) -> dict:
    """Rewrite a cached result document for an equivalent workload: the
    new fingerprint plus the proof's recorded name relabelings.  These
    are the only result fields derived from names; everything else is
    byte-identical by the proof."""
    out = dict(doc)
    out["fingerprint"] = fingerprint
    for fieldname, value in proof.relabel.items():
        out[fieldname] = value
    return out
