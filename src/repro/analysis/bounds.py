"""Static cost bounds: a sound lower bound on simulated makespan.

The paper treats the runtime as a black-box oracle, so every candidate
mapping costs a full discrete-event simulation (§3.1).  But the machine
model of §2 is explicit enough to *price* a mapping without simulating
it: this pass computes a lower bound ``LB(mapping)`` on the simulator's
makespan from four independently-sound components,

* **critical path** — the longest dependence chain, each launch priced
  at its best-case per-point duration on the chosen processor kind
  (fastest processor, cheapest access links) times the unavoidable
  serialisation factor ``ceil(points-per-node / pool-size)``;
* **load** — for every concrete processor, the total best-case busy
  time of the point tasks round-robin placement provably assigns to it;
* **communication** — the mandatory transfers of a write-authority
  dataflow mirror of the coherence layer, priced two ways and combined
  with ``max``: *routed* per-channel congestion (each transfer is routed
  over the executor's own channel path via
  :mod:`repro.analysis.routing`, and every channel's bytes are divided
  by its DMA bandwidth — the executor serialises traffic per channel,
  so the busiest channel's busy time bounds the makespan) and the older
  *incident* aggregate (each memory's total traffic divided by the sum
  of its incident channel bandwidths — which also covers transfers the
  routing model cannot route);
* **routed schedule** — a conservative replay of the executor's own
  list schedule: launches are walked in the executor's topological
  order, every point task is reserved on its exact processor timeline
  (the placer mirror names the concrete processor, so durations use the
  exact link and throughput arithmetic), and every mandatory transfer
  of the flow mirror is routed hop-by-hop over the executor's channel
  paths against mirrored per-channel timelines.  The mirror performs a
  subset of the executor's events (virgin-data copies are missing,
  coalesced writes can merge copy fragments) in the same processing
  order with operand-wise smaller inputs, and the executor's timelines
  never backfill (``start = max(ready, free)``), so each mirrored
  finish time — and hence the mirrored makespan — is a lower bound on
  the simulated one.  This is the component that prices *copy stalls*:
  a consumer whose inputs cross the interconnect cannot start before
  the routed copies land, which neither the pure chain nor the load
  component can see.

``LB = max(components)``, and the soundness contract (see DESIGN.md) is
that ``LB(mapping) <= Simulator.run(mapping).makespan`` holds *in
floating point*, not merely in real arithmetic: the critical-path and
load components replay the executor's own float recurrences with
term-by-term smaller operands (IEEE rounding is monotone), and the
communication and routed-schedule components — whose aggregation does
not mirror a single executor float chain everywhere (write coalescing
can merge two copy fragments into one) — are deflated by ``1 - 1e-9``,
orders of magnitude more than the worst-case accumulated rounding of
the sums involved.
The search uses the bound for branch-and-bound pruning: a candidate
whose bound already exceeds the incumbent provably cannot win, so the
oracle can skip its simulation without changing any search decision.

Soundness is deliberately conservative where the runtime is subtle:

* virgin (never-written) data is materialised for free in its first
  reader's memory, exactly like the executor's ``plan_read`` — the
  resulting copies are order-dependent, which is sound to mirror only
  because the flow walk replays reads in the executor's own
  (launch, point, slot) processing order;
* copy latencies, store-and-forward hops, and through-traffic on a
  memory's channels are ignored (they only add real time);
* a partial mapping (some kinds undecided) falls back to the critical
  path alone, pricing undecided kinds at their cheapest option.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, Span
from repro.analysis.routing import routing_model
from repro.machine.kinds import ADDRESSABLE, MemKind, ProcKind
from repro.machine.model import Machine
from repro.machine.topology import Topology
from repro.mapping.decision import MappingDecision
from repro.mapping.mapping import Mapping
from repro.runtime.copies import DMA_EFFICIENCY
from repro.runtime.placement import Placer
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.task import TaskLaunch

__all__ = [
    "BoundBreakdown",
    "StaticBoundAnalyzer",
    "FLOAT_SAFETY",
    "bound_guided_mapping",
]

#: Relative deflation applied to bound components whose derivation
#: aggregates across resources instead of replaying one executor float
#: chain.  The true inequality holds in real arithmetic with slack (copy
#: latencies, DMA setup); 1e-9 dwarfs any accumulated float rounding.
FLOAT_SAFETY = 1.0 - 1e-9

#: Share of all routed bytes a single channel must carry before AM501
#: calls it the interconnect bottleneck of a placement.
AM501_SHARE = 0.5


@dataclass(frozen=True)
class BoundBreakdown:
    """The components of one mapping's lower bound.

    ``comm_memory``/``comm_edge`` name the heaviest memory boundary and
    its top contributing (consumer kind, collection root) edge — the
    evidence AM402 reports for communication-dominated placements.

    ``communication`` is the max of the routed per-channel congestion
    bound and the incident-bandwidth bound; ``communication_incident``
    keeps the incident component alone so the routed-vs-incident gap is
    observable, and ``comm_channel``/``comm_channel_share`` name the
    most congested channel and its share of all routed bytes — the
    evidence AM501 reports for bottleneck interconnects.

    ``schedule`` is the routed schedule-replay bound: the makespan of a
    conservative mirror of the executor's list schedule (exact
    processor reservations plus routed, channel-contended copies).  It
    dominates the chain and load components whenever copy stalls are on
    the critical path; zero for partial mappings.
    """

    critical_path: float
    load: float
    communication: float
    comm_memory: Optional[str] = None
    comm_edge: Optional[Tuple[str, str]] = None  # (consumer kind, root)
    comm_edge_bytes: int = 0
    communication_incident: float = 0.0
    comm_channel: Optional[str] = None
    comm_channel_share: float = 0.0
    schedule: float = 0.0

    @property
    def total(self) -> float:
        """The combined lower bound: max of the sound components."""
        return max(
            self.critical_path,
            self.load,
            self.communication,
            self.schedule,
        )


class _FlowSegment:
    """One written byte range of a root: its authoritative memory (with
    the lower-bound time the write became visible) and the memories
    holding a still-valid read replica (with their commit times)."""

    __slots__ = ("lo", "hi", "mem", "time", "caches")

    def __init__(
        self,
        lo: int,
        hi: int,
        mem: str,
        time: float,
        caches: Dict[str, float],
    ) -> None:
        self.lo = lo
        self.hi = hi
        self.mem = mem
        self.time = time
        self.caches = caches


class _FlowMap:
    """A mirror of the coherence layer's segment map
    (:class:`repro.runtime.instances.SegmentMap`).

    Authority is created by explicit task writes *and* by virgin-data
    materialisation: like ``plan_read``, reading a never-written range
    grants the first reader's memory free authority over it, and later
    readers elsewhere must copy from that memory.  Which memory wins is
    read-order dependent — mirroring it is only sound because the bound
    walk replays reads in exactly the executor's (launch, point, slot)
    processing order, so the mirror reproduces the executor's copy set
    (same sources, same destinations; write coalescing can only merge
    adjacent fragments, dropping hop latencies).  Times carried on
    authorities and replicas are lower bounds on the executor's own, so
    the schedule replay can reuse them as copy floors and
    local-readiness terms.

    The segment list is kept sorted by ``lo`` and non-overlapping, so
    every operation locates its range by bisection instead of scanning.
    """

    __slots__ = ("_segments", "_los")

    def __init__(self) -> None:
        self._segments: List[_FlowSegment] = []
        #: Parallel list of segment ``lo`` offsets for bisection.
        self._los: List[int] = []

    def _split_at(self, pos: int) -> None:
        i = bisect_right(self._los, pos) - 1
        if i >= 0:
            seg = self._segments[i]
            if seg.lo < pos < seg.hi:
                right = _FlowSegment(
                    pos, seg.hi, seg.mem, seg.time, dict(seg.caches)
                )
                seg.hi = pos
                self._segments.insert(i + 1, right)
                self._los.insert(i + 1, pos)

    def write(self, lo: int, hi: int, mem: str, time: float = 0.0) -> None:
        """Authority for ``[lo, hi)`` moves to ``mem`` (visible at
        ``time``); replicas die."""
        if hi <= lo:
            return
        self._split_at(lo)
        self._split_at(hi)
        # After splitting, every overlapping segment is contained.
        i = bisect_left(self._los, lo)
        j = i
        n = len(self._segments)
        while j < n and self._segments[j].lo < hi:
            j += 1
        self._segments[i:j] = [_FlowSegment(lo, hi, mem, time, {})]
        self._los[i:j] = [lo]

    def read(
        self, lo: int, hi: int, dst: str
    ) -> Tuple[float, List[Tuple[str, int, int, float]]]:
        """What it takes to read ``[lo, hi)`` in ``dst``.

        Returns ``(local_ready, pieces)``: the latest availability among
        parts already valid in ``dst`` and the transfers ``(src_mem, lo,
        hi, src_time)`` still required — the planner mirror of
        ``SegmentMap.plan_read``, including its virgin-gap rule: ranges
        no segment covers are materialised in ``dst`` for free.  Copy
        replicas are recorded separately via :meth:`commit` once the
        copy has a finish time.
        """
        if hi <= lo:
            return 0.0, []
        self._split_at(lo)
        self._split_at(hi)
        local = 0.0
        pieces: List[Tuple[str, int, int, float]] = []
        overlapping: List[_FlowSegment] = []
        i = bisect_left(self._los, lo)
        n = len(self._segments)
        while i < n:
            seg = self._segments[i]
            if seg.lo >= hi:
                break
            # After splitting, every overlapping segment is contained.
            overlapping.append(seg)
            i += 1
        covered = lo
        for seg in overlapping:
            if seg.lo > covered:
                # Virgin gap: materialise in dst for free (the writes
                # insert into ranges disjoint from every overlapping
                # segment, so the snapshot above stays valid).
                self.write(covered, seg.lo, dst, 0.0)
            covered = max(covered, seg.hi)
            if seg.mem == dst:
                if seg.time > local:
                    local = seg.time
            elif dst in seg.caches:
                cached = seg.caches[dst]
                if cached > local:
                    local = cached
            else:
                pieces.append((seg.mem, seg.lo, seg.hi, seg.time))
        if covered < hi:
            self.write(covered, hi, dst, 0.0)
        return local, pieces

    def commit(self, lo: int, hi: int, mem: str, time: float) -> None:
        """Record that ``[lo, hi)`` has a valid replica in ``mem`` as of
        ``time`` (after a mirrored copy completed)."""
        if hi <= lo:
            return
        self._split_at(lo)
        self._split_at(hi)
        i = bisect_left(self._los, lo)
        n = len(self._segments)
        while i < n:
            seg = self._segments[i]
            if seg.lo >= hi:
                break
            seg.caches[mem] = time
            i += 1

    def clone(self) -> "_FlowMap":
        copy = _FlowMap.__new__(_FlowMap)
        copy._segments = [
            _FlowSegment(s.lo, s.hi, s.mem, s.time, dict(s.caches))
            for s in self._segments
        ]
        copy._los = list(self._los)
        return copy


class _CommState:
    """Accumulated flow-walk state: per-root flow maps, the integer
    traffic tallies, and the schedule-replay timelines (per-launch
    finish floors, per-processor and per-channel ``free_at`` mirrors).
    The walk state is a deterministic function of the mapping prefix it
    consumed, so any prefix/suffix recomposition of the walk reproduces
    the same final state bit-for-bit."""

    __slots__ = (
        "flows",
        "ingress",
        "egress",
        "edge_bytes",
        "pair_bytes",
        "finish",
        "proc_free",
        "chan_free",
    )

    def __init__(self) -> None:
        self.flows: Dict[str, _FlowMap] = {}
        self.ingress: Dict[str, int] = {}
        self.egress: Dict[str, int] = {}
        self.edge_bytes: Dict[Tuple[str, str, str], int] = {}
        #: (src mem uid, dst mem uid) -> bytes; feeds the routed bound.
        self.pair_bytes: Dict[Tuple[str, str], int] = {}
        #: launch uid -> lower bound on its group finish time.
        self.finish: Dict[str, float] = {}
        #: concrete processor uid -> mirrored timeline ``free_at``.
        self.proc_free: Dict[str, float] = {}
        #: channel key -> mirrored timeline ``free_at``.
        self.chan_free: Dict[str, float] = {}

    def clone(self) -> "_CommState":
        copy = _CommState.__new__(_CommState)
        copy.flows = {root: fm.clone() for root, fm in self.flows.items()}
        copy.ingress = dict(self.ingress)
        copy.egress = dict(self.egress)
        copy.edge_bytes = dict(self.edge_bytes)
        copy.pair_bytes = dict(self.pair_bytes)
        copy.finish = dict(self.finish)
        copy.proc_free = dict(self.proc_free)
        copy.chan_free = dict(self.chan_free)
        return copy


class StaticBoundAnalyzer:
    """Computes sound makespan lower bounds for (possibly partial)
    mappings of one ``(graph, machine)`` pair."""

    def __init__(self, graph: TaskGraph, machine: Machine) -> None:
        self.graph = graph
        self.machine = machine
        self._placer = Placer(machine)
        self._order = graph.topological_order()
        self._kind_names = {k.name for k in graph.task_kinds}

        # Best-case device characteristics per kind shape.
        self._max_throughput: Dict[ProcKind, float] = {}
        self._min_overhead: Dict[ProcKind, float] = {}
        for proc in machine.processors:
            best = self._max_throughput.get(proc.kind)
            if best is None or proc.throughput > best:
                self._max_throughput[proc.kind] = proc.throughput
            low = self._min_overhead.get(proc.kind)
            if low is None or proc.launch_overhead < low:
                self._min_overhead[proc.kind] = proc.launch_overhead
        self._max_bandwidth: Dict[Tuple[ProcKind, MemKind], float] = {}
        self._min_latency: Dict[Tuple[ProcKind, MemKind], float] = {}
        for link in machine.access_links:
            shape = (
                machine.processor(link.proc).kind,
                machine.memory(link.mem).kind,
            )
            bw = self._max_bandwidth.get(shape)
            if bw is None or link.bandwidth > bw:
                self._max_bandwidth[shape] = link.bandwidth
            lat = self._min_latency.get(shape)
            if lat is None or link.latency < lat:
                self._min_latency[shape] = link.latency

        self._pool_size: Dict[Tuple[ProcKind, int], int] = {}
        self._pools: Dict[Tuple[ProcKind, int], List[str]] = {}
        for pk in machine.proc_kinds():
            for node in range(machine.num_nodes):
                procs = machine.processors_of_kind(pk, node)
                self._pool_size[(pk, node)] = len(procs)
                self._pools[(pk, node)] = [p.uid for p in procs]

        #: DMA bandwidth aggregate over each memory's incident channels.
        self._channel_bw: Dict[str, float] = {}
        for mem in machine.memories:
            total = sum(c.bandwidth for c in machine.channels_of(mem.uid))
            if total > 0:
                self._channel_bw[mem.uid] = DMA_EFFICIENCY * total

        #: The executor's channel-path routes (shared per machine).
        self._routing = routing_model(machine)
        #: The executor's own hop-level topology, for the schedule
        #: replay's exact copy arithmetic.
        self._topology = Topology(machine)
        # Routed-vs-incident tightening observed across fresh full
        # breakdowns (ratio >= 1; the report uses the deterministic
        # :meth:`gap_ratio` of one mapping instead of this running mean).
        self._gap_sum = 0.0
        self._gap_count = 0

        # Caches (all keyed on deterministic values).
        self._node_count_cache: Dict[Tuple[int, bool], Tuple[int, ...]] = {}
        self._duration_cache: Dict[Tuple, float] = {}
        self._best_duration_cache: Dict[str, Tuple[float, int]] = {}
        self._placement_cache: Dict[Tuple, Tuple[Tuple[str, ...], ...]] = {}
        self._interval_cache: Dict[Tuple, Tuple[Tuple[int, int], ...]] = {}
        self._breakdown_cache: Dict[Tuple, BoundBreakdown] = {}
        self._quick_cache: Dict[Tuple, float] = {}
        self._replay_ops_cache: Dict[Tuple, Optional[Tuple]] = {}

        # Incremental flow-walk state: along a search chain consecutive
        # bound requests differ in few kinds, so the walk replays the
        # unchanged prefix from a snapshot (same scheme as the runtime's
        # incremental engine; sound here because the walk state is pure
        # integer bookkeeping, so recomposition is exact).
        self._comm_first: Dict[str, int] = {}
        for index, launch in enumerate(self._order):
            self._comm_first.setdefault(launch.kind.name, index)
        self._comm_boundaries = set(self._comm_first.values())
        self._comm_base: Optional[Dict[str, Tuple]] = None
        self._comm_snapshots: Dict[int, _CommState] = {}

        #: How many bounds were requested / served from the cache.
        self.checks = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------
    # Structural helpers
    # ------------------------------------------------------------------
    def _node_counts(self, size: int, distribute: bool) -> Tuple[int, ...]:
        """Point tasks per node under the blocked split (placer mirror)."""
        key = (size, distribute)
        counts = self._node_count_cache.get(key)
        if counts is None:
            nodes = self.machine.num_nodes
            if not distribute:
                counts = (size,) + (0,) * (nodes - 1)
            else:
                # |{i : i*N//S == n}| = ceil((n+1)S/N) - ceil(nS/N),
                # with -ceil(a/b) spelled floor(-a/b) for int arithmetic.
                counts = tuple(
                    -(-(n + 1) * size // nodes) + (-n * size // nodes)
                    for n in range(nodes)
                )
            self._node_count_cache[key] = counts
        return counts

    def _serial_factor(
        self, launch: TaskLaunch, distribute: bool, pk: ProcKind
    ) -> int:
        """Max points any single processor provably runs serially."""
        factor = 0
        for node, cnt in enumerate(self._node_counts(launch.size, distribute)):
            if cnt == 0:
                continue
            pool = self._pool_size.get((pk, node), 0)
            if pool == 0:
                continue  # invalid option; contribute nothing (sound)
            factor = max(factor, -(-cnt // pool))
        return factor

    def _point_duration(
        self,
        launch: TaskLaunch,
        pk: ProcKind,
        mem_kinds: Tuple[MemKind, ...],
    ) -> Optional[float]:
        """Best-case per-point duration, built with the executor's exact
        float operations over term-by-term smaller operands.

        Returns ``None`` when a slot's memory kind is unreachable from
        ``pk`` on this machine (an invalid option).
        """
        key = (launch.uid, pk, mem_kinds)
        cached = self._duration_cache.get(key)
        if cached is not None:
            return cached
        access = 0.0
        for slot_index, slot in enumerate(launch.kind.slots):
            shape = (pk, mem_kinds[slot_index])
            bandwidth = self._max_bandwidth.get(shape)
            if bandwidth is None:
                return None
            passes = int(slot.privilege.reads) + int(slot.privilege.writes)
            bytes_pp = launch.arg_bytes_per_point(slot_index)
            access += (
                self._min_latency[shape] + bytes_pp / bandwidth
            ) * passes
        compute = 0.0
        point_flops = launch.flops / launch.size
        if point_flops > 0:
            adjust = (
                launch.kind.gpu_speedup if pk == ProcKind.GPU else 1.0
            )
            compute = point_flops / (self._max_throughput[pk] * adjust)
        duration = self._min_overhead[pk] + compute + access
        self._duration_cache[key] = duration
        return duration

    def _best_option(self, launch: TaskLaunch) -> Tuple[float, int]:
        """Cheapest ``(duration, serial factor)`` over every legal
        decision — the price of a kind the mapping leaves undecided.

        The two minima are taken independently (a sound under-estimate
        even if no single decision achieves both).
        """
        cached = self._best_duration_cache.get(launch.uid)
        if cached is not None:
            return cached
        best_d: Optional[float] = None
        best_m: Optional[int] = None
        for pk in self.machine.proc_kinds():
            if not launch.kind.has_variant(pk):
                continue
            kinds_for = self.machine.mem_kinds_for(pk)
            if not kinds_for:
                continue
            # Per-slot cheapest access term, accumulated in slot order
            # exactly like the executor's access_seconds.
            access = 0.0
            feasible = True
            for slot_index, slot in enumerate(launch.kind.slots):
                passes = int(slot.privilege.reads) + int(
                    slot.privilege.writes
                )
                bytes_pp = launch.arg_bytes_per_point(slot_index)
                term: Optional[float] = None
                for mk in kinds_for:
                    shape = (pk, mk)
                    bandwidth = self._max_bandwidth.get(shape)
                    if bandwidth is None:
                        continue
                    candidate = (
                        self._min_latency[shape] + bytes_pp / bandwidth
                    ) * passes
                    if term is None or candidate < term:
                        term = candidate
                if term is None:
                    feasible = False
                    break
                access += term
            if not feasible:
                continue
            compute = 0.0
            point_flops = launch.flops / launch.size
            if point_flops > 0:
                adjust = (
                    launch.kind.gpu_speedup if pk == ProcKind.GPU else 1.0
                )
                compute = point_flops / (self._max_throughput[pk] * adjust)
            duration = self._min_overhead[pk] + compute + access
            if best_d is None or duration < best_d:
                best_d = duration
            for distribute in (False, True):
                factor = self._serial_factor(launch, distribute, pk)
                if best_m is None or factor < best_m:
                    best_m = factor
        result = (best_d or 0.0, best_m or 0)
        self._best_duration_cache[launch.uid] = result
        return result

    def _placements(
        self, launch: TaskLaunch, decision: MappingDecision
    ) -> Tuple[Tuple[str, ...], Tuple[Tuple[str, ...], ...]]:
        """Placer mirror: per-point processor uids and per-point
        per-slot memory uids, cached per (launch, decision)."""
        key = (launch.uid, decision.key())
        cached = self._placement_cache.get(key)
        if cached is None:
            placements = self._placer.place_launch(launch, decision)
            procs = tuple(p.proc.uid for p in placements)
            mems = tuple(
                tuple(m.uid for m in p.mems) for p in placements
            )
            cached = (procs, mems)
            self._placement_cache[key] = cached
        return cached

    def _shard_intervals(
        self, launch: TaskLaunch, slot_index: int, for_write: bool
    ) -> Tuple[Tuple[int, int], ...]:
        key = (launch.uid, slot_index, for_write)
        cached = self._interval_cache.get(key)
        if cached is None:
            cached = tuple(
                launch.shard_interval(slot_index, point, for_write=for_write)
                for point in range(launch.size)
            )
            self._interval_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------
    def _chain_components(
        self, mapping: Mapping, partial: bool
    ) -> Tuple[float, float]:
        """Critical-path and per-processor-load lower bounds.

        Both replay the executor's float recurrences (``finish = max(
        ready over preds) then repeated ``+= duration``; ``busy +=
        duration`` per reservation in topological order) with smaller
        operands, so each is ``<=`` the simulated makespan *as floats*.
        """
        longest: Dict[str, float] = {}
        cp = 0.0
        busy: Dict[str, float] = {}
        for launch in self._order:
            ready = 0.0
            for dep in self.graph.predecessors(launch.uid):
                upstream = longest[dep.src]
                if upstream > ready:
                    ready = upstream
            if launch.kind.name in mapping:
                decision = mapping.decision(launch.kind.name)
                duration = self._point_duration(
                    launch, decision.proc_kind, decision.mem_kinds
                )
                if duration is None:  # invalid decision; price at best
                    duration, factor = self._best_option(launch)
                else:
                    factor = self._serial_factor(
                        launch, decision.distribute, decision.proc_kind
                    )
                    if not partial:
                        counts = self._node_counts(
                            launch.size, decision.distribute
                        )
                        for node, cnt in enumerate(counts):
                            if cnt == 0:
                                continue
                            pool = self._pools.get(
                                (decision.proc_kind, node), []
                            )
                            if not pool:
                                continue
                            size = len(pool)
                            for j, proc_uid in enumerate(pool):
                                assigned = (cnt + size - 1 - j) // size
                                if assigned == 0:
                                    break
                                acc = busy.get(proc_uid, 0.0)
                                for _ in range(assigned):
                                    acc += duration
                                busy[proc_uid] = acc
            else:
                duration, factor = self._best_option(launch)
            acc = ready
            for _ in range(factor):
                acc += duration
            longest[launch.uid] = acc
            if acc > cp:
                cp = acc
        load = max(busy.values(), default=0.0)
        return cp, load

    def _replay_ops(self, launch: TaskLaunch, decision) -> Optional[Tuple]:
        """The launch's schedule-replay operations under ``decision`` —
        a pure function of the pair, cached across the search chain.

        Returns ``(points, writes)``: ``points`` is a tuple, one entry
        per point task in placement order, of ``(proc_uid, duration,
        reads)`` where ``duration`` replays the executor's exact float
        arithmetic on the concrete processor and its concrete access
        links, and ``reads`` lists ``(root, dst_mem, lo, hi)`` for the
        point's non-empty read shards in slot order; ``writes`` is a
        tuple of ``(root, lo, hi, mem)`` write ops (coalesced where that
        provably cannot change the flow state).  ``None`` marks an
        invalid decision (no placement, no flow, no schedule).
        """
        key = (launch.uid, decision.key())
        if key in self._replay_ops_cache:
            return self._replay_ops_cache[key]
        ops: Optional[Tuple]
        try:
            point_procs, point_mems = self._placements(launch, decision)
        except ValueError:
            ops = None
        else:
            read_slots = [
                (i, launch.args[i].root, self._shard_intervals(launch, i, False))
                for i, slot in enumerate(launch.kind.slots)
                if slot.privilege.reads
            ]
            write_slots = [
                (i, launch.args[i].root, self._shard_intervals(launch, i, True))
                for i, slot in enumerate(launch.kind.slots)
                if slot.privilege.writes
            ]
            point_flops = launch.flops / launch.size
            gpu_adjust = (
                launch.kind.gpu_speedup
                if decision.proc_kind == ProcKind.GPU
                else 1.0
            )
            points = []
            ops = None
            for point in range(launch.size):
                proc_uid = point_procs[point]
                proc = self.machine.processor(proc_uid)
                access_seconds = 0.0
                for slot_index, slot in enumerate(launch.kind.slots):
                    link = self.machine.access_link(
                        proc_uid, point_mems[point][slot_index]
                    )
                    if link is None:  # unreachable slot: invalid decision
                        break
                    passes = int(slot.privilege.reads) + int(
                        slot.privilege.writes
                    )
                    bytes_pp = launch.arg_bytes_per_point(slot_index)
                    access_seconds += (
                        link.latency + bytes_pp / link.bandwidth
                    ) * passes
                else:
                    compute_seconds = 0.0
                    if point_flops > 0:
                        compute_seconds = point_flops / (
                            proc.throughput * gpu_adjust
                        )
                    duration = (
                        proc.launch_overhead
                        + compute_seconds
                        + access_seconds
                    )
                    reads = tuple(
                        (root, point_mems[point][slot_index], lo, hi)
                        for slot_index, root, intervals in read_slots
                        for lo, hi in (intervals[point],)
                        if hi > lo
                    )
                    points.append((proc_uid, duration, reads))
                    continue
                break  # a slot was unreachable; whole launch is invalid
            if len(points) == launch.size:
                writes = []
                for point in range(launch.size):
                    for slot_index, root, intervals in write_slots:
                        lo, hi = intervals[point]
                        if hi > lo:
                            writes.append(
                                (root, lo, hi, point_mems[point][slot_index])
                            )
                ops = (
                    tuple(points),
                    tuple(self._coalesce_writes(writes)),
                )
        self._replay_ops_cache[key] = ops
        return ops

    @staticmethod
    def _coalesce_writes(
        writes: List[Tuple[str, int, int, str]]
    ) -> List[Tuple[str, int, int, str]]:
        """Union a launch's write ops per ``(root, mem)``.

        The flow map tracks untimed authority and integer byte totals,
        so when no byte of a root is written to two different memories
        within one launch (the disjoint-shard case), applying the
        per-``(root, mem)`` unions leaves the final flow state — and
        every later tally — unchanged while the op count drops from one
        per point to one per contiguous run.  Order-dependent overlaps
        fall back to the exact per-point sequence."""
        grouped: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}
        order: List[Tuple[str, str]] = []
        for root, lo, hi, mem in writes:
            key = (root, mem)
            if key not in grouped:
                grouped[key] = []
                order.append(key)
            grouped[key].append((lo, hi))
        merged = {key: _coalesce(pieces) for key, pieces in grouped.items()}
        by_root: Dict[str, List[Tuple[int, int]]] = {}
        for (root, _), pieces in merged.items():
            by_root.setdefault(root, []).extend(pieces)
        for pieces in by_root.values():
            union = _coalesce(pieces)
            if sum(h - l for l, h in union) != sum(h - l for l, h in pieces):
                return writes  # cross-memory overlap: order matters
        return [
            (root, lo, hi, mem)
            for root, mem in order
            for lo, hi in merged[(root, mem)]
        ]

    def _replay_copy(
        self,
        chan_free: Dict[str, float],
        src: str,
        dst: str,
        nbytes: int,
        ready: float,
        src_time: float,
    ) -> float:
        """Mirror one ``CopyEngine.execute``: route the piece over the
        executor's hop path, reserving each hop on the mirrored channel
        timelines.  Returns the copy's lower-bound finish time."""
        path = self._topology.copy_path(src, dst)
        time = max(ready, src_time)
        if path is None or not path.hops:
            return time
        for hop in path.hops:
            duration = hop.latency + nbytes / (
                hop.bandwidth * DMA_EFFICIENCY
            )
            key = _channel_key(hop.mem_a, hop.mem_b)
            free = chan_free.get(key, 0.0)
            if free > time:
                time = free
            time = time + duration
            chan_free[key] = time
        return time

    def _comm_component(self, mapping: Mapping) -> Tuple[
        float,
        float,
        Optional[str],
        Optional[Tuple[str, str]],
        int,
        Optional[str],
        float,
        float,
    ]:
        """Mandatory-traffic and routed-schedule bounds: walks the
        launches once in executor order, mirroring its list schedule
        (processor reservations, routed channel-contended copies) while
        tallying the flow mirror's traffic; returns ``(bound, incident,
        memory, edge, edge_bytes, channel, channel_share, schedule)``.
        """
        order = self._order
        if self._comm_base is None:
            dirty = 0
        else:
            dirty = len(order)
            for kind_name, first in self._comm_first.items():
                if first >= dirty:
                    continue
                if (
                    mapping.decision(kind_name).key()
                    != self._comm_base[kind_name]
                ):
                    dirty = first
        start = 0
        base_snapshot = None
        for index, snapshot in self._comm_snapshots.items():
            if start <= index <= dirty:
                start = index
                base_snapshot = snapshot
        if base_snapshot is not None:
            state = base_snapshot.clone()
        else:
            state = _CommState()
            start = 0
        self._comm_snapshots = {
            index: snapshot
            for index, snapshot in self._comm_snapshots.items()
            if index <= dirty
        }
        snapshots = self._comm_snapshots
        boundaries = self._comm_boundaries
        flows = state.flows
        ingress = state.ingress
        egress = state.egress
        edge_bytes = state.edge_bytes
        pair_bytes = state.pair_bytes
        finish = state.finish
        proc_free = state.proc_free
        chan_free = state.chan_free

        for launch_index in range(start, len(order)):
            if launch_index in boundaries and launch_index not in snapshots:
                snapshots[launch_index] = state.clone()
            launch = order[launch_index]
            decision = mapping.decision(launch.kind.name)
            ops = self._replay_ops(launch, decision)
            # The group barrier: a launch starts no earlier than its
            # predecessors' mirrored finish times.
            ready = 0.0
            for dep in self.graph.predecessors(launch.uid):
                upstream = finish.get(dep.src, 0.0)
                if upstream > ready:
                    ready = upstream
            if ops is None:  # invalid decision — no placement, no flow
                finish[launch.uid] = ready
                continue
            points, write_ops = ops
            launch_finish = 0.0
            # Points in placement order, exactly like the executor: plan
            # the point's copies against the flow mirror, route them over
            # the mirrored channel timelines, then reserve the point on
            # its processor's mirrored timeline.
            for proc_uid, duration, reads in points:
                data_ready = ready
                for root, dst, lo, hi in reads:
                    flow = flows.get(root)
                    if flow is None:
                        flow = flows[root] = _FlowMap()
                    local, pieces = flow.read(lo, hi, dst)
                    if local > data_ready:
                        data_ready = local
                    for src, p_lo, p_hi, src_time in pieces:
                        nbytes = p_hi - p_lo
                        ingress[dst] = ingress.get(dst, 0) + nbytes
                        egress[src] = egress.get(src, 0) + nbytes
                        pair = (src, dst)
                        pair_bytes[pair] = pair_bytes.get(pair, 0) + nbytes
                        for mem in (dst, src):
                            edge = (mem, root, launch.kind.name)
                            edge_bytes[edge] = (
                                edge_bytes.get(edge, 0) + nbytes
                            )
                        done = self._replay_copy(
                            chan_free, src, dst, nbytes, ready, src_time
                        )
                        flow.commit(p_lo, p_hi, dst, done)
                        if done > data_ready:
                            data_ready = done
                free = proc_free.get(proc_uid, 0.0)
                point_start = free if free > data_ready else data_ready
                point_finish = point_start + duration
                proc_free[proc_uid] = point_finish
                if point_finish > launch_finish:
                    launch_finish = point_finish
            # Writes commit after the whole group, in (point, slot) order.
            for root, lo, hi, mem in write_ops:
                flow = flows.get(root)
                if flow is None:
                    flow = flows[root] = _FlowMap()
                flow.write(lo, hi, mem, launch_finish)
            finish[launch.uid] = launch_finish

        end = len(order)
        if end not in snapshots:
            # Stored by reference: the walk is over and future walks
            # clone before mutating.
            snapshots[end] = state
        self._comm_base = {
            kind_name: mapping.decision(kind_name).key()
            for kind_name in self._comm_first
        }

        incident = 0.0
        worst_mem: Optional[str] = None
        for mem_uid in sorted(set(ingress) | set(egress)):
            denom = self._channel_bw.get(mem_uid)
            if denom is None:
                continue  # no channels: the executor cannot copy here
            traffic = ingress.get(mem_uid, 0) + egress.get(mem_uid, 0)
            value = traffic / denom * FLOAT_SAFETY
            if value > incident:
                incident = value
                worst_mem = mem_uid
        edge: Optional[Tuple[str, str]] = None
        top_bytes = 0
        if worst_mem is not None:
            for (mem, root, kind), nbytes in sorted(edge_bytes.items()):
                if mem == worst_mem and nbytes > top_bytes:
                    top_bytes = nbytes
                    edge = (kind, root)

        # Routed per-channel congestion: every transfer crosses each
        # channel of its copy path, and the executor serialises all
        # traffic per channel, so the busiest channel's mandatory busy
        # time is a makespan lower bound.  Unroutable pairs are skipped
        # (a sound under-count; AM503 reports them statically).
        chan_bytes: Dict[str, int] = {}
        total_routed = 0
        for pair in sorted(pair_bytes):
            route = self._routing.route(*pair)
            if not route:
                continue
            nbytes = pair_bytes[pair]
            total_routed += nbytes
            for chan in route:
                chan_bytes[chan] = chan_bytes.get(chan, 0) + nbytes
        routed = 0.0
        worst_channel: Optional[str] = None
        for chan in sorted(chan_bytes):
            bandwidth = self._routing.channel_bandwidth(chan)
            if not bandwidth:  # pragma: no cover - defensive
                continue
            value = (
                chan_bytes[chan] / (DMA_EFFICIENCY * bandwidth) * FLOAT_SAFETY
            )
            if value > routed:
                routed = value
                worst_channel = chan
        share = (
            chan_bytes[worst_channel] / total_routed
            if worst_channel is not None and total_routed > 0
            else 0.0
        )
        bound = routed if routed > incident else incident
        # The mirrored schedule's makespan.  Deflated like the traffic
        # bounds: write coalescing can merge two executor copy fragments
        # into one mirrored copy, which is smaller in real arithmetic by
        # at least one hop latency but not a term-by-term float replay.
        schedule = max(state.finish.values(), default=0.0) * FLOAT_SAFETY
        return (
            bound,
            incident,
            worst_mem,
            edge,
            top_bytes,
            worst_channel,
            share,
            schedule,
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def breakdown(self, mapping: Mapping) -> BoundBreakdown:
        """Component-wise lower bound for ``mapping``.

        A mapping covering every task kind of the graph gets all three
        components; a partial mapping gets the critical path only, with
        undecided kinds priced at their cheapest legal option.
        """
        self.checks += 1
        key = mapping.key()
        cached = self._breakdown_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        partial = self._is_partial(mapping)
        cp, load = self._chain_components(mapping, partial)
        if partial:
            result = BoundBreakdown(
                critical_path=cp, load=0.0, communication=0.0
            )
        else:
            comm, incident, mem, edge, nbytes, channel, share, schedule = (
                self._comm_component(mapping)
            )
            result = BoundBreakdown(
                critical_path=cp,
                load=load,
                communication=comm,
                comm_memory=mem,
                comm_edge=edge,
                comm_edge_bytes=nbytes,
                communication_incident=incident,
                comm_channel=channel,
                comm_channel_share=share,
                schedule=schedule,
            )
            if incident > 0.0:
                self._gap_sum += comm / incident
                self._gap_count += 1
        self._breakdown_cache[key] = result
        return result

    def _is_partial(self, mapping: Mapping) -> bool:
        return any(
            name not in mapping for name in self._kind_names
        ) or any(
            mapping.decision(name).num_slots
            != self.graph.kind(name).num_slots
            for name in self._kind_names
            if name in mapping
        )

    def lower_bound(self, mapping: Mapping) -> float:
        """Sound lower bound on ``Simulator.run(mapping).makespan``."""
        return self.breakdown(mapping).total

    @property
    def bound_gap_ratio(self) -> float:
        """Mean routed/incident tightening over every fresh full
        breakdown this analyzer computed (1.0 when none had traffic)."""
        if self._gap_count == 0:
            return 1.0
        return self._gap_sum / self._gap_count

    def gap_ratio(self, mapping: Mapping) -> float:
        """Routed-vs-incident tightening for one mapping: how much the
        channel-path congestion bound improves on the incident aggregate
        (>= 1.0; exactly 1.0 when the mapping moves no bytes).

        A pure function of ``(graph, machine, mapping)`` — unlike the
        running mean above, it does not depend on which candidates the
        search happened to bound, so reports built from it stay
        bit-identical across checkpoint/resume.
        """
        bd = self.breakdown(mapping)
        if bd.communication_incident <= 0.0:
            return 1.0
        return bd.communication / bd.communication_incident

    def quick_bound(self, mapping: Mapping) -> float:
        """Cheap sound lower bound: critical path and load only, no
        traffic component.

        Weaker than :meth:`lower_bound` but skips the flow-map walk
        that dominates the full breakdown, so it is the right price for
        *ordering* decisions — seeding and best-bound-first move
        ranking — where only the relative ranking matters and a sound
        but loose value cannot change correctness.
        """
        key = mapping.key()
        cached = self._quick_cache.get(key)
        if cached is None:
            partial = self._is_partial(mapping)
            cp, load = self._chain_components(mapping, partial)
            cached = cp if partial else max(cp, load)
            self._quick_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    def diagnose_mapping(
        self, mapping: Mapping, incumbent: Optional[float] = None
    ) -> List[Diagnostic]:
        """AM4xx (and routed-traffic AM501) findings for one (valid)
        mapping.

        ``incumbent`` is a reference makespan (e.g. the default
        mapping's simulated time): any mapping whose bound exceeds it is
        provably dominated (AM401).
        """
        found: List[Diagnostic] = []
        bd = self.breakdown(mapping)
        if incumbent is not None and bd.total > incumbent:
            found.append(
                Diagnostic(
                    rule_id="AM401",
                    message=(
                        f"static lower bound {bd.total:.6g}s exceeds "
                        f"reference makespan {incumbent:.6g}s — this "
                        f"mapping provably cannot win"
                    ),
                )
            )
        if bd.communication > max(bd.critical_path, bd.load):
            kind, root = bd.comm_edge or (None, None)
            detail = (
                f"; heaviest edge: {kind} reading collection root "
                f"{root!r} ({bd.comm_edge_bytes} bytes)"
                if kind is not None
                else ""
            )
            found.append(
                Diagnostic(
                    rule_id="AM402",
                    message=(
                        f"mandatory traffic through {bd.comm_memory} "
                        f"({bd.communication:.6g}s) dominates compute "
                        f"({max(bd.critical_path, bd.load):.6g}s)"
                        + detail
                    ),
                    span=Span(
                        kind=kind, collection=root, memory=bd.comm_memory
                    ),
                )
            )
        if (
            bd.comm_channel is not None
            and bd.comm_channel_share >= AM501_SHARE
        ):
            found.append(
                Diagnostic(
                    rule_id="AM501",
                    message=(
                        f"channel {bd.comm_channel} carries "
                        f"{bd.comm_channel_share:.0%} of all routed "
                        f"bytes ({bd.communication:.6g}s congestion "
                        f"bound) — the interconnect bottleneck for "
                        f"this placement"
                    ),
                )
            )
        usable = {
            pk
            for kind in self.graph.task_kinds
            for pk in kind.variants
        }
        for pk in self.machine.proc_kinds():
            if pk in usable and mapping.count_proc(pk) == 0:
                found.append(
                    Diagnostic(
                        rule_id="AM403",
                        message=(
                            f"machine has {pk.value} processors and task "
                            f"variants exist, but no task kind is mapped "
                            f"to them"
                        ),
                    )
                )
        return found


def _legalize_kind(space, mapping: Mapping, kind_name: str) -> Mapping:
    """Reset slots the decision's processor kind cannot address to the
    fastest addressable kind (mirrors the search's legalisation)."""
    decision = mapping.decision(kind_name)
    fastest = space.dims(kind_name).mem_options[decision.proc_kind][0]
    for slot_index, mem_kind in enumerate(decision.mem_kinds):
        if (decision.proc_kind, mem_kind) not in ADDRESSABLE:
            mapping = mapping.with_mem(kind_name, slot_index, fastest)
    return mapping


def bound_guided_mapping(space, analyzer: StaticBoundAnalyzer) -> Mapping:
    """A statically bound-guided starting mapping for the search.

    Greedy coordinate descent on the *quick lower bound* instead of the
    simulator: starting from the space's default mapping, each kind (in
    sorted name order, for determinism) tries its distribution options
    and processor×slot×memory options and keeps strict bound
    improvements.  The resulting seed tends to start the real search
    near a good incumbent, which tightens branch-and-bound pruning from
    the first round — at the cost of analyzer calls only, no
    simulations.
    """
    mapping = space.default_mapping()
    best = analyzer.quick_bound(mapping)
    for kind_name in sorted(space.kind_names()):
        for distribute in space.searched_distribute_options(kind_name):
            candidate = mapping.with_distribute(kind_name, distribute)
            bound = analyzer.quick_bound(candidate)
            if bound < best:
                mapping, best = candidate, bound
        num_slots = mapping.decision(kind_name).num_slots
        for proc_kind in space.searched_proc_options(kind_name):
            for slot_index in range(num_slots):
                for mem_kind in space.searched_mem_options(
                    kind_name, proc_kind, slot_index
                ):
                    candidate = mapping.with_proc(kind_name, proc_kind)
                    candidate = candidate.with_mem(
                        kind_name, slot_index, mem_kind
                    )
                    candidate = _legalize_kind(space, candidate, kind_name)
                    bound = analyzer.quick_bound(candidate)
                    if bound < best:
                        mapping, best = candidate, bound
    from repro.mapping.validate import MappingError, validate

    try:
        validate(space.graph, analyzer.machine, mapping)
    except MappingError:  # pragma: no cover - defensive fallback
        return space.default_mapping()
    return mapping


def _channel_key(mem_a: str, mem_b: str) -> str:
    """The executor's channel timeline key (``CopyEngine._channel_key``
    mirror), so mirrored reservations serialise exactly where it does."""
    a, b = sorted((mem_a, mem_b))
    return f"chan:{a}<->{b}"


def _coalesce(intervals: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Sort and merge overlapping/adjacent ``[lo, hi)`` intervals."""
    merged: List[Tuple[int, int]] = []
    for lo, hi in sorted(intervals):
        if merged and lo <= merged[-1][1]:
            prev_lo, prev_hi = merged[-1]
            merged[-1] = (prev_lo, max(prev_hi, hi))
        else:
            merged.append((lo, hi))
    return merged
