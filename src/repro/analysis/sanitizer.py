"""Pass 3 — task-graph sanitizer (race/dependence checker).

The entire reproduction rests on builder-derived dependence graphs: the
simulator schedules launches respecting exactly the ``Dependence`` edges
present, so a missing edge silently turns a data race into bogus extra
parallelism and an overly tight makespan.  This pass re-derives, from
the declared privileges and shard patterns alone, which launch pairs
*must* be ordered, and checks the edge set against that ground truth:

* **AM301** (error): launch ``A`` writes bytes that a later launch ``B``
  reads or writes (RAW/WAW on overlapping root intervals), but ``B`` is
  not reachable from ``A`` through dependence edges.  Transitive
  coverage counts — the builder's last-writer chains are fine.
* **AM302** (warning): a dependence edge whose endpoints have no
  read-write interval conflict at all — spurious ordering that costs
  parallelism.
* **AM303** (error): two point tasks of one group launch write
  overlapping bytes through the same slot.  Point tasks of a group are
  concurrent by definition (§3.1), and no snapshot semantics can make
  two writers of one cell deterministic.
* **AM304** (info): a ``READ_WRITE`` + ``REPLICATED`` slot — the
  all-points-update-a-shared-scalar reduction idiom (e.g. Pennant's
  ``dt`` minimum).  Reported for visibility, not as a race: runtimes
  implement this as a reduction.

Write-after-read pairs are deliberately *not* required to be ordered:
the builder defaults to ``anti_dependences=False`` because a
versioning runtime (à la Legion) renames instances instead of blocking
readers, and cross-point read/write overlap inside one launch is
well-defined under the executor's launch-start snapshot semantics
(coherence copies are planned before any point runs).

Reachability is computed with ancestor bitsets over a topological
order, so sanitizing stays near-linear in edges for the bundled apps.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.analysis.diagnostics import Diagnostic, Span
from repro.runtime.intervals import IntervalSet
from repro.taskgraph.task import Privilege, ShardPattern

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.taskgraph.graph import TaskGraph
    from repro.taskgraph.task import TaskLaunch

__all__ = ["sanitize_graph"]

#: root name -> union of byte intervals accessed by a whole launch.
_Access = Dict[str, IntervalSet]


def _launch_accesses(launch: "TaskLaunch") -> Tuple[_Access, _Access]:
    """Launch-level (reads, writes) interval unions per root."""
    reads: _Access = {}
    writes: _Access = {}
    for slot_index, slot in enumerate(launch.kind.slots):
        root = launch.args[slot_index].root
        assert root is not None
        for for_write, accesses in ((False, reads), (True, writes)):
            if for_write and not slot.privilege.writes:
                continue
            if not for_write and not slot.privilege.reads:
                continue
            acc = accesses.get(root, IntervalSet.empty())
            for point in range(launch.size):
                lo, hi = launch.shard_interval(
                    slot_index, point, for_write=for_write
                )
                if hi > lo:
                    acc = acc.union(IntervalSet.single(lo, hi))
            accesses[root] = acc
    return reads, writes


def _conflicts(
    a_reads: _Access, a_writes: _Access, b_reads: _Access, b_writes: _Access
) -> List[Tuple[str, str, int, int]]:
    """RAW/WAW conflicts between an earlier launch ``a`` and a later
    launch ``b``: (root, kind-of-conflict, lo, hi) samples."""
    out: List[Tuple[str, str, int, int]] = []
    for root, written in a_writes.items():
        for label, b_acc in (("read", b_reads), ("write", b_writes)):
            other = b_acc.get(root)
            if other is None:
                continue
            overlap = written.intersection(other)
            if overlap.total > 0:
                lo, hi = next(iter(overlap))
                out.append((root, label, lo, hi))
    return out


def _any_conflict(
    a_reads: _Access, a_writes: _Access, b_reads: _Access, b_writes: _Access
) -> bool:
    """Whether the pair conflicts in *any* direction (RAW, WAW, or WAR)
    — the justification test for an existing dependence edge."""
    if _conflicts(a_reads, a_writes, b_reads, b_writes):
        return True
    # WAR: a reads what b writes.  Not required to be ordered, but an
    # edge claiming to order it is at least not spurious.
    for root, read in a_reads.items():
        written = b_writes.get(root)
        if written is not None and read.intersection(written).total > 0:
            return True
    return False


def _intra_group_diagnostics(graph: "TaskGraph") -> List[Diagnostic]:
    """AM303/AM304 over individual launches."""
    out: List[Diagnostic] = []
    reported_reductions = set()
    for launch in graph.launches:
        for slot_index, slot in enumerate(launch.kind.slots):
            if not slot.privilege.writes:
                continue
            if (
                slot.pattern is ShardPattern.REPLICATED
                and slot.privilege is Privilege.READ_WRITE
            ):
                key = (launch.kind.name, slot.name)
                if key not in reported_reductions:
                    reported_reductions.add(key)
                    out.append(
                        Diagnostic(
                            "AM304",
                            f"{launch.kind.name}[{slot.name}] is "
                            f"read_write+replicated: all points update "
                            f"the whole collection (reduction idiom)",
                            Span(
                                kind=launch.kind.name,
                                slot=slot.name,
                                collection=launch.args[slot_index].name,
                            ),
                        )
                    )
                continue
            if launch.size <= 1:
                continue
            union = IntervalSet.empty()
            total = 0
            for point in range(launch.size):
                lo, hi = launch.shard_interval(
                    slot_index, point, for_write=True
                )
                if hi > lo:
                    union = union.union(IntervalSet.single(lo, hi))
                    total += hi - lo
            if total > union.total:
                out.append(
                    Diagnostic(
                        "AM303",
                        f"{launch.uid}: point tasks write "
                        f"{total - union.total} overlapping byte(s) "
                        f"through slot {slot.name!r}; concurrent points "
                        f"of one group launch race on them",
                        Span(
                            kind=launch.kind.name,
                            slot=slot.name,
                            launch=launch.uid,
                        ),
                    )
                )
    return out


def sanitize_graph(graph: "TaskGraph") -> List[Diagnostic]:
    """Race/dependence-check ``graph``; returns all findings.

    An empty list (or only ``AM304`` infos) means every RAW/WAW overlap
    between launches is covered by a dependence path, no edge is
    spurious, and no group launch races against itself.
    """
    out: List[Diagnostic] = list(_intra_group_diagnostics(graph))

    order = graph.topological_order()
    position = {launch.uid: i for i, launch in enumerate(order)}
    accesses: Dict[str, Tuple[_Access, _Access]] = {
        launch.uid: _launch_accesses(launch) for launch in order
    }

    # Ancestor bitsets: bit j of ancestors[uid] set iff order[j] can
    # reach uid through dependence edges.
    ancestors: Dict[str, int] = {}
    for launch in order:
        bits = 0
        for dep in graph.predecessors(launch.uid):
            bits |= ancestors[dep.src] | (1 << position[dep.src])
        ancestors[launch.uid] = bits

    # AM301: every RAW/WAW overlap needs a covering dependence path.
    # Launch pairs are bucketed by shared root to avoid the full O(n^2)
    # scan over unrelated launches.
    by_root: Dict[str, List[str]] = {}
    for launch in order:
        reads, writes = accesses[launch.uid]
        for root in set(reads) | set(writes):
            by_root.setdefault(root, []).append(launch.uid)

    reported_pairs = set()
    for root, uids in by_root.items():
        uids.sort(key=lambda uid: position[uid])
        for i, a_uid in enumerate(uids):
            a_reads, a_writes = accesses[a_uid]
            if root not in a_writes:
                continue
            for b_uid in uids[i + 1 :]:
                if (a_uid, b_uid) in reported_pairs:
                    continue
                if ancestors[b_uid] & (1 << position[a_uid]):
                    continue
                b_reads, b_writes = accesses[b_uid]
                conflicts = _conflicts(
                    {root: a_reads.get(root, IntervalSet.empty())}
                    if root in a_reads
                    else {},
                    {root: a_writes[root]},
                    {root: b_reads[root]} if root in b_reads else {},
                    {root: b_writes[root]} if root in b_writes else {},
                )
                if not conflicts:
                    continue
                reported_pairs.add((a_uid, b_uid))
                _root, label, lo, hi = conflicts[0]
                out.append(
                    Diagnostic(
                        "AM301",
                        f"{b_uid} {label}s bytes [{lo}, {hi}) of root "
                        f"{root!r} written by {a_uid}, but no dependence "
                        f"path orders them; add a Dependence("
                        f"src={a_uid!r}, dst={b_uid!r}) or make one "
                        f"transitive",
                        Span(
                            kind=graph.launch(b_uid).kind.name,
                            launch=b_uid,
                            collection=root,
                        ),
                    )
                )

    # AM302: edges whose endpoints never conflict.
    for dep in graph.dependences:
        a_reads, a_writes = accesses[dep.src]
        b_reads, b_writes = accesses[dep.dst]
        if not _any_conflict(a_reads, a_writes, b_reads, b_writes):
            out.append(
                Diagnostic(
                    "AM302",
                    f"edge {dep.src} -> {dep.dst} (via "
                    f"{dep.collection!r}) orders launches with no "
                    f"read-write interval conflict; it only costs "
                    f"parallelism",
                    Span(
                        kind=graph.launch(dep.dst).kind.name,
                        launch=dep.dst,
                        collection=dep.collection,
                    ),
                )
            )
    return out
