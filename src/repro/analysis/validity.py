"""Shared kind-level mapping validity checker (paper §4.2 constraint 1).

This is the single implementation behind :mod:`repro.mapping.validate`
and the parallel worker's pre-simulation check in
:mod:`repro.parallel.spec`; both previously carried their own copy of
this reasoning.  Validity here is *kind-level*: "a task argument is
mapped to a memory visible to the task's processor" plus the variant
requirement of §2.  Capacity is a runtime matter — a valid mapping may
still fail with OOM at execution (§3.1) — and is handled by the static
feasibility pass (:mod:`repro.analysis.memfeas`) and the oracle.

Unlike the historical validator, a slot-count mismatch (``AM002``) no
longer suppresses the remaining checks for that kind: the variant and
processor checks still run, and the per-slot memory checks run over
whatever slots the decision does cover, so one structural mistake cannot
hide an unrelated addressability problem.

This module deliberately imports nothing from :mod:`repro.runtime` so
that low-level mapping modules can depend on it without cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.analysis.diagnostics import Diagnostic, Span
from repro.machine.kinds import ADDRESSABLE

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Runtime imports would re-enter the ``repro.mapping`` package while
    # ``mapping.validate`` is importing this module; the checker only
    # calls methods on these objects, so type-only imports suffice.
    from repro.machine.model import Machine
    from repro.mapping.mapping import Mapping
    from repro.taskgraph.graph import TaskGraph

__all__ = ["check_mapping", "validity_problems", "explain_problems"]


def check_mapping(
    graph: TaskGraph, machine: Machine, mapping: Mapping
) -> List[Diagnostic]:
    """All kind-level validity violations of ``mapping`` as diagnostics.

    Returns an empty list iff the mapping is valid.  Every diagnostic is
    an ``ERROR``; message texts match the historical
    ``mapping.validate`` strings so joined reasons stay stable.
    """
    out: List[Diagnostic] = []
    machine_proc_kinds = set(machine.proc_kinds())
    machine_mem_kinds = set(machine.mem_kinds())

    for kind in graph.task_kinds:
        if kind.name not in mapping:
            out.append(
                Diagnostic(
                    "AM001",
                    f"task kind {kind.name!r} has no decision",
                    Span(kind=kind.name),
                )
            )
            continue
        decision = mapping.decision(kind.name)
        if decision.num_slots != kind.num_slots:
            out.append(
                Diagnostic(
                    "AM002",
                    f"{kind.name}: decision covers {decision.num_slots} "
                    f"slots, kind has {kind.num_slots}",
                    Span(kind=kind.name),
                )
            )
        if decision.proc_kind not in kind.variants:
            out.append(
                Diagnostic(
                    "AM003",
                    f"{kind.name}: no {decision.proc_kind.value} variant",
                    Span(kind=kind.name),
                )
            )
        if decision.proc_kind not in machine_proc_kinds:
            out.append(
                Diagnostic(
                    "AM004",
                    f"{kind.name}: machine has no "
                    f"{decision.proc_kind.value} processors",
                    Span(kind=kind.name),
                )
            )
        for slot_index, mem_kind in enumerate(decision.mem_kinds):
            if slot_index < kind.num_slots:
                slot_name = kind.slots[slot_index].name
            else:
                slot_name = f"slot{slot_index}"
            if mem_kind not in machine_mem_kinds:
                out.append(
                    Diagnostic(
                        "AM005",
                        f"{kind.name}[{slot_name}]: machine has no "
                        f"{mem_kind.value} memory",
                        Span(kind=kind.name, slot=slot_name),
                    )
                )
            elif (decision.proc_kind, mem_kind) not in ADDRESSABLE:
                out.append(
                    Diagnostic(
                        "AM006",
                        f"{kind.name}[{slot_name}]: "
                        f"{mem_kind.value} not addressable from "
                        f"{decision.proc_kind.value}",
                        Span(kind=kind.name, slot=slot_name),
                    )
                )

    covered = set(mapping.kind_names())
    graph_kinds = {k.name for k in graph.task_kinds}
    for extra in sorted(covered - graph_kinds):
        out.append(
            Diagnostic(
                "AM007",
                f"decision for unknown task kind {extra!r}",
                Span(kind=extra),
            )
        )
    return out


def validity_problems(
    graph: TaskGraph, machine: Machine, mapping: Mapping
) -> List[str]:
    """Violation messages as plain strings (legacy shape)."""
    return [d.message for d in check_mapping(graph, machine, mapping)]


def explain_problems(
    graph: TaskGraph, machine: Machine, mapping: Mapping
) -> Optional[str]:
    """Joined violation messages, or ``None`` if the mapping is valid."""
    problems = validity_problems(graph, machine, mapping)
    if not problems:
        return None
    return "; ".join(problems)
