"""Command-line interface.

Usage (installed as a module)::

    python -m repro tune --app pennant --input 320x720 --nodes 2
    python -m repro inspect --app htr --input 16x16y18z
    python -m repro trace out/trace.json
    python -m repro machines
    python -m repro serve --root /var/lib/automap --workers 2
    python -m repro submit --app stencil --input 500x500 --wait
    python -m repro cache ls --root /var/lib/automap

``tune`` runs the full AutoMap pipeline and prints the tuning report
plus the diff against the default mapping; ``inspect`` prints the
application's graph summary and Figure 5 row without searching;
``trace`` renders a saved execution trace (``tune --trace``) as an
ASCII Gantt chart; ``machines`` lists the bundled machine models;
``serve`` runs the mapping service (async job API over HTTP with a
content-addressed result cache, see :mod:`repro.service`); ``submit``
is the matching client; ``cache`` inspects or purges a service's result
cache offline.
"""

from __future__ import annotations

import argparse
import re
import sys
from typing import Optional

from repro.apps import APP_REGISTRY, make_app
from repro.core import AutoMapSession, OracleConfig
from repro.machine import MACHINE_ZOO
from repro.runtime import SimConfig
from repro.util.logging import configure as configure_logging
from repro.viz import render_mapping, render_mapping_diff

__all__ = [
    "main",
    "build_parser",
    "parse_app_input",
    "parse_gen_params",
    "parse_machine_params",
]

_MACHINES = dict(MACHINE_ZOO)


def parse_app_input(app_name: str, label: Optional[str]) -> dict:
    """Translate a paper-style input label into app constructor kwargs.

    ``circuit``: ``n{nodes}w{wires}``; ``stencil``/``pennant``:
    ``{x}x{y}``; ``htr``: ``{x}x{y}y{z}z``; ``maestro``:
    ``{count}x{res}`` (LF samples x resolution).  ``None`` keeps the
    application's defaults.
    """
    if label is None:
        return {}
    if app_name == "circuit":
        match = re.fullmatch(r"n(\d+)w(\d+)", label)
        if match:
            return {"nodes": int(match.group(1)), "wires": int(match.group(2))}
    elif app_name == "stencil":
        match = re.fullmatch(r"(\d+)x(\d+)", label)
        if match:
            return {"nx": int(match.group(1)), "ny": int(match.group(2))}
    elif app_name == "pennant":
        match = re.fullmatch(r"(\d+)x(\d+)", label)
        if match:
            return {"zx": int(match.group(1)), "zy": int(match.group(2))}
    elif app_name == "htr":
        match = re.fullmatch(r"(\d+)x(\d+)y(\d+)z", label)
        if match:
            return {
                "x": int(match.group(1)),
                "y": int(match.group(2)),
                "z": int(match.group(3)),
            }
    elif app_name == "maestro":
        match = re.fullmatch(r"(\d+)x(\d+)", label)
        if match:
            return {
                "lf_count": int(match.group(1)),
                "lf_res": int(match.group(2)),
            }
    raise SystemExit(
        f"cannot parse input {label!r} for application {app_name!r} "
        "(paper apps take paper-style labels; generator families are "
        "parameterised with --gen-param K=V instead)"
    )


def _coerce_param(raw: str):
    """``--gen-param`` value coercion: bool, int, float, then string."""
    low = raw.lower()
    if low in ("true", "false"):
        return low == "true"
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


def parse_gen_params(pairs) -> dict:
    """Parse repeated ``--gen-param key=value`` flags into app kwargs."""
    out = {}
    for pair in pairs or []:
        key, sep, raw = pair.partition("=")
        key = key.strip()
        if not sep or not key.isidentifier():
            raise SystemExit(
                f"--gen-param expects KEY=VALUE with an identifier key, "
                f"got {pair!r}"
            )
        out[key] = _coerce_param(raw.strip())
    return out


def parse_machine_params(pairs) -> dict:
    """Parse repeated ``--machine-param SECTION:KEY=VALUE`` flags into a
    ``machine_params`` override document (``name=VALUE`` is the one
    keyless form).  Section/uid validation happens server-side in
    :func:`repro.machine.overrides.apply_machine_params`."""
    out: dict = {}
    for pair in pairs or []:
        head, sep, raw = pair.partition("=")
        value = raw.strip()
        if not sep:
            raise SystemExit(
                f"--machine-param expects SECTION:KEY=VALUE (or "
                f"name=VALUE), got {pair!r}"
            )
        section, colon, key = head.partition(":")
        section = section.strip()
        key = key.strip()
        if not colon:
            if section != "name":
                raise SystemExit(
                    f"--machine-param expects SECTION:KEY=VALUE (only "
                    f"'name' takes a bare value), got {pair!r}"
                )
            out["name"] = value
            continue
        if not section or not key:
            raise SystemExit(
                f"--machine-param expects SECTION:KEY=VALUE, got {pair!r}"
            )
        # Capacities may stay strings ("128 GiB"); numbers coerce.
        out.setdefault(section, {})[key] = _coerce_param(value)
    return out


def _make_app(args):
    """Construct the requested app from --input and --gen-param flags."""
    kwargs = parse_app_input(args.app, args.input)
    kwargs.update(parse_gen_params(getattr(args, "gen_param", None)))
    try:
        return make_app(args.app, **kwargs)
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"repro {args.command}: {exc}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="AutoMap reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument(
            "--app", required=True, choices=sorted(APP_REGISTRY)
        )
        p.add_argument(
            "--input", default=None, help="paper-style input label"
        )
        p.add_argument(
            "--machine", default="shepard", choices=sorted(_MACHINES)
        )
        p.add_argument("--nodes", type=int, default=1)
        p.add_argument(
            "--gen-param",
            action="append",
            default=[],
            metavar="K=V",
            help="app constructor knob (repeatable), e.g. "
            "--gen-param layers=8 --gen-param parts=1; values parse "
            "as bool/int/float before falling back to strings",
        )

    tune = sub.add_parser("tune", help="run the AutoMap search")
    add_common(tune)
    tune.add_argument(
        "--algorithm",
        default="ccd",
        choices=["ccd", "cd", "opentuner", "random"],
    )
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument(
        "--max-suggestions", type=int, default=20_000
    )
    tune.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for parallel candidate evaluation "
        "(1 = serial; results are identical either way)",
    )
    tune.add_argument("--workdir", default=None)
    tune.add_argument(
        "--resume",
        default=None,
        metavar="WORKDIR",
        help="resume a checkpointed tuning run from WORKDIR (implies "
        "--workdir WORKDIR); the resumed search replays the "
        "checkpoint deterministically and finishes bit-identically "
        "to an uninterrupted run with the same seed",
    )
    tune.add_argument(
        "--checkpoint-every",
        type=int,
        default=25,
        metavar="N",
        help="with a workdir, snapshot the full search state to "
        "checkpoint.json every N evaluations (atomically replaced; "
        "0 = only at interrupt and at the end)",
    )
    tune.add_argument(
        "--worker-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-candidate wall-clock limit for worker-pool results; "
        "a hung worker is terminated, the pool rebuilt, and the "
        "candidate retried (default: wait forever)",
    )
    tune.add_argument(
        "--trace",
        action="store_true",
        help="with a workdir, export the best mapping's simulated "
        "execution as <workdir>/trace.json (Chrome trace-event JSON, "
        "loadable in chrome://tracing or Perfetto); purely "
        "observational — the tuning result is byte-identical",
    )
    tune.add_argument(
        "--no-spill",
        action="store_true",
        help="fail (instead of demoting) mappings that exceed capacity",
    )
    tune.add_argument(
        "--no-incremental",
        action="store_true",
        help="disable incremental re-simulation (prefix replay, "
        "per-launch cost memoisation, spill/noise/validation caches); "
        "reports, traces and checkpoints are byte-identical either "
        "way — this is the slow reference path the CI identity gate "
        "compares against",
    )
    tune.add_argument(
        "--no-static-prune",
        action="store_true",
        help="disable the static analysis layer (memory feasibility "
        "short-circuit, equivalence canonicalization, search-space "
        "pruning); results are identical, just slower",
    )
    tune.add_argument(
        "--no-bound-prune",
        action="store_true",
        help="disable bound-based pruning (skipping candidates whose "
        "static makespan lower bound already exceeds the incumbent); "
        "results are identical, just more simulations",
    )
    tune.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the run's metrics registry to FILE in Prometheus "
        "text exposition format (e.g. metrics.prom)",
    )
    tune.add_argument("--verbose", action="store_true")

    inspect = sub.add_parser(
        "inspect", help="print the application's graph and search space"
    )
    add_common(inspect)

    analyze = sub.add_parser(
        "analyze",
        help="run the static analysis passes (sanitizer, equivalence, "
        "memory feasibility) without searching",
    )
    analyze.add_argument("--app", choices=sorted(APP_REGISTRY))
    analyze.add_argument(
        "--input", default=None, help="paper-style input label"
    )
    analyze.add_argument(
        "--machine", default="shepard", choices=sorted(_MACHINES)
    )
    analyze.add_argument("--nodes", type=int, default=1)
    analyze.add_argument(
        "--gen-param",
        action="append",
        default=[],
        metavar="K=V",
        help="app constructor knob (repeatable); see `tune --help`",
    )
    analyze.add_argument(
        "--mapping",
        action="append",
        default=[],
        metavar="FILE",
        help="mapping JSON file(s) to lint against the graph/machine "
        "(repeatable)",
    )
    analyze.add_argument(
        "--fail-on",
        default="error",
        choices=["info", "warning", "error"],
        help="exit non-zero when a diagnostic at or above this severity "
        "is reported (default: error)",
    )
    analyze.add_argument(
        "--bounds",
        action="store_true",
        help="also run the static cost-bound analyzer (AM4xx): "
        "critical-path/communication lower bounds compared against "
        "the default mapping's simulated makespan",
    )
    analyze.add_argument(
        "--equivalence",
        action="store_true",
        help="also run the workload-equivalence analyzer (AM6xx): "
        "provably-unobservable capacity slack, resources no searched "
        "mapping can touch, and verified machine automorphisms — the "
        "lemmas behind the service's near-equivalent cache hits",
    )
    analyze.add_argument(
        "--list-rules",
        action="store_true",
        help="print the diagnostic rule registry, grouped by analysis "
        "pass with a one-line description per rule, and exit",
    )

    trace = sub.add_parser(
        "trace",
        help="render a saved trace.json as an ASCII Gantt chart with "
        "the compute/copy/overhead/idle breakdown",
    )
    trace.add_argument(
        "path", help="trace.json exported by `repro tune --trace`"
    )
    trace.add_argument(
        "--width",
        type=int,
        default=72,
        metavar="COLUMNS",
        help="timeline width of the Gantt chart (default: 72)",
    )
    trace.add_argument(
        "--diff",
        default=None,
        metavar="OTHER",
        help="compare against a second trace.json span-by-span instead "
        "of rendering; exits 1 when the traces differ (the "
        "incremental-identity CI gate uses this)",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="soundness fuzzing: seeded random (generator, machine, "
        "search-config) cases checked against the bound/canonical/"
        "relabel/resume/parallel/equivalence invariants",
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed; case i is a pure function of (seed, i) "
        "(default: 0)",
    )
    fuzz.add_argument(
        "--budget",
        type=int,
        default=50,
        metavar="N",
        help="number of random cases to run (default: 50)",
    )
    fuzz.add_argument(
        "--replay",
        default=None,
        metavar="PATH",
        help="replay the fuzz-case JSON file or corpus directory "
        "instead of sampling random cases (the CI regression gate "
        "replays tests/property/corpus/)",
    )
    fuzz.add_argument(
        "--invariant",
        action="append",
        default=None,
        choices=[
            "bound",
            "canonical",
            "relabel",
            "resume",
            "parallel",
            "equivalence",
        ],
        metavar="NAME",
        help="check only this invariant (repeatable; default: all six; "
        "'parallel' asserts --workers 2 and --no-incremental runs are "
        "bit-identical to the serial incremental run; 'equivalence' "
        "asserts AM6xx-proved workload pairs tune bit-identically — "
        "the contracts behind the service cache)",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failing cases as sampled, without minimising them",
    )
    fuzz.add_argument(
        "--artifacts",
        default=None,
        metavar="DIR",
        help="write each failing case (shrunk when shrinking is on) "
        "as a replayable JSON file into DIR",
    )

    serve = sub.add_parser(
        "serve",
        help="run the mapping service: an HTTP job API over the tuning "
        "engine with a content-addressed result cache",
    )
    serve.add_argument(
        "--root",
        required=True,
        metavar="DIR",
        help="service state directory (holds jobs/ and cache/; jobs "
        "found running after a crash resume from their checkpoints)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8432,
        help="listen port (0 = pick an ephemeral port; the bound "
        "address is printed on startup)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="job-worker threads draining the queue concurrently "
        "(claims are atomic, so no job ever runs twice; default: 1)",
    )
    serve.add_argument(
        "--cache-max-bytes",
        default=None,
        metavar="SIZE",
        help="result-cache size budget, e.g. '256 MiB' or a byte "
        "count; least-recently-used entries are evicted atomically "
        "on publish (default: unbounded)",
    )
    serve.add_argument("--verbose", action="store_true")

    submit = sub.add_parser(
        "submit",
        help="submit a tuning job to a running `repro serve` instance",
    )
    add_common(submit)
    submit.add_argument(
        "--url",
        default="http://127.0.0.1:8432",
        help="service base URL (default: http://127.0.0.1:8432)",
    )
    submit.add_argument(
        "--algorithm",
        default="ccd",
        choices=["ccd", "cd", "opentuner", "random"],
    )
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--max-suggestions", type=int, default=20_000)
    submit.add_argument(
        "--workers",
        type=int,
        default=1,
        help="server-side process-pool size for this job (execution "
        "knob: does not change the result or the cache key)",
    )
    submit.add_argument(
        "--machine-param",
        action="append",
        default=[],
        metavar="SECTION:KEY=VALUE",
        help="declarative machine override (repeatable), e.g. "
        "--machine-param 'memory_capacity:n0.sys0=128 GiB' or "
        "--machine-param name=shepard-fat; sections: name, "
        "memory_capacity, proc_throughput, proc_launch_overhead, "
        "access_bandwidth, access_latency, channel_bandwidth, "
        "channel_latency (pair keys joined with '|')",
    )
    submit.add_argument("--no-spill", action="store_true")
    submit.add_argument(
        "--no-incremental",
        action="store_true",
        help="run the job on the full (non-incremental) simulation "
        "path; execution knob — results and cache key are identical",
    )
    submit.add_argument("--no-static-prune", action="store_true")
    submit.add_argument("--no-bound-prune", action="store_true")
    submit.add_argument(
        "--checkpoint-every",
        type=int,
        default=10,
        metavar="N",
        help="server-side checkpoint cadence for this job (evaluations "
        "between snapshots; crash recovery resumes from the last one)",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="poll the job to completion and print a final status line "
        "(without --wait only the job id is printed)",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="give up polling after this long (with --wait; default 300)",
    )
    submit.add_argument(
        "--report-out",
        default=None,
        metavar="FILE",
        help="with --wait, save the job's deterministic result.json "
        "to FILE",
    )

    cache = sub.add_parser(
        "cache",
        help="inspect or purge a mapping service's result cache "
        "(offline: operates on the --root directory directly)",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_ls = cache_sub.add_parser(
        "ls", help="list cache entries with sizes and artifacts"
    )
    cache_ls.add_argument(
        "--root",
        required=True,
        metavar="DIR",
        help="service state directory (as passed to `repro serve`)",
    )
    cache_purge = cache_sub.add_parser(
        "purge", help="atomically evict every cache entry"
    )
    cache_purge.add_argument(
        "--root", required=True, metavar="DIR",
        help="service state directory (as passed to `repro serve`)",
    )

    sub.add_parser("machines", help="list bundled machine models")
    return parser


def _cmd_tune(args) -> int:
    if args.verbose:
        configure_logging()
    workdir = args.workdir
    if args.resume is not None:
        if workdir is not None and workdir != args.resume:
            raise SystemExit(
                "--resume WORKDIR conflicts with --workdir: resume "
                "continues inside the original working directory"
            )
        workdir = args.resume
    machine = _MACHINES[args.machine](args.nodes)
    app = _make_app(args)
    graph = app.graph(machine)
    session = AutoMapSession(
        graph,
        machine,
        algorithm=args.algorithm,
        workdir=workdir,
        oracle_config=OracleConfig(max_suggestions=args.max_suggestions),
        sim_config=SimConfig(
            noise_sigma=0.04,
            seed=args.seed,
            spill=not args.no_spill,
            incremental=not args.no_incremental,
        ),
        space=app.space(machine),
        workers=args.workers,
        static_prune=not args.no_static_prune,
        bound_prune=not args.no_bound_prune,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume is not None,
        worker_timeout=args.worker_timeout,
        trace=args.trace,
        metrics_out=args.metrics_out,
    )
    default = session.default_mapping()
    t_default = session.measure(default)
    report = session.tune()
    print(report.describe())
    print()
    print(f"default mapper: {t_default:.6f} s; "
          f"speedup {t_default / report.best_mean:.2f}x")
    print()
    print(render_mapping_diff(graph, default, report.best_mapping))
    return 0


def _cmd_inspect(args) -> int:
    machine = _MACHINES[args.machine](args.nodes)
    app = _make_app(args)
    graph = app.graph(machine)
    space = app.space(machine)
    print(machine.describe())
    print()
    print(graph.describe())
    print()
    print(
        f"Figure 5 row: {app.num_tasks()} tasks, "
        f"{app.num_collection_arguments()} collection arguments, "
        f"search space ~2^{space.log2_size():.0f}"
    )
    print()
    print(render_mapping(graph, space.default_mapping(), title="default mapping"))
    return 0


def _cmd_analyze(args) -> int:
    from repro.analysis import Severity, analyze

    if args.list_rules:
        _print_rule_registry()
        return 0
    if args.app is None:
        raise SystemExit("repro analyze: --app is required "
                         "(or use --list-rules)")
    machine = _MACHINES[args.machine](args.nodes)
    app = _make_app(args)
    graph = app.graph(machine)
    space = app.space(machine)

    report = analyze(
        graph,
        machine,
        space=space,
        bounds=args.bounds and not args.mapping,
        equivalence=args.equivalence,
    )
    print(f"-- {graph.name} on {machine.name}")
    print(report.render())
    for path in args.mapping:
        from repro.mapping.io import load_mapping

        mapping = load_mapping(path)
        lint = analyze(graph, machine, space=space, mapping=mapping,
                       sanitize=False, bounds=args.bounds)
        print()
        print(f"-- {path}")
        print(lint.render())
        report.extend(lint)

    threshold = Severity.parse(args.fail_on)
    flagged = report.at_least(threshold)
    if flagged:
        print()
        print(f"FAIL: {len(flagged)} diagnostic(s) at severity "
              f">= {threshold}")
        return 1
    return 0


def _print_rule_registry() -> None:
    """The diagnostic rule registry, one section per rule-id century.

    Grouped by the ``AMn`` prefix (not the pass name) so centuries print
    in id order and each header names exactly the prefix of the rules
    below it; centuries with no registered rules are never emitted.
    """
    from repro.analysis.diagnostics import RULES
    from repro.viz.table import Table

    by_prefix: dict = {}
    for rule in sorted(RULES.values(), key=lambda r: r.id):
        by_prefix.setdefault(rule.id[:3], []).append(rule)
    for index, prefix in enumerate(sorted(by_prefix)):
        rules = by_prefix[prefix]
        if index:
            print()
        print(f"-- {rules[0].passname} ({prefix}xx)")
        table = Table(["rule", "severity", "title", "doc"])
        for rule in rules:
            table.add_row(
                [rule.id, str(rule.severity), rule.title, rule.doc]
            )
        print(table.render())


def _cmd_trace(args) -> int:
    from repro.obs.trace import diff_traces, load_trace
    from repro.viz import render_gantt

    try:
        recorder = load_trace(args.path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro trace: {exc}")
    if args.diff is not None:
        try:
            other = load_trace(args.diff)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro trace: {exc}")
        diff = diff_traces(recorder, other)
        print(diff.render())
        return 0 if diff.identical else 1
    print(render_gantt(recorder, width=args.width))
    breakdown = recorder.breakdown()
    print()
    print(
        f"breakdown: {breakdown['compute_fraction']:.0%} compute, "
        f"{breakdown['copy_fraction']:.0%} copy, "
        f"{breakdown['overhead_fraction']:.0%} overhead, "
        f"{breakdown['idle_fraction']:.0%} idle "
        f"over {breakdown['active_processors']} active processor(s); "
        f"{breakdown['dma']['copies']} DMA copies"
    )
    return 0


def _cmd_fuzz(args) -> int:
    import json
    from pathlib import Path

    from repro.fuzz import (
        INVARIANTS,
        FuzzCase,
        fuzz,
        load_corpus,
        run_case,
        save_case,
    )

    invariants = tuple(args.invariant) if args.invariant else INVARIANTS
    failures = []  # (label, CaseResult, reproducer FuzzCase)

    if args.replay is not None:
        replay = Path(args.replay)
        if replay.is_dir():
            cases = load_corpus(replay)
        else:
            try:
                doc = json.loads(replay.read_text())
            except (OSError, ValueError) as exc:
                raise SystemExit(f"repro fuzz: {exc}")
            cases = [(replay, FuzzCase.from_doc(doc))]
        if not cases:
            raise SystemExit(f"repro fuzz: no fuzz cases under {replay}")
        for path, case in cases:
            result = run_case(case, invariants=invariants)
            _print_case_line(path.name, case, result)
            if not result.ok:
                failures.append((path.name, result, case))
        total = len(cases)
    else:
        report = fuzz(
            seed=args.seed,
            budget=args.budget,
            invariants=invariants,
            shrink=not args.no_shrink,
            on_case=lambda i, r: _print_case_line(f"case {i}", r.case, r),
        )
        shrunk = iter(report.shrunk)
        for i, result in enumerate(report.results):
            if not result.ok:
                reproducer = (
                    result.case if args.no_shrink else next(shrunk)
                )
                failures.append((f"case {i}", result, reproducer))
        total = len(report.results)

    print()
    if not failures:
        print(f"fuzz: {total} case(s), 0 violations "
              f"({', '.join(invariants)})")
        return 0
    for label, result, reproducer in failures:
        print(f"FAIL {label}: {result.case.label()}")
        for v in result.violations:
            print(f"  [{v.invariant}] {v.message}")
        if reproducer is not result.case:
            print(f"  shrunk to: {reproducer.label()}")
    if args.artifacts is not None:
        directory = Path(args.artifacts)
        for _, result, reproducer in failures:
            invariant = sorted(result.violated())[0]
            path = save_case(reproducer, directory, invariant)
            print(f"wrote {path}")
    print(f"fuzz: {total} case(s), {len(failures)} failing")
    return 1


def _print_case_line(label, case, result) -> None:
    status = "ok" if result.ok else ",".join(sorted(result.violated()))
    print(f"{label}: {case.label()} ... {status}")


def _cmd_serve(args) -> int:
    configure_logging()
    from repro.service import MappingService, make_server
    from repro.util.units import parse_bytes

    cache_max_bytes = None
    if args.cache_max_bytes is not None:
        try:
            cache_max_bytes = parse_bytes(args.cache_max_bytes)
        except ValueError as exc:
            raise SystemExit(f"repro serve: --cache-max-bytes: {exc}")
    try:
        service = MappingService(
            args.root,
            workers=args.workers,
            cache_max_bytes=cache_max_bytes,
        )
    except ValueError as exc:
        raise SystemExit(f"repro serve: {exc}")
    server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    service.start()
    # The ready line is load-bearing: the CI smoke job (and any
    # supervisor) waits for it before submitting.
    print(
        f"automap service listening on http://{host}:{port} "
        f"(root: {args.root})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.stop()
    return 0


def _http_json(url: str, payload=None):
    """POST ``payload`` (or GET when ``None``) and decode the JSON
    reply; returns ``(status, doc)`` without raising on 4xx/5xx."""
    import json
    import urllib.error
    import urllib.request

    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=30) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as exc:
        body = exc.read()
        try:
            return exc.code, json.loads(body)
        except ValueError:
            return exc.code, {"error": body.decode(errors="replace")}
    except urllib.error.URLError as exc:
        raise SystemExit(f"repro submit: cannot reach {url}: {exc.reason}")


def _cmd_submit(args) -> int:
    import time
    import urllib.request

    base = args.url.rstrip("/")
    doc = {
        "app": args.app,
        "input": args.input,
        "gen_params": parse_gen_params(args.gen_param),
        "machine": args.machine,
        "nodes": args.nodes,
        "machine_params": parse_machine_params(args.machine_param),
        "algorithm": args.algorithm,
        "seed": args.seed,
        "max_suggestions": args.max_suggestions,
        "spill": not args.no_spill,
        "static_prune": not args.no_static_prune,
        "bound_prune": not args.no_bound_prune,
        "workers": args.workers,
        "incremental": not args.no_incremental,
        "checkpoint_every": args.checkpoint_every,
    }
    status, reply = _http_json(f"{base}/jobs", payload=doc)
    if status != 201:
        raise SystemExit(
            f"repro submit: {status}: {reply.get('error', reply)}"
        )
    job_id = reply["job_id"]
    if not args.wait:
        # Bare id on stdout so scripts can capture it: JOB=$(repro
        # submit ...); full status lives at GET /jobs/<id>.
        print(job_id)
        return 0

    deadline = time.monotonic() + args.timeout
    while reply["state"] not in ("done", "failed"):
        if time.monotonic() >= deadline:
            print(f"{job_id} state={reply['state']} (timed out)")
            return 2
        time.sleep(0.2)
        status, reply = _http_json(f"{base}/jobs/{job_id}")
        if status != 200:
            raise SystemExit(
                f"repro submit: {status}: {reply.get('error', reply)}"
            )
    # ``cache_hit=equiv`` distinguishes a near-equivalence proof hit
    # from an exact fingerprint hit (``true``) — both zero simulations.
    if reply.get("cache_mode") == "equiv":
        cache_hit = "equiv"
    else:
        cache_hit = "true" if reply["cache_hit"] else "false"
    print(
        f"{job_id} state={reply['state']} "
        f"cache_hit={cache_hit} "
        f"simulations={reply['simulations']}"
    )
    if reply["state"] == "failed":
        print(f"error: {reply['error']}", file=sys.stderr)
        return 1
    if args.report_out is not None:
        with urllib.request.urlopen(
            f"{base}/jobs/{job_id}/report", timeout=30
        ) as response:
            data = response.read()
        from pathlib import Path

        Path(args.report_out).write_bytes(data)
    return 0


def _cmd_cache(args) -> int:
    from repro.service import ResultCache
    from repro.util.units import format_bytes
    from repro.viz.table import Table

    cache = ResultCache(args.root)
    if args.cache_command == "purge":
        removed = cache.purge()
        print(f"purged {removed} cache entr"
              f"{'y' if removed == 1 else 'ies'} from {args.root}")
        return 0
    entries = cache.entries()
    if not entries:
        print(f"cache at {args.root}: 0 entries")
        return 0
    table = Table(["fingerprint", "size", "mode", "artifacts"])
    for entry in entries:
        table.add_row(
            [
                entry["fingerprint"][:16],
                format_bytes(entry["bytes"]),
                "equiv" if entry["equivalent"] else "run",
                ",".join(entry["artifacts"]),
            ]
        )
    print(table.render())
    print()
    print(
        f"{len(entries)} entr{'y' if len(entries) == 1 else 'ies'}, "
        f"{format_bytes(cache.total_bytes())} total"
    )
    return 0


def _cmd_machines(_args) -> int:
    for name, builder in sorted(_MACHINES.items()):
        print(builder(1).describe())
        print()
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "tune":
            return _cmd_tune(args)
        if args.command == "inspect":
            return _cmd_inspect(args)
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "machines":
            return _cmd_machines(args)
    except KeyboardInterrupt:
        # A tune in progress has already flushed a final checkpoint
        # (the driver catches the interrupt, saves, and re-raises), so
        # the run is resumable; exit with the conventional 128+SIGINT.
        print(
            "\ninterrupted — if a --workdir was set, continue with "
            "`repro tune --resume <workdir>`",
            file=sys.stderr,
        )
        return 130
    raise SystemExit(2)  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
