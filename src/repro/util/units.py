"""Byte and time unit constants, parsing, and human-readable formatting.

The machine model expresses capacities in bytes and bandwidths in bytes per
second; the simulator expresses time in seconds.  These helpers keep the
literals readable (``16 * GIB``) and the reports legible (``"16.0 GiB"``).
"""

from __future__ import annotations

import re

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "US",
    "MS",
    "format_bytes",
    "format_time",
    "format_rate",
    "parse_bytes",
]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

#: One microsecond / millisecond, in seconds.
US = 1e-6
MS = 1e-3

_BYTE_SUFFIXES = [("TiB", TIB), ("GiB", GIB), ("MiB", MIB), ("KiB", KIB)]

_PARSE_RE = re.compile(
    r"^\s*(?P<sign>[+-])?\s*(?P<num>[0-9]*\.?[0-9]+)\s*"
    r"(?P<unit>[KMGT]i?B|B)?\s*$",
    re.IGNORECASE,
)

_UNIT_FACTORS = {
    "b": 1,
    "kib": KIB,
    "kb": KIB,
    "mib": MIB,
    "mb": MIB,
    "gib": GIB,
    "gb": GIB,
    "tib": TIB,
    "tb": TIB,
}


def format_bytes(n: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``format_bytes(2**34)
    == '16.0 GiB'``."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for suffix, factor in _BYTE_SUFFIXES:
        if n >= factor:
            return f"{sign}{n / factor:.1f} {suffix}"
    return f"{sign}{n:.0f} B"


def parse_bytes(text: str) -> int:
    """Parse ``"16 GiB"``-style strings into a byte count.

    Decimal suffixes (``GB``) are treated as their binary counterparts —
    fine for configuration convenience, not for billing.

    Quantities are capacities/sizes, so they must be non-negative: a
    ``"-16 GiB"`` raises :class:`ValueError` instead of silently
    building a nonsense machine model downstream.
    """
    match = _PARSE_RE.match(text)
    if match is None:
        raise ValueError(f"cannot parse byte quantity: {text!r}")
    if match.group("sign") == "-":
        raise ValueError(
            f"byte quantity must be non-negative: {text!r}"
        )
    num = float(match.group("num"))
    unit = (match.group("unit") or "B").lower()
    return int(num * _UNIT_FACTORS[unit])


def format_time(seconds: float) -> str:
    """Render a duration at an appropriate scale (``"1.24 ms"``)."""
    s = float(seconds)
    sign = "-" if s < 0 else ""
    s = abs(s)
    if s >= 60.0:
        minutes = int(s // 60)
        return f"{sign}{minutes}m{s - 60 * minutes:04.1f}s"
    if s >= 1.0:
        return f"{sign}{s:.2f} s"
    if s >= 1e-3:
        return f"{sign}{s * 1e3:.2f} ms"
    if s >= 1e-6:
        return f"{sign}{s * 1e6:.2f} us"
    return f"{sign}{s * 1e9:.1f} ns"


def format_rate(bytes_per_second: float) -> str:
    """Render a bandwidth (``"900.0 GiB/s"``)."""
    return f"{format_bytes(bytes_per_second)}/s"
