"""A thin structured-logging layer.

The library logs through the standard :mod:`logging` module under the
``repro`` namespace so that downstream users control verbosity with the
usual knobs.  The helpers here add two conveniences used by the search
driver: a one-call configuration for scripts, and a key=value event
formatter so search traces stay grep-able.
"""

from __future__ import annotations

import logging
from typing import Any

__all__ = ["get_logger", "configure", "kv"]

_ROOT_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under ``repro``.

    ``get_logger("search.ccd")`` yields the ``repro.search.ccd`` logger.
    """
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure(level: int = logging.INFO) -> None:
    """Attach a stderr handler to the ``repro`` root logger (idempotent).

    Intended for scripts and examples; library code never calls this.
    """
    root = logging.getLogger(_ROOT_NAME)
    root.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in root.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        root.addHandler(handler)


def kv(event: str, **fields: Any) -> str:
    """Format a structured log line: ``kv('eval', n=3, t=0.5)`` →
    ``"eval n=3 t=0.5"``.

    Floats are rendered compactly; strings with spaces are quoted.
    """
    parts = [event]
    for key, value in fields.items():
        if isinstance(value, float):
            rendered = f"{value:.6g}"
        elif isinstance(value, str) and (" " in value or not value):
            rendered = repr(value)
        else:
            rendered = str(value)
        parts.append(f"{key}={rendered}")
    return " ".join(parts)
