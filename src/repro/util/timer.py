"""Wall-clock timing utilities for search budgeting.

AutoMap's offline search is time-limited ("the search always has a current
best mapping, and so the search can be time-limited if desired", paper
§3.3).  :class:`Budget` implements that contract: search algorithms poll
``budget.exhausted`` between mapping evaluations and stop cleanly when the
limit is reached.  :class:`Stopwatch` is the underlying monotonic timer.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Optional

__all__ = ["Stopwatch", "Budget"]


class Stopwatch:
    """A restartable monotonic stopwatch.

    The clock source is injectable for deterministic tests.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._start: Optional[float] = None
        self._accumulated = 0.0

    def start(self) -> "Stopwatch":
        """Start (or resume) the stopwatch.  Returns ``self`` for chaining."""
        if self._start is None:
            self._start = self._clock()
        return self

    def stop(self) -> float:
        """Pause the stopwatch and return total elapsed seconds."""
        if self._start is not None:
            self._accumulated += self._clock() - self._start
            self._start = None
        return self._accumulated

    def reset(self) -> None:
        """Zero the stopwatch (stops it if running)."""
        self._start = None
        self._accumulated = 0.0

    @property
    def running(self) -> bool:
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Total elapsed seconds, including the in-flight interval."""
        total = self._accumulated
        if self._start is not None:
            total += self._clock() - self._start
        return total


class Budget:
    """A combined wall-clock / evaluation-count budget for a search.

    Either limit may be ``None`` (unlimited).  The budget also tracks how
    much of the elapsed wall time was spent *evaluating* candidate mappings
    versus deciding what to evaluate next — the statistic the paper reports
    in §5.3 (CCD/CD spend ~99 % of search time evaluating; OpenTuner as
    little as 13 %).
    """

    def __init__(
        self,
        max_seconds: Optional[float] = None,
        max_evaluations: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_seconds is not None and max_seconds < 0:
            raise ValueError("max_seconds must be non-negative")
        if max_evaluations is not None and max_evaluations < 0:
            raise ValueError("max_evaluations must be non-negative")
        self.max_seconds = max_seconds
        self.max_evaluations = max_evaluations
        self.evaluations = 0
        self._wall = Stopwatch(clock).start()
        self._evaluating = Stopwatch(clock)

    @property
    def elapsed(self) -> float:
        """Seconds since the budget was created."""
        return self._wall.elapsed

    @property
    def evaluation_seconds(self) -> float:
        """Seconds spent inside :meth:`evaluation` blocks."""
        return self._evaluating.elapsed

    @property
    def evaluation_fraction(self) -> float:
        """Fraction of total search time spent evaluating mappings."""
        total = self.elapsed
        if total <= 0:
            return 0.0
        return min(1.0, self._evaluating.elapsed / total)

    @property
    def exhausted(self) -> bool:
        """True once either limit has been reached."""
        if self.max_seconds is not None and self.elapsed >= self.max_seconds:
            return True
        if (
            self.max_evaluations is not None
            and self.evaluations >= self.max_evaluations
        ):
            return True
        return False

    @property
    def remaining_evaluations(self) -> float:
        """Evaluations left, or ``inf`` when unlimited."""
        if self.max_evaluations is None:
            return math.inf
        return max(0, self.max_evaluations - self.evaluations)

    def evaluation(self) -> "_EvaluationScope":
        """Context manager marking one candidate-mapping evaluation::

            with budget.evaluation():
                performance = oracle(mapping)
        """
        return _EvaluationScope(self)


class _EvaluationScope:
    """Context manager recording one evaluation against a :class:`Budget`."""

    def __init__(self, budget: Budget) -> None:
        self._budget = budget

    def __enter__(self) -> None:
        self._budget._evaluating.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self._budget._evaluating.stop()
        if exc_type is None:
            self._budget.evaluations += 1
