"""JSON serialization helpers for dataclass trees and numpy scalars.

The AutoMap driver persists two artifacts: the search-space representation
file (paper §3.3) and the profiles database.  Both are plain JSON so they
can be inspected, diffed, and versioned.  These helpers make dataclasses,
enums, tuples, and numpy scalar types round-trip cleanly.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Union

import numpy as np

__all__ = ["to_jsonable", "dump_json", "load_json", "atomic_write_text"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-encodable primitives.

    Handles dataclasses (as dicts), enums (as their ``value``), numpy
    scalars and arrays, sets (sorted lists when possible), tuples, and
    nested containers.  Unknown objects raise ``TypeError`` eagerly so
    serialization bugs surface at write time, not at read time.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return obj.value
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return [to_jsonable(x) for x in obj.tolist()]
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                key = str(to_jsonable(key))
            out[key] = to_jsonable(value)
        return out
    if isinstance(obj, (set, frozenset)):
        items = [to_jsonable(x) for x in obj]
        try:
            return sorted(items)
        except TypeError:
            return items
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(x) for x in obj]
    raise TypeError(f"cannot serialize object of type {type(obj).__name__}")


def atomic_write_text(text: str, path: Union[str, Path]) -> None:
    """Write ``text`` to ``path`` atomically.

    The content is first written to a temporary file in the same
    directory and then moved into place with :func:`os.replace`, so a
    crash (or kill signal) mid-write can never leave a truncated or
    half-old file behind: readers see either the previous complete
    content or the new complete content.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def dump_json(obj: Any, path: Union[str, Path], indent: int = 2) -> None:
    """Serialize ``obj`` to ``path`` as pretty-printed JSON.

    The write is atomic (temp file + :func:`os.replace`): serialization
    errors or crashes mid-write leave any existing file at ``path``
    untouched rather than truncated.
    """
    text = json.dumps(to_jsonable(obj), indent=indent, sort_keys=True)
    atomic_write_text(text + "\n", path)


def load_json(path: Union[str, Path]) -> Any:
    """Read a JSON document from ``path``."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return json.load(fh)
