"""JSON serialization helpers for dataclass trees and numpy scalars.

The AutoMap driver persists two artifacts: the search-space representation
file (paper §3.3) and the profiles database.  Both are plain JSON so they
can be inspected, diffed, and versioned.  These helpers make dataclasses,
enums, tuples, and numpy scalar types round-trip cleanly.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path
from typing import Any, Union

import numpy as np

__all__ = ["to_jsonable", "dump_json", "load_json"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-encodable primitives.

    Handles dataclasses (as dicts), enums (as their ``value``), numpy
    scalars and arrays, sets (sorted lists when possible), tuples, and
    nested containers.  Unknown objects raise ``TypeError`` eagerly so
    serialization bugs surface at write time, not at read time.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return obj.value
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return [to_jsonable(x) for x in obj.tolist()]
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                key = str(to_jsonable(key))
            out[key] = to_jsonable(value)
        return out
    if isinstance(obj, (set, frozenset)):
        items = [to_jsonable(x) for x in obj]
        try:
            return sorted(items)
        except TypeError:
            return items
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(x) for x in obj]
    raise TypeError(f"cannot serialize object of type {type(obj).__name__}")


def dump_json(obj: Any, path: Union[str, Path], indent: int = 2) -> None:
    """Serialize ``obj`` to ``path`` as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(to_jsonable(obj), fh, indent=indent, sort_keys=True)
        fh.write("\n")


def load_json(path: Union[str, Path]) -> Any:
    """Read a JSON document from ``path``."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return json.load(fh)
