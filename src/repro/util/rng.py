"""Deterministic random-number streams.

Everything stochastic in this repository — run-to-run measurement noise,
randomised search techniques, workload generators — draws from an
:class:`RngStream`.  Streams are seeded explicitly and can be *forked* into
independent child streams by name, so that adding a new consumer of
randomness never perturbs the draws seen by existing consumers.  This is
the standard reproducibility discipline for simulation codes: the same
(seed, name-path) always yields the same sequence.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence

import numpy as np

__all__ = ["derive_seed", "RngStream"]

# Upper bound for derived seeds; fits comfortably in numpy's SeedSequence.
_SEED_SPACE = 2**63


def derive_seed(base_seed: int, *names: str) -> int:
    """Derive a child seed from ``base_seed`` and a path of names.

    The derivation hashes the (seed, names) pair with BLAKE2b, giving
    well-mixed, platform-independent child seeds.  Distinct name paths map
    to distinct seeds with overwhelming probability.

    Parameters
    ----------
    base_seed:
        The parent seed (any Python int).
    names:
        A path of stream names, e.g. ``("noise", "pennant", "run3")``.

    Returns
    -------
    int
        A non-negative seed ``< 2**63``.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(base_seed)).encode("utf-8"))
    for name in names:
        h.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
        h.update(str(name).encode("utf-8"))
    return int.from_bytes(h.digest(), "little") % _SEED_SPACE


class RngStream:
    """A named, forkable wrapper over :class:`numpy.random.Generator`.

    Examples
    --------
    >>> root = RngStream(seed=42)
    >>> noise = root.fork("noise")
    >>> search = root.fork("search")
    >>> a = noise.generator.normal()
    >>> # forking "search" again yields an identical stream:
    >>> b = root.fork("search").generator.random()
    >>> c = root.fork("search").generator.random()
    >>> b == c
    True
    """

    __slots__ = ("seed", "name", "_generator")

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = int(seed)
        self.name = name
        self._generator: Optional[np.random.Generator] = None

    @property
    def generator(self) -> np.random.Generator:
        """The lazily-created numpy generator for this stream."""
        if self._generator is None:
            self._generator = np.random.default_rng(self.seed)
        return self._generator

    def fork(self, *names: str) -> "RngStream":
        """Create an independent child stream identified by ``names``.

        Forking is a pure function of ``(self.seed, names)``; it does not
        advance this stream's generator state.
        """
        if not names:
            raise ValueError("fork() requires at least one name")
        child_seed = derive_seed(self.seed, *names)
        return RngStream(child_seed, name="/".join((self.name, *names)))

    def integers(self, low: int, high: int) -> int:
        """Draw one integer in ``[low, high)``."""
        return int(self.generator.integers(low, high))

    def choice(self, options: Sequence):
        """Pick one element of ``options`` uniformly at random."""
        if len(options) == 0:
            raise ValueError("cannot choose from an empty sequence")
        return options[self.integers(0, len(options))]

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Draw one float uniformly from ``[low, high)``."""
        return float(self.generator.uniform(low, high))

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0) -> float:
        """Draw one lognormal sample (used for run-to-run noise)."""
        return float(self.generator.lognormal(mean, sigma))

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self.generator.shuffle(items)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """A JSON-serializable snapshot of this stream.

        Captures the seed, the name path, and the underlying
        bit-generator state (which advances with every draw), so a
        stream restored with :meth:`load_state` continues the exact
        sequence this one would have produced.
        """
        import copy

        return {
            "seed": self.seed,
            "name": self.name,
            "bit_generator": copy.deepcopy(
                self.generator.bit_generator.state
            ),
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`.

        The seed and name must match this stream's (guarding against
        restoring a checkpoint into the wrong consumer).
        """
        if int(state["seed"]) != self.seed or state["name"] != self.name:
            raise ValueError(
                f"rng state is for stream {state['name']!r} "
                f"(seed {state['seed']}); this stream is {self.name!r} "
                f"(seed {self.seed})"
            )
        self.generator.bit_generator.state = state["bit_generator"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(name={self.name!r}, seed={self.seed})"
