"""Shared utilities for the AutoMap reproduction.

Small, dependency-light helpers used across the machine model, runtime
simulator, search algorithms, and benchmark applications:

- :mod:`repro.util.rng` — deterministic, forkable random-number streams;
- :mod:`repro.util.units` — byte/time unit constants and formatting;
- :mod:`repro.util.logging` — a thin structured-logging layer;
- :mod:`repro.util.serialization` — JSON helpers for dataclass trees.

Wall-clock timing (the former :mod:`repro.util.timer`) moved to
:mod:`repro.obs.metrics` alongside the metrics registry.
"""

from repro.util.rng import RngStream, derive_seed
from repro.util.units import (
    KIB,
    MIB,
    GIB,
    format_bytes,
    format_time,
    parse_bytes,
)

__all__ = [
    "RngStream",
    "derive_seed",
    "KIB",
    "MIB",
    "GIB",
    "format_bytes",
    "format_time",
    "parse_bytes",
]
