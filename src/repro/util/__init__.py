"""Shared utilities for the AutoMap reproduction.

Small, dependency-light helpers used across the machine model, runtime
simulator, search algorithms, and benchmark applications:

- :mod:`repro.util.rng` — deterministic, forkable random-number streams;
- :mod:`repro.util.units` — byte/time unit constants and formatting;
- :mod:`repro.util.logging` — a thin structured-logging layer;
- :mod:`repro.util.serialization` — JSON helpers for dataclass trees;
- :mod:`repro.util.timer` — wall-clock timers for search budgeting.
"""

from repro.util.rng import RngStream, derive_seed
from repro.util.timer import Stopwatch, Budget
from repro.util.units import (
    KIB,
    MIB,
    GIB,
    format_bytes,
    format_time,
    parse_bytes,
)

__all__ = [
    "RngStream",
    "derive_seed",
    "Stopwatch",
    "Budget",
    "KIB",
    "MIB",
    "GIB",
    "format_bytes",
    "format_time",
    "parse_bytes",
]
