"""Shared plumbing for the synthetic task-graph generator families.

A generator is an ordinary :class:`repro.apps.base.App` — it goes
through the same declarative spec, the same :class:`GraphBuilder`
emission, and the same registry — parameterised by structural knobs
(width, depth, element counts) instead of a paper input deck.  The one
extra degree of freedom is an explicit ``parts`` override: the paper
apps always decompose relative to the machine's GPU count, while the
fuzz harness needs to pin degenerate decompositions (``parts=1``) and
oversubscribed ones regardless of the machine.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.base import App
from repro.machine.model import Machine

__all__ = ["GeneratorApp", "check_param"]


def check_param(name: str, value: int, lo: int, hi: int) -> int:
    """Validate an integral generator knob against an inclusive range.

    Generators are driven by fuzzers and ``--gen-param`` strings, so
    every knob is range-checked up front: a nonsense parameter must be
    a loud :class:`ValueError` at construction, never a degenerate
    graph discovered three layers down.
    """
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if not lo <= value <= hi:
        raise ValueError(
            f"{name}={value} out of range [{lo}, {hi}]"
        )
    return value


class GeneratorApp(App):
    """Base class for generator families.

    ``parts`` pins the group-launch decomposition when given (1 is
    allowed — the degenerate single-point launch the analyzer must
    survive); ``None`` keeps the machine-derived default.
    """

    #: Explicit decomposition override (None = machine-derived).
    explicit_parts: Optional[int] = None

    def parts(self, machine: Machine) -> int:
        if self.explicit_parts is not None:
            return self.explicit_parts
        return super().parts(machine)
