"""Halo-exchange family: stencil-like sweeps with ghost strips.

A 1D-decomposed grid where each sweep updates its block and reads
``halo``-wide ghost strips from both neighbours — the communication
pattern of structured stencils and wavefront solvers.  Iterating the
sweep chains the halo dependences into the diagonal wavefront the
family is named for; a cheap block-local ``relax`` kind rides along so
the search space has a second, communication-free kind to place.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.apps.base import ELEM_BYTES, KindSpec, RootSpec, SlotSpec
from repro.generators.base import GeneratorApp, check_param
from repro.taskgraph.task import Privilege, ShardPattern

__all__ = ["HaloApp"]


class HaloApp(GeneratorApp):
    """Stencil-like halo sweeps on ``elems`` grid points."""

    name = "halo"

    def __init__(
        self,
        elems: int = 1 << 18,
        halo: int = 128,
        iterations: int = 2,
        parts: Optional[int] = None,
        sweep_flops: float = 16.0,
    ) -> None:
        self.elems = check_param("elems", elems, 256, 1 << 28)
        self.halo = check_param("halo", halo, 1, 1 << 20)
        self.iterations = check_param("iterations", iterations, 1, 64)
        if parts is not None:
            self.explicit_parts = check_param("parts", parts, 1, 4096)
        if not sweep_flops > 0:
            raise ValueError(f"sweep_flops must be positive: {sweep_flops!r}")
        self.sweep_flops = float(sweep_flops)

    def input_label(self) -> str:
        return f"e{self.elems}h{self.halo}"

    # ------------------------------------------------------------------
    def roots(self) -> Sequence[RootSpec]:
        return [RootSpec("grid", self.elems)]

    def kinds(self) -> Sequence[KindSpec]:
        R, RW = Privilege.READ, Privilege.READ_WRITE
        B = ShardPattern.BLOCK
        LO, HI = ShardPattern.STRIP_LO_OUT, ShardPattern.STRIP_HI_OUT
        halo_bytes = self.halo * ELEM_BYTES
        return [
            KindSpec(
                "sweep",
                slots=(
                    SlotSpec("center", "grid", RW, B),
                    SlotSpec("lo", "grid", R, LO, halo_bytes=halo_bytes),
                    SlotSpec("hi", "grid", R, HI, halo_bytes=halo_bytes),
                ),
                flops_per_elem=self.sweep_flops,
                work_root="grid",
            ),
            KindSpec(
                "relax",
                slots=(SlotSpec("block", "grid", RW, B),),
                flops_per_elem=2.0,
                work_root="grid",
            ),
        ]
