"""Fork-join family: scatter, parallel work, full-fan-in join.

Each iteration forks a small seed into a wide work array (scatter),
grinds the work array in parallel, and joins every worker's block back
into the seed (each join point reads the *whole* work array, giving the
all-to-one dependence fan of a reduction/join).  The seed write makes
the next iteration's fork depend on the previous join, so iterations
chain into the classic fork-join ladder.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.apps.base import KindSpec, RootSpec, SlotSpec
from repro.generators.base import GeneratorApp, check_param
from repro.taskgraph.task import Privilege, ShardPattern

__all__ = ["ForkJoinApp"]


class ForkJoinApp(GeneratorApp):
    """``width`` parallel workers over ``elems`` elements per iteration."""

    name = "forkjoin"

    def __init__(
        self,
        width: Optional[int] = None,
        elems: int = 1 << 16,
        iterations: int = 2,
        work_flops: float = 50.0,
    ) -> None:
        if width is not None:
            self.explicit_parts = check_param("width", width, 1, 4096)
        self.elems = check_param("elems", elems, 64, 1 << 28)
        self.iterations = check_param("iterations", iterations, 1, 64)
        if not work_flops > 0:
            raise ValueError(f"work_flops must be positive: {work_flops!r}")
        self.work_flops = float(work_flops)

    def input_label(self) -> str:
        width = "auto" if self.explicit_parts is None else self.explicit_parts
        return f"w{width}e{self.elems}"

    # ------------------------------------------------------------------
    def roots(self) -> Sequence[RootSpec]:
        return [
            RootSpec("seed", 1024),
            RootSpec("work", self.elems),
        ]

    def kinds(self) -> Sequence[KindSpec]:
        R, W, RW = Privilege.READ, Privilege.WRITE, Privilege.READ_WRITE
        B, REP = ShardPattern.BLOCK, ShardPattern.REPLICATED
        return [
            KindSpec(
                "fork",
                slots=(
                    SlotSpec("seed", "seed", R, REP),
                    SlotSpec("out", "work", W, B),
                ),
                flops_per_elem=2.0,
                work_root="work",
            ),
            KindSpec(
                "work",
                slots=(SlotSpec("data", "work", RW, B),),
                flops_per_elem=self.work_flops,
                work_root="work",
            ),
            KindSpec(
                "join",
                slots=(
                    SlotSpec("all", "work", R, REP),
                    SlotSpec("seed", "seed", RW, B),
                ),
                flops_per_elem=1.0,
                work_root="work",
            ),
        ]
