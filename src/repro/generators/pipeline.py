"""Pipelined layer family: LLM-inference-shaped graphs.

``layers`` sequential transformer-like stages, each reading its own
weight shard and updating the activation array in place — the shape of
pipelined LLM inference, where per-layer weight placement across a
mixed-accelerator cluster is exactly the decision Helix-style systems
optimise.  The task-kind count grows with ``layers``, so this family
stretches the *multi-kind* axis of the search space (one decision per
layer), unlike the other families which stretch width or depth.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.apps.base import KindSpec, RootSpec, SlotSpec
from repro.generators.base import GeneratorApp, check_param
from repro.taskgraph.task import Privilege, ShardPattern

__all__ = ["PipelineApp"]


class PipelineApp(GeneratorApp):
    """``layers`` weight-stationary stages over a flowing activation."""

    name = "pipeline"

    def __init__(
        self,
        layers: int = 4,
        hidden: int = 1 << 14,
        weight_mult: int = 8,
        iterations: int = 2,
        parts: Optional[int] = None,
        layer_flops: float = 64.0,
    ) -> None:
        self.layers = check_param("layers", layers, 1, 48)
        self.hidden = check_param("hidden", hidden, 64, 1 << 24)
        self.weight_mult = check_param("weight_mult", weight_mult, 1, 64)
        self.iterations = check_param("iterations", iterations, 1, 64)
        if parts is not None:
            self.explicit_parts = check_param("parts", parts, 1, 4096)
        if not layer_flops > 0:
            raise ValueError(f"layer_flops must be positive: {layer_flops!r}")
        self.layer_flops = float(layer_flops)

    def input_label(self) -> str:
        return f"l{self.layers}h{self.hidden}"

    # ------------------------------------------------------------------
    def roots(self) -> Sequence[RootSpec]:
        roots = [RootSpec("acts", self.hidden)]
        roots += [
            RootSpec(f"w{i}", self.hidden * self.weight_mult)
            for i in range(self.layers)
        ]
        return roots

    def kinds(self) -> Sequence[KindSpec]:
        R, RW = Privilege.READ, Privilege.READ_WRITE
        B = ShardPattern.BLOCK
        return [
            KindSpec(
                f"layer{i}",
                slots=(
                    SlotSpec("acts", "acts", RW, B),
                    SlotSpec("w", f"w{i}", R, B),
                ),
                flops_per_elem=self.layer_flops,
                work_root="acts",
            )
            for i in range(self.layers)
        ]
