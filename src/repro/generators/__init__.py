"""Parameterised synthetic task-graph generator families.

Four structural families stress the axes the five paper applications
leave narrow, emitted through the same declarative spec and
:class:`~repro.taskgraph.builder.GraphBuilder` pipeline as the paper
apps and registered in :data:`repro.apps.registry.APP_REGISTRY` under
their family names:

- :class:`~repro.generators.forkjoin.ForkJoinApp` (``forkjoin``) —
  scatter / parallel work / full-fan-in join ladders (width axis);
- :class:`~repro.generators.halo.HaloApp` (``halo``) — stencil-like
  sweeps with ghost-strip halo exchange (communication axis);
- :class:`~repro.generators.pipeline.PipelineApp` (``pipeline``) —
  LLM-inference-shaped sequential layer stages (kind-count axis);
- :class:`~repro.generators.reduction.ReductionApp` (``reduction``) —
  fanout-ary combining trees over shrinking data (depth axis).

``repro tune/analyze/fuzz`` construct them by name with ``--gen-param
k=v`` knobs; the fuzz harness samples them randomly against the
machine zoo to exercise the soundness invariants.
"""

from typing import Callable, Dict

from repro.apps.base import App
from repro.generators.base import GeneratorApp, check_param
from repro.generators.forkjoin import ForkJoinApp
from repro.generators.halo import HaloApp
from repro.generators.pipeline import PipelineApp
from repro.generators.reduction import ReductionApp

__all__ = [
    "GeneratorApp",
    "check_param",
    "ForkJoinApp",
    "HaloApp",
    "PipelineApp",
    "ReductionApp",
    "GENERATOR_FAMILIES",
]

#: Family name -> constructor, merged into ``APP_REGISTRY``.
GENERATOR_FAMILIES: Dict[str, Callable[..., App]] = {
    ForkJoinApp.name: ForkJoinApp,
    HaloApp.name: HaloApp,
    PipelineApp.name: PipelineApp,
    ReductionApp.name: ReductionApp,
}
