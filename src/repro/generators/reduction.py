"""Reduction-tree family: level-by-level fan-in over shrinking data.

``levels`` reduce stages over a leaf array, each level's output a
``fanout``× smaller partial array.  The first level reads its leaf
block; every later level reads the *whole* previous partial array
(replicated read), so the derived dependences form the all-to-all
fan-in of a combining tree, while the shrinking data sizes shift the
compute/communication balance level by level — small deep trees are
launch-overhead-bound, wide shallow ones bandwidth-bound.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.apps.base import KindSpec, RootSpec, SlotSpec
from repro.generators.base import GeneratorApp, check_param
from repro.taskgraph.task import Privilege, ShardPattern

__all__ = ["ReductionApp"]


class ReductionApp(GeneratorApp):
    """A ``levels``-deep, ``fanout``-ary reduction over ``elems`` leaves."""

    name = "reduction"

    def __init__(
        self,
        levels: int = 3,
        fanout: int = 8,
        elems: int = 1 << 18,
        iterations: int = 2,
        parts: Optional[int] = None,
    ) -> None:
        self.levels = check_param("levels", levels, 1, 16)
        self.fanout = check_param("fanout", fanout, 2, 64)
        self.elems = check_param("elems", elems, 256, 1 << 28)
        self.iterations = check_param("iterations", iterations, 1, 64)
        if parts is not None:
            self.explicit_parts = check_param("parts", parts, 1, 4096)

    def input_label(self) -> str:
        return f"d{self.levels}f{self.fanout}e{self.elems}"

    def _level_elems(self, level: int) -> int:
        return max(8, self.elems // self.fanout ** (level + 1))

    # ------------------------------------------------------------------
    def roots(self) -> Sequence[RootSpec]:
        roots = [RootSpec("leaves", self.elems)]
        roots += [
            RootSpec(f"partial{i}", self._level_elems(i))
            for i in range(self.levels)
        ]
        return roots

    def kinds(self) -> Sequence[KindSpec]:
        R, W = Privilege.READ, Privilege.WRITE
        B, REP = ShardPattern.BLOCK, ShardPattern.REPLICATED
        out = []
        for i in range(self.levels):
            src = "leaves" if i == 0 else f"partial{i - 1}"
            pattern = B if i == 0 else REP
            out.append(
                KindSpec(
                    f"reduce{i}",
                    slots=(
                        SlotSpec("src", src, R, pattern),
                        SlotSpec("dst", f"partial{i}", W, B),
                    ),
                    flops_per_elem=4.0,
                    work_root=src,
                )
            )
        return out
