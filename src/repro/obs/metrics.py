"""A lightweight metrics registry (counters, gauges, histograms).

One tuning run accumulates dozens of scalar statistics: suggestion and
evaluation counts, canonicalization folds, static prunes, worker-pool
recovery events, the simulated search clock.  Historically each lived as
an ad-hoc attribute on whichever object happened to increment it; the
registry gives them one home with uniform naming (``oracle.suggested``,
``supervisor.timeouts``, ...), one serialization (:meth:`MetricsRegistry.
as_dict`, embedded in reports and checkpoints), and one invariant: a
metric is *derived state*.  Resume never restores metrics from a
checkpoint — the deterministic replay re-derives every value — so
serializing them can never break resume bit-identity.

The wall-clock machinery search budgeting needs (formerly
``repro.util.timer``) lives here too: :class:`Stopwatch` is the
monotonic timer and :class:`WallBudget` the real-time safety limit the
oracle polls.  The per-evaluation counting the old ``Budget`` class
duplicated is gone — the oracle's registry counters are the single
source of truth for evaluation accounting.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Stopwatch",
    "WallBudget",
    "to_prometheus_text",
]


class Counter:
    """A monotonically-increasing scalar (ints or accumulated floats)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only increase")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A scalar that can move in either direction (e.g. best-so-far)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Streaming summary of an observed distribution.

    Tracks count / total / min / max — enough for the report and
    checkpoint artifacts without retaining every sample (the profiles
    database already keeps raw samples where they matter).
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram({self.name}, n={self.count})"


def _jsonable_scalar(value):
    """Non-finite floats have no JSON encoding; null them out."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


class MetricsRegistry:
    """Get-or-create store of named counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """A sorted, JSON-encodable snapshot of every metric.

        This is the form embedded in ``report``/``checkpoint`` artifacts
        and the form the resume tests compare: an interrupted-and-resumed
        run must reproduce the uninterrupted run's snapshot exactly.
        """
        return {
            "counters": {
                name: _jsonable_scalar(c.value)
                for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: _jsonable_scalar(g.value)
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    key: _jsonable_scalar(value)
                    for key, value in h.summary().items()
                }
                for name, h in sorted(self._histograms.items())
            },
        }


def _prometheus_name(name: str, suffix: str = "") -> str:
    """A registry name as a Prometheus metric name: dots (our namespace
    separator) become underscores, invalid characters are dropped."""
    cleaned = []
    for ch in name:
        if ch.isalnum() or ch == "_":
            cleaned.append(ch)
        else:
            cleaned.append("_")
    text = "".join(cleaned)
    if text and text[0].isdigit():
        text = "_" + text
    return f"automap_{text}{suffix}"


def _prometheus_number(value) -> str:
    if isinstance(value, bool):  # bools are ints; keep 0/1
        return "1" if value else "0"
    return repr(float(value))


def to_prometheus_text(registry) -> str:
    """Render a registry snapshot in the Prometheus text exposition
    format (one ``# TYPE`` header plus sample per metric, sorted by
    name).  Counters export as ``counter``, gauges as ``gauge``, and
    histograms as a ``summary``-style quartet: ``_count``, ``_sum``,
    ``_min``, and ``_max``.  Unset gauges and non-finite values are
    omitted — Prometheus has no encoding for "never observed".

    Accepts a live :class:`MetricsRegistry` or an :meth:`MetricsRegistry.
    as_dict` snapshot (the form reports and checkpoints embed).
    """
    lines = []
    snapshot = (
        registry.as_dict()
        if isinstance(registry, MetricsRegistry)
        else registry
    )
    for name, value in snapshot["counters"].items():
        if value is None:
            continue
        metric = _prometheus_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prometheus_number(value)}")
    for name, value in snapshot["gauges"].items():
        if value is None:
            continue
        metric = _prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prometheus_number(value)}")
    for name, summary in snapshot["histograms"].items():
        metric = _prometheus_name(name)
        lines.append(f"# TYPE {metric} summary")
        lines.append(
            f"{metric}_count {_prometheus_number(summary['count'])}"
        )
        lines.append(f"{metric}_sum {_prometheus_number(summary['total'])}")
        for bound in ("min", "max"):
            value = summary[bound]
            if value is not None:
                lines.append(
                    f"{metric}_{bound} {_prometheus_number(value)}"
                )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Wall-clock timing (folded in from the former repro.util.timer)
# ----------------------------------------------------------------------
class Stopwatch:
    """A restartable monotonic stopwatch.

    The clock source is injectable for deterministic tests.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._start: Optional[float] = None
        self._accumulated = 0.0

    def start(self) -> "Stopwatch":
        """Start (or resume) the stopwatch.  Returns ``self`` for chaining."""
        if self._start is None:
            self._start = self._clock()
        return self

    def stop(self) -> float:
        """Pause the stopwatch and return total elapsed seconds."""
        if self._start is not None:
            self._accumulated += self._clock() - self._start
            self._start = None
        return self._accumulated

    def reset(self) -> None:
        """Zero the stopwatch (stops it if running)."""
        self._start = None
        self._accumulated = 0.0

    @property
    def running(self) -> bool:
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Total elapsed seconds, including the in-flight interval."""
        total = self._accumulated
        if self._start is not None:
            total += self._clock() - self._start
        return total


class WallBudget:
    """A wall-clock safety limit for a search.

    AutoMap's offline search is time-limited ("the search always has a
    current best mapping, and so the search can be time-limited if
    desired", paper §3.3): the oracle polls ``budget.exhausted`` between
    evaluations and stops cleanly when the real-time limit is reached.
    ``None`` means unlimited.
    """

    def __init__(
        self,
        max_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_seconds is not None and max_seconds < 0:
            raise ValueError("max_seconds must be non-negative")
        self.max_seconds = max_seconds
        self._wall = Stopwatch(clock).start()

    @property
    def elapsed(self) -> float:
        """Seconds since the budget was created."""
        return self._wall.elapsed

    @property
    def exhausted(self) -> bool:
        """True once the wall-clock limit has been reached."""
        return (
            self.max_seconds is not None
            and self.elapsed >= self.max_seconds
        )
