"""Per-round search telemetry (§5.3's search statistics, per round).

A *round* is one natural unit of a search algorithm's outer loop — a
coordinate (task kind) within a CD/CCD rotation, one generation of
random search, one bandit generation of the ensemble tuner.  At each
round boundary the algorithm snapshots the oracle's counters; the delta
between boundaries says what the round cost (oracle calls, executed
evaluations, invalid / folded / statically-pruned candidates) and what
it bought (best-so-far).

Records stream to a machine-readable ``telemetry.jsonl`` artifact (one
JSON object per line, written incrementally so a killed run keeps every
completed round) and are surfaced in the
:class:`~repro.core.driver.TuningReport`.  Telemetry is observational:
it reads counters the search already maintains and never feeds back into
any decision, so enabling it cannot change results.  Wall-clock seconds
appear *only* here — never in simulator traces, which must stay
deterministic.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, IO, List, Optional, Union

__all__ = [
    "TELEMETRY_FILENAME",
    "RoundRecord",
    "SearchTelemetry",
    "load_telemetry",
]

#: Default artifact name inside a working directory.
TELEMETRY_FILENAME = "telemetry.jsonl"

#: Oracle counters snapshotted at round boundaries (cumulative values).
_ORACLE_COUNTERS = (
    "suggested",
    "evaluated",
    "invalid_suggestions",
    "failed_evaluations",
    "canonical_folds",
    "static_oom_pruned",
    "bound_pruned",
    "symmetry_folds",
)


@dataclass(frozen=True)
class RoundRecord:
    """One completed search round."""

    round: int
    algorithm: str
    #: The algorithm's position, e.g. ``"rotation=2 of=5 kind=stencil"``.
    label: str
    #: Oracle calls made this round (suggestions, incl. cached/invalid).
    proposed: int
    #: Candidates executed this round (novel valid mappings).
    evaluated: int
    #: Candidates rejected without execution this round.
    invalid: int
    #: Candidates that ran (or were proven) out of memory this round.
    failed: int
    #: Suggestions folded onto canonical representatives this round.
    folded: int
    #: Failures proven statically (no simulation paid) this round.
    pruned: int
    #: Cumulative oracle totals at the end of the round.
    total_suggested: int
    total_evaluated: int
    #: Best performance at round end (None until a mapping succeeded).
    best_performance: Optional[float]
    #: Simulated search-clock seconds at round end.
    sim_elapsed: float
    #: Real seconds this round took (observational only — never part of
    #: any simulated quantity).
    wall_seconds: float
    #: Candidates rejected this round by the static cost-bound pruner
    #: (defaulted last so pre-bound-pruning artifacts stay loadable).
    bound_pruned: int = 0
    #: Suggestions folded onto a relabeled twin by machine symmetry
    #: (defaulted so pre-symmetry artifacts stay loadable).
    symmetry_folds: int = 0

    def to_doc(self) -> dict:
        return {
            "round": self.round,
            "algorithm": self.algorithm,
            "label": self.label,
            "proposed": self.proposed,
            "evaluated": self.evaluated,
            "invalid": self.invalid,
            "failed": self.failed,
            "folded": self.folded,
            "pruned": self.pruned,
            "total_suggested": self.total_suggested,
            "total_evaluated": self.total_evaluated,
            "best_performance": self.best_performance,
            "sim_elapsed": self.sim_elapsed,
            "wall_seconds": self.wall_seconds,
            "bound_pruned": self.bound_pruned,
            "symmetry_folds": self.symmetry_folds,
        }

    @staticmethod
    def from_doc(doc: dict) -> "RoundRecord":
        return RoundRecord(
            round=doc["round"],
            algorithm=doc["algorithm"],
            label=doc["label"],
            proposed=doc["proposed"],
            evaluated=doc["evaluated"],
            invalid=doc["invalid"],
            failed=doc["failed"],
            folded=doc["folded"],
            pruned=doc["pruned"],
            total_suggested=doc["total_suggested"],
            total_evaluated=doc["total_evaluated"],
            best_performance=doc["best_performance"],
            sim_elapsed=doc["sim_elapsed"],
            wall_seconds=doc["wall_seconds"],
            bound_pruned=doc.get("bound_pruned", 0),
            symmetry_folds=doc.get("symmetry_folds", 0),
        )


@dataclass
class _Snapshot:
    counters: dict = field(default_factory=dict)
    wall: float = 0.0


class SearchTelemetry:
    """Round-boundary recorder attached to a search algorithm.

    With ``path`` set, every completed round is appended to the JSONL
    file immediately (line-buffered), so telemetry survives crashes the
    same way checkpoints do.  Without a path, records accumulate
    in-memory only.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.path = None if path is None else Path(path)
        self.rounds: List[RoundRecord] = []
        self._clock = clock
        self._open: Optional[_Snapshot] = None
        self._stream: Optional[IO[str]] = None

    # ------------------------------------------------------------------
    def begin_round(self, oracle) -> None:
        """Snapshot the oracle's counters at a round boundary.

        Calling begin twice without an ``end_round`` restarts the open
        round (the abandoned snapshot is dropped) — algorithms that bail
        out mid-round on budget exhaustion need no special casing.
        """
        self._open = _Snapshot(
            counters={
                name: getattr(oracle, name, 0) for name in _ORACLE_COUNTERS
            },
            wall=self._clock(),
        )

    def end_round(self, oracle, algorithm: str, label: str) -> None:
        """Close the open round and emit its record."""
        if self._open is None:
            return
        before = self._open
        self._open = None
        now = {
            name: getattr(oracle, name, 0) for name in _ORACLE_COUNTERS
        }
        best = getattr(oracle, "best_performance", math.inf)
        record = RoundRecord(
            round=len(self.rounds),
            algorithm=algorithm,
            label=label,
            proposed=now["suggested"] - before.counters["suggested"],
            evaluated=now["evaluated"] - before.counters["evaluated"],
            invalid=(
                now["invalid_suggestions"]
                - before.counters["invalid_suggestions"]
            ),
            failed=(
                now["failed_evaluations"]
                - before.counters["failed_evaluations"]
            ),
            folded=(
                now["canonical_folds"] - before.counters["canonical_folds"]
            ),
            pruned=(
                now["static_oom_pruned"]
                - before.counters["static_oom_pruned"]
            ),
            total_suggested=now["suggested"],
            total_evaluated=now["evaluated"],
            best_performance=(
                float(best) if math.isfinite(best) else None
            ),
            sim_elapsed=getattr(oracle, "sim_elapsed", 0.0),
            wall_seconds=max(0.0, self._clock() - before.wall),
            bound_pruned=(
                now["bound_pruned"] - before.counters["bound_pruned"]
            ),
            symmetry_folds=(
                now["symmetry_folds"] - before.counters["symmetry_folds"]
            ),
        )
        self.rounds.append(record)
        self._write(record)

    # ------------------------------------------------------------------
    def _write(self, record: RoundRecord) -> None:
        if self.path is None:
            return
        if self._stream is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # Truncate: a (re)started search re-emits its rounds from
            # the beginning (resume replays the original trajectory).
            self._stream = self.path.open("w", encoding="utf-8")
        self._stream.write(
            json.dumps(record.to_doc(), sort_keys=True) + "\n"
        )
        self._stream.flush()

    def close(self) -> None:
        """Flush and close the JSONL stream (idempotent)."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "SearchTelemetry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Aggregate view for the tuning report."""
        return {
            "rounds": len(self.rounds),
            "proposed": sum(r.proposed for r in self.rounds),
            "evaluated": sum(r.evaluated for r in self.rounds),
            "wall_seconds": sum(r.wall_seconds for r in self.rounds),
        }


def load_telemetry(path: Union[str, Path]) -> List[RoundRecord]:
    """Read a ``telemetry.jsonl`` artifact back into records."""
    records: List[RoundRecord] = []
    with Path(path).open("r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                records.append(RoundRecord.from_doc(json.loads(line)))
    return records
