"""Simulator execution traces in Chrome trace-event format.

:class:`TraceRecorder` collects *spans* — task executions, DMA copies,
and launch overheads — as the executor schedules them on processor and
channel timelines.  The recorder is opt-in and threaded through the
runtime as an optional argument (``None`` everywhere by default), so an
untraced run pays zero overhead and a traced run records pure
observations of the same deterministic schedule: every timestamp is a
**simulated**-clock value, never wall time, which is what makes a traced
run's makespan bit-identical to an untraced one.

Export is the Chrome trace-event JSON format (the ``traceEvents`` array
of ``ph: "X"`` complete events), directly loadable in ``chrome://
tracing`` and https://ui.perfetto.dev.  Processors and channels appear
as named threads under two process groups; per-span ``args`` carry the
compute / access / overhead decomposition the Fig. 6 narrative needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.util.serialization import dump_json, load_json

__all__ = [
    "TRACE_FILENAME",
    "CAT_TASK",
    "CAT_OVERHEAD",
    "CAT_COPY",
    "TraceSpan",
    "TraceRecorder",
    "TraceDiff",
    "diff_traces",
    "load_trace",
    "validate_chrome_trace",
]

#: Default artifact name inside a working directory.
TRACE_FILENAME = "trace.json"

#: Span categories (the Chrome ``cat`` field).
CAT_TASK = "task"
CAT_OVERHEAD = "overhead"
CAT_COPY = "copy"

#: Chrome process-group ids for the two resource classes.
_PID_PROCESSORS = 1
_PID_CHANNELS = 2

#: Simulated seconds -> Chrome trace microseconds.
_US = 1e6


@dataclass(frozen=True)
class TraceSpan:
    """One closed interval on one resource timeline (simulated clock)."""

    name: str
    category: str  # CAT_TASK | CAT_OVERHEAD | CAT_COPY
    resource: str  # processor uid or channel key
    start: float  # simulated seconds
    duration: float  # simulated seconds
    args: dict = field(default_factory=dict)

    @property
    def finish(self) -> float:
        return self.start + self.duration


class TraceRecorder:
    """Collects spans from one deterministic execution.

    The runtime only ever calls the ``record_*`` methods; everything
    else is export/analysis.  Spans arrive in the executor's
    deterministic scheduling order, so two recordings of the same
    (graph, machine, mapping) triple are identical — including across
    serial vs. multi-worker tuning runs, which converge on the same best
    mapping by the prefetch-then-replay bit-identity argument.
    """

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.spans: List[TraceSpan] = []
        #: Simulated makespan of the traced execution (set on finalize).
        self.makespan: float = 0.0

    # ------------------------------------------------------------------
    # Recording hooks (called by repro.runtime with the recorder on)
    # ------------------------------------------------------------------
    def record_task(
        self,
        kind_name: str,
        proc: str,
        start: float,
        duration: float,
        point: int,
        compute: float,
        access: float,
        overhead: float,
    ) -> None:
        """One point task occupying ``proc`` for ``duration`` seconds."""
        if overhead > 0:
            self.spans.append(
                TraceSpan(
                    name=f"{kind_name}:launch",
                    category=CAT_OVERHEAD,
                    resource=proc,
                    start=start,
                    duration=overhead,
                    args={"kind": kind_name, "point": point},
                )
            )
        self.spans.append(
            TraceSpan(
                name=kind_name,
                category=CAT_TASK,
                resource=proc,
                start=start,
                duration=duration,
                args={
                    "kind": kind_name,
                    "point": point,
                    "compute_seconds": compute,
                    "access_seconds": access,
                    "overhead_seconds": overhead,
                },
            )
        )

    def record_copy(
        self,
        channel: str,
        src_mem: str,
        dst_mem: str,
        start: float,
        duration: float,
        nbytes: int,
    ) -> None:
        """One hop of one DMA copy occupying ``channel``."""
        self.spans.append(
            TraceSpan(
                name=f"copy {src_mem}->{dst_mem}",
                category=CAT_COPY,
                resource=channel,
                start=start,
                duration=duration,
                args={
                    "src_mem": src_mem,
                    "dst_mem": dst_mem,
                    "bytes": nbytes,
                },
            )
        )

    def finalize(self, makespan: float) -> None:
        self.makespan = makespan

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def resources(self) -> List[str]:
        """Every resource that appears in the trace, sorted."""
        return sorted({span.resource for span in self.spans})

    def breakdown(self) -> dict:
        """Where the simulated time went (the Fig. 6 narrative).

        Processor-time fractions (``compute`` / ``copy`` / ``overhead``
        / ``idle``) are normalised over ``makespan x |active
        processors|`` — processors the mapping never used do not dilute
        the idle fraction.  The streaming access term of the cost model
        counts as copy time (it is data movement paid inside the task);
        DMA transfers on channels overlap with compute and are reported
        separately under ``dma``.
        """
        compute = access = overhead = busy = 0.0
        procs = set()
        dma_seconds = 0.0
        dma_bytes = 0
        dma_copies = 0
        for span in self.spans:
            if span.category == CAT_TASK:
                procs.add(span.resource)
                busy += span.duration
                compute += span.args.get("compute_seconds", 0.0)
                access += span.args.get("access_seconds", 0.0)
                overhead += span.args.get("overhead_seconds", 0.0)
            elif span.category == CAT_COPY:
                dma_seconds += span.duration
                dma_bytes += span.args.get("bytes", 0)
                dma_copies += 1
        proc_time = self.makespan * len(procs)
        idle = max(0.0, proc_time - busy)

        def fraction(seconds: float) -> float:
            return seconds / proc_time if proc_time > 0 else 0.0

        return {
            "makespan": self.makespan,
            "active_processors": len(procs),
            "compute_seconds": compute,
            "copy_seconds": access,
            "overhead_seconds": overhead,
            "idle_seconds": idle,
            "compute_fraction": fraction(compute),
            "copy_fraction": fraction(access),
            "overhead_fraction": fraction(overhead),
            "idle_fraction": fraction(idle),
            "dma": {
                "copies": dma_copies,
                "bytes_moved": dma_bytes,
                "copy_seconds": dma_seconds,
            },
        }

    # ------------------------------------------------------------------
    # Chrome trace-event export
    # ------------------------------------------------------------------
    def to_chrome_doc(self) -> dict:
        """The trace as a Chrome trace-event JSON document."""
        tids: Dict[str, int] = {
            name: index for index, name in enumerate(self.resources())
        }
        events: List[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": _PID_PROCESSORS,
                "args": {"name": "Processors"},
            },
            {
                "name": "process_name",
                "ph": "M",
                "pid": _PID_CHANNELS,
                "args": {"name": "Channels"},
            },
        ]
        for name, tid in sorted(tids.items()):
            pid = (
                _PID_CHANNELS
                if name.startswith("chan:")
                else _PID_PROCESSORS
            )
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        for span in self.spans:
            pid = (
                _PID_CHANNELS
                if span.category == CAT_COPY
                else _PID_PROCESSORS
            )
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": span.start * _US,
                    "dur": span.duration * _US,
                    "pid": pid,
                    "tid": tids[span.resource],
                    "args": dict(span.args, resource=span.resource),
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "label": self.label,
                "makespan_seconds": self.makespan,
                "clock": "simulated",
            },
        }

    def save(self, path: Union[str, Path]) -> None:
        """Write the Chrome trace-event JSON atomically."""
        dump_json(self.to_chrome_doc(), path)


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
@dataclass
class TraceDiff:
    """Result of comparing two traces span-by-span."""

    identical: bool
    #: Human-readable difference lines, first mismatches first.
    lines: List[str] = field(default_factory=list)
    #: Span-level mismatches found (may exceed ``len(lines)`` when the
    #: report was truncated).
    mismatches: int = 0

    def render(self) -> str:
        if self.identical:
            return "traces are identical"
        header = f"traces differ ({self.mismatches} mismatch(es))"
        return "\n".join([header] + self.lines)


def _span_fields(span: TraceSpan) -> dict:
    return {
        "name": span.name,
        "category": span.category,
        "resource": span.resource,
        "start": span.start,
        "duration": span.duration,
        "args": span.args,
    }


def diff_traces(
    a: TraceRecorder, b: TraceRecorder, limit: int = 20
) -> TraceDiff:
    """Compare two traces exactly — the incremental-identity gate.

    Spans are compared in recording order (the executor is
    deterministic, so equivalent executions produce the same order),
    field by field, floats included: any numeric deviation counts as a
    mismatch.  At most ``limit`` differences are rendered; the full
    count is always reported.
    """
    lines: List[str] = []
    mismatches = 0

    def note(line: str) -> None:
        nonlocal mismatches
        mismatches += 1
        if len(lines) < limit:
            lines.append(line)

    if a.makespan != b.makespan:
        note(f"makespan: {a.makespan!r} != {b.makespan!r}")
    if len(a.spans) != len(b.spans):
        note(f"span count: {len(a.spans)} != {len(b.spans)}")
    for index, (span_a, span_b) in enumerate(zip(a.spans, b.spans)):
        fields_a = _span_fields(span_a)
        fields_b = _span_fields(span_b)
        if fields_a == fields_b:
            continue
        for key in fields_a:
            if fields_a[key] != fields_b[key]:
                note(
                    f"span {index} ({span_a.name!r} on "
                    f"{span_a.resource}): {key} "
                    f"{fields_a[key]!r} != {fields_b[key]!r}"
                )
    return TraceDiff(
        identical=mismatches == 0, lines=lines, mismatches=mismatches
    )


# ----------------------------------------------------------------------
# Import / validation
# ----------------------------------------------------------------------
def validate_chrome_trace(doc: object) -> int:
    """Check ``doc`` is a well-formed Chrome trace-event document.

    Returns the number of duration (``ph: "X"``) events; raises
    :class:`ValueError` with a pointed message otherwise.  Used by the
    CI trace-validation gate and the loader below.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a Chrome trace: missing 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    spans = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {index} is not an object")
        phase = event.get("ph")
        if phase not in ("X", "M"):
            raise ValueError(
                f"event {index}: unsupported phase {phase!r} "
                "(expected 'X' or 'M')"
            )
        if "name" not in event or "pid" not in event:
            raise ValueError(f"event {index}: missing 'name' or 'pid'")
        if phase == "X":
            for key in ("ts", "dur", "tid"):
                if not isinstance(event.get(key), (int, float)):
                    raise ValueError(
                        f"event {index}: 'X' event needs numeric {key!r}"
                    )
            if event["dur"] < 0:
                raise ValueError(f"event {index}: negative duration")
            spans += 1
    return spans


def load_trace(path: Union[str, Path]) -> TraceRecorder:
    """Rebuild a :class:`TraceRecorder` from a saved Chrome trace.

    Only the spans this module itself exports are reconstructed; the
    document is validated first so a truncated or foreign file fails
    loudly.
    """
    doc = load_json(Path(path))
    validate_chrome_trace(doc)
    other = doc.get("otherData") or {}
    recorder = TraceRecorder(label=str(other.get("label", "")))
    recorder.finalize(float(other.get("makespan_seconds", 0.0)))
    for event in doc["traceEvents"]:
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args") or {})
        resource = args.pop("resource", None)
        if resource is None:
            raise ValueError(
                f"span {event.get('name')!r} lacks args.resource "
                "(not written by repro.obs.trace?)"
            )
        recorder.spans.append(
            TraceSpan(
                name=event["name"],
                category=event.get("cat", CAT_TASK),
                resource=resource,
                start=event["ts"] / _US,
                duration=event["dur"] / _US,
                args=args,
            )
        )
    return recorder
