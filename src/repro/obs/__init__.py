"""Observability: simulator tracing, search telemetry, metrics.

The evaluation story of the paper (§5) is not just *which* mapping wins
but *why* — where the simulated time goes (compute vs. copies vs. launch
overhead, Fig. 6) and how the search converges (§5.3).  This package
makes both inspectable without perturbing either:

* :mod:`repro.obs.trace` — a zero-overhead-when-off span recorder hooked
  into the simulator's event loop; exports Chrome trace-event JSON
  (loadable in ``chrome://tracing`` / Perfetto) and feeds the ASCII
  Gantt renderer in :mod:`repro.viz.gantt`.  Traces carry **simulated**
  clock values only, so traced and untraced runs are bit-identical.
* :mod:`repro.obs.telemetry` — per-round search records (candidates
  proposed / pruned / folded, oracle calls, best-so-far, wall time)
  emitted by the search algorithms and streamed to a machine-readable
  ``telemetry.jsonl`` artifact.
* :mod:`repro.obs.metrics` — a lightweight counter/gauge/histogram
  registry replacing the ad-hoc counter attributes that used to be
  scattered across the oracle, the batch engine, and the worker
  supervisor; serialized into reports and checkpoints without breaking
  resume bit-identity.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Stopwatch,
    WallBudget,
    to_prometheus_text,
)
from repro.obs.telemetry import RoundRecord, SearchTelemetry, load_telemetry
from repro.obs.trace import (
    TRACE_FILENAME,
    TraceRecorder,
    TraceSpan,
    load_trace,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Stopwatch",
    "WallBudget",
    "to_prometheus_text",
    "RoundRecord",
    "SearchTelemetry",
    "load_telemetry",
    "TRACE_FILENAME",
    "TraceRecorder",
    "TraceSpan",
    "load_trace",
    "validate_chrome_trace",
]
