"""The profiles database (paper Figure 4).

Every mapping the driver evaluates is recorded with its raw measurement
samples so that (a) re-suggesting a mapping returns the stored result
without re-execution — the dedup behind §5.3's suggested-vs-evaluated
gap — and (b) the final report can re-rank the top mappings with more
samples.  The database persists to JSON — atomically, and with fully
round-trippable mappings, so a crashed tuning session can be reloaded
and resumed (see :mod:`repro.resilience`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.mapping.mapping import Mapping
from repro.util.serialization import dump_json, load_json

__all__ = ["ProfileRecord", "ProfileDatabase"]

#: Current on-disk format.  v1 stored mappings only as describe() text
#: and key strings (not reloadable); v2 adds the round-trippable
#: ``kinds`` document plus the deterministic makespan and the
#: static-OOM flag needed for crash-safe resume.
_FORMAT = "automap-profiles-v2"
_LEGACY_FORMATS = ("automap-profiles-v1",)


@dataclass
class ProfileRecord:
    """All measurements of one mapping."""

    mapping: Mapping
    samples: List[float] = field(default_factory=list)
    failed: bool = False
    reason: Optional[str] = None
    #: Deterministic (noise-free) makespan of the mapping's execution;
    #: None until the mapping has actually executed (or for failures).
    #: Needed to replay the simulated search clock on resume.
    makespan: Optional[float] = None
    #: True when the failure was proven by the static feasibility pass
    #: rather than discovered by the runtime memory planner.
    static_oom: bool = False

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return math.inf
        return sum(self.samples) / len(self.samples)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 for fewer than two samples)."""
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return sum((s - mu) ** 2 for s in self.samples) / (n - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def add_samples(self, samples: List[float]) -> None:
        self.samples.extend(samples)


class ProfileDatabase:
    """In-memory profiles keyed by canonical mapping identity."""

    def __init__(self) -> None:
        self._records: Dict[tuple, ProfileRecord] = {}

    # ------------------------------------------------------------------
    def lookup(self, mapping: Mapping) -> Optional[ProfileRecord]:
        return self._records.get(mapping.key())

    def record(
        self,
        mapping: Mapping,
        samples: List[float],
        failed: bool = False,
        reason: Optional[str] = None,
        makespan: Optional[float] = None,
        static_oom: bool = False,
    ) -> ProfileRecord:
        """Add samples for a mapping (creates or extends its record)."""
        key = mapping.key()
        record = self._records.get(key)
        if record is None:
            record = ProfileRecord(
                mapping=mapping, failed=failed, reason=reason
            )
            self._records[key] = record
        record.add_samples(samples)
        record.failed = record.failed or failed
        if reason and not record.reason:
            record.reason = reason
        if makespan is not None and record.makespan is None:
            record.makespan = makespan
        record.static_oom = record.static_oom or static_oom
        return record

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, mapping: Mapping) -> bool:
        return mapping.key() in self._records

    # ------------------------------------------------------------------
    def best(self, n: int = 1) -> List[ProfileRecord]:
        """The ``n`` fastest non-failed mappings by mean performance."""
        ranked = sorted(
            (r for r in self._records.values() if not r.failed and r.samples),
            key=lambda r: r.mean,
        )
        return ranked[:n]

    def all_records(self) -> List[ProfileRecord]:
        return list(self._records.values())

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Persist the database (written atomically).

        Each record stores the full round-trippable mapping (the
        ``kinds`` document of :mod:`repro.mapping.io`) alongside the
        human-readable description, so :meth:`load` can rebuild an
        equivalent in-memory database — the property crash-safe resume
        relies on.
        """
        from repro.mapping.io import mapping_to_doc

        doc = {
            "format": _FORMAT,
            "records": [
                {
                    "kinds": mapping_to_doc(record.mapping),
                    "mapping": record.mapping.describe(),
                    "samples": record.samples,
                    "mean": None if not record.samples else record.mean,
                    "failed": record.failed,
                    "reason": record.reason,
                    "makespan": record.makespan,
                    "static_oom": record.static_oom,
                }
                for record in self._records.values()
            ],
        }
        dump_json(doc, path)

    @staticmethod
    def load(path: Union[str, Path]) -> "ProfileDatabase":
        """Rebuild a database saved by :meth:`save` (v2 format only —
        the v1 format did not store reloadable mappings)."""
        from repro.mapping.io import mapping_from_doc

        doc = load_json(path)
        if doc.get("format") != _FORMAT:
            raise ValueError(
                f"cannot reload profiles from {path}: format "
                f"{doc.get('format')!r} is not round-trippable "
                f"(need {_FORMAT!r})"
            )
        db = ProfileDatabase()
        for entry in doc["records"]:
            db.record(
                mapping_from_doc(entry["kinds"]),
                list(entry["samples"]),
                failed=entry["failed"],
                reason=entry["reason"],
                makespan=entry.get("makespan"),
                static_oom=entry.get("static_oom", False),
            )
        return db

    @staticmethod
    def load_summary(path: Union[str, Path]) -> List[dict]:
        """Load the persisted record summaries (read-only view; accepts
        the legacy v1 format as well)."""
        doc = load_json(path)
        if doc.get("format") not in (_FORMAT, *_LEGACY_FORMATS):
            raise ValueError(f"not a profiles file: {path}")
        return doc["records"]
