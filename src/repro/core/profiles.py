"""The profiles database (paper Figure 4).

Every mapping the driver evaluates is recorded with its raw measurement
samples so that (a) re-suggesting a mapping returns the stored result
without re-execution — the dedup behind §5.3's suggested-vs-evaluated
gap — and (b) the final report can re-rank the top mappings with more
samples.  The database persists to JSON for offline inspection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.mapping.mapping import Mapping
from repro.util.serialization import dump_json, load_json

__all__ = ["ProfileRecord", "ProfileDatabase"]


@dataclass
class ProfileRecord:
    """All measurements of one mapping."""

    mapping: Mapping
    samples: List[float] = field(default_factory=list)
    failed: bool = False
    reason: Optional[str] = None

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return math.inf
        return sum(self.samples) / len(self.samples)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 for fewer than two samples)."""
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return sum((s - mu) ** 2 for s in self.samples) / (n - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def add_samples(self, samples: List[float]) -> None:
        self.samples.extend(samples)


class ProfileDatabase:
    """In-memory profiles keyed by canonical mapping identity."""

    def __init__(self) -> None:
        self._records: Dict[tuple, ProfileRecord] = {}

    # ------------------------------------------------------------------
    def lookup(self, mapping: Mapping) -> Optional[ProfileRecord]:
        return self._records.get(mapping.key())

    def record(
        self,
        mapping: Mapping,
        samples: List[float],
        failed: bool = False,
        reason: Optional[str] = None,
    ) -> ProfileRecord:
        """Add samples for a mapping (creates or extends its record)."""
        key = mapping.key()
        record = self._records.get(key)
        if record is None:
            record = ProfileRecord(
                mapping=mapping, failed=failed, reason=reason
            )
            self._records[key] = record
        record.add_samples(samples)
        record.failed = record.failed or failed
        if reason and not record.reason:
            record.reason = reason
        return record

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, mapping: Mapping) -> bool:
        return mapping.key() in self._records

    # ------------------------------------------------------------------
    def best(self, n: int = 1) -> List[ProfileRecord]:
        """The ``n`` fastest non-failed mappings by mean performance."""
        ranked = sorted(
            (r for r in self._records.values() if not r.failed and r.samples),
            key=lambda r: r.mean,
        )
        return ranked[:n]

    def all_records(self) -> List[ProfileRecord]:
        return list(self._records.values())

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Persist means/samples (not full Mapping objects — mappings are
        stored via their human-readable description and canonical key)."""
        doc = {
            "format": "automap-profiles-v1",
            "records": [
                {
                    "key": [list(map(str, k)) for k in record.mapping.key()],
                    "mapping": record.mapping.describe(),
                    "samples": record.samples,
                    "mean": None if not record.samples else record.mean,
                    "failed": record.failed,
                    "reason": record.reason,
                }
                for record in self._records.values()
            ],
        }
        dump_json(doc, path)

    @staticmethod
    def load_summary(path: Union[str, Path]) -> List[dict]:
        """Load the persisted record summaries (read-only view)."""
        doc = load_json(path)
        if doc.get("format") != "automap-profiles-v1":
            raise ValueError(f"not a profiles file: {path}")
        return doc["records"]
