"""The search-space representation file (paper §3.3).

"The input is a file containing the search space and machine model
representation ... generated automatically by running and profiling the
application once."  :func:`generate_space_file` performs that profiling
run (under the default starting mapping) and writes a JSON document with
the search dimensions, the machine inventory, and the per-kind runtime
profile that seeds the search's task ordering.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

from repro.machine.model import Machine
from repro.mapping.space import SearchSpace
from repro.runtime.simulator import SimConfig, Simulator
from repro.taskgraph.graph import TaskGraph
from repro.util.serialization import dump_json, load_json

__all__ = ["generate_space_file", "load_space_file"]

_FORMAT = "automap-space-file-v1"


def generate_space_file(
    graph: TaskGraph,
    machine: Machine,
    path: Union[str, Path],
    sim_config: Optional[SimConfig] = None,
) -> Dict:
    """Profile the application once and write the space file.

    The profiling run uses the default starting mapping with the spill
    fallback enabled so it cannot fail, exactly as a first profiled run
    of an unmapped application behaves.  Returns the written document.
    """
    space = SearchSpace(graph, machine)
    config = sim_config or SimConfig()
    if not config.spill:
        config = SimConfig(
            noise_sigma=config.noise_sigma, seed=config.seed, spill=True
        )
    simulator = Simulator(graph, machine, config)
    result = simulator.run(space.default_mapping())

    doc = {
        "format": _FORMAT,
        "application": graph.name,
        "machine": {
            "name": machine.name,
            "nodes": machine.num_nodes,
            "proc_kinds": [k.value for k in machine.proc_kinds()],
            "mem_kinds": [k.value for k in machine.mem_kinds()],
        },
        "profile": {
            "makespan": result.makespan,
            "kind_busy": dict(result.report.kind_busy),
            "kind_points": dict(result.report.kind_points),
        },
        "kinds": [
            {
                "name": dims.kind_name,
                "slots": list(dims.slot_names),
                "distribute_options": list(dims.distribute_options),
                "proc_options": [p.value for p in dims.proc_options],
                "mem_options": {
                    p.value: [m.value for m in mems]
                    for p, mems in dims.mem_options.items()
                },
                "slot_bytes": [
                    max(
                        (
                            launch.args[i].nbytes
                            for launch in graph.launches_of_kind(
                                dims.kind_name
                            )
                        ),
                        default=0,
                    )
                    for i in range(len(dims.slot_names))
                ],
            }
            for dims in (space.dims(name) for name in space.kind_names())
        ],
        "size_log2": space.log2_size(),
    }
    dump_json(doc, path)
    return doc


def load_space_file(path: Union[str, Path]) -> Dict:
    """Read a space file back (validated)."""
    doc = load_json(path)
    if doc.get("format") != _FORMAT:
        raise ValueError(f"not an AutoMap space file: {path}")
    return doc
