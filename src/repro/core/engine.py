"""The stateless tuning engine (paper Figure 4, right box).

The engine owns the search *logic* but none of the search *state*: a
single :class:`TuningEngine` instance serves any number of concurrent
tuning requests, each described by an immutable :class:`TuneRequest`
and materialised into a private :class:`PreparedTune` working set.  The
split exists for mapping-as-a-service (:mod:`repro.service`): a service
process keeps one engine and streams jobs through it, while the classic
:class:`repro.core.driver.AutoMapDriver` remains as a thin stateful
wrapper for one (application, machine) pair.

The run itself is unchanged from the original driver: build the search
space, instantiate the evaluation oracle with the configured measurement
protocol and budget, invoke the pluggable search algorithm, and finish
with the final re-evaluation protocol of §5: "as a final step of the
search, the applications were executed with each of the top 5 mappings
30 times; we report results for the mapping with the fastest average
runtime."
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from repro.core.oracle import OracleConfig, SimulationOracle
from repro.core.profiles import ProfileDatabase
from repro.obs.telemetry import SearchTelemetry
from repro.obs.trace import TraceRecorder
from repro.parallel.batch import BatchOracle
from repro.machine.model import Machine
from repro.mapping.mapping import Mapping
from repro.mapping.space import SearchSpace
from repro.resilience.checkpoint import CheckpointManager, TuningCheckpoint
from repro.resilience.supervisor import SupervisorStats
from repro.runtime.simulator import SimConfig, Simulator
from repro.search.base import SearchAlgorithm, SearchResult
from repro.search.ccd import ConstrainedCoordinateDescent
from repro.search.cd import CoordinateDescent
from repro.search.ensemble import EnsembleTuner
from repro.search.random_search import RandomSearch
from repro.taskgraph.graph import TaskGraph
from repro.util.logging import get_logger, kv
from repro.util.rng import RngStream

__all__ = [
    "FINAL_CANDIDATES",
    "FINAL_RUNS",
    "TuningReport",
    "TuneRequest",
    "PreparedTune",
    "TuningEngine",
    "make_algorithm",
]

_LOG = get_logger("core.engine")

#: §5 protocol constants.
FINAL_CANDIDATES = 5
FINAL_RUNS = 31


def make_algorithm(name: str) -> SearchAlgorithm:
    """Construct a search algorithm by its short name."""
    factories = {
        "ccd": ConstrainedCoordinateDescent,
        "cd": CoordinateDescent,
        "opentuner": EnsembleTuner,
        "random": RandomSearch,
    }
    try:
        return factories[name]()
    except KeyError:
        raise ValueError(
            f"unknown search algorithm {name!r}; "
            f"choose from {sorted(factories)}"
        ) from None


@dataclass
class TuningReport:
    """Everything one tuning run produced."""

    application: str
    machine_name: str
    algorithm: str
    best_mapping: Optional[Mapping]
    #: Mean over the final re-evaluation runs of the winning mapping.
    best_mean: float
    best_stddev: float
    search: SearchResult
    #: The final top candidates: (mapping, mean, stddev, sample count).
    finalists: List[Tuple[Mapping, float, float, int]] = field(
        default_factory=list
    )
    suggested: int = 0
    evaluated: int = 0
    invalid_suggestions: int = 0
    failed_evaluations: int = 0
    #: Simulated search-clock seconds and the fraction spent evaluating.
    search_seconds: float = 0.0
    evaluation_fraction: float = 0.0
    #: Static-analysis pruning statistics (0 with --no-static-prune).
    static_oom_pruned: int = 0
    canonical_folds: int = 0
    #: Bound-based pruning statistics (0 with --no-bound-prune or an
    #: algorithm that does not support pruning): candidates skipped
    #: because their static lower bound already exceeded the best-so-far,
    #: and how many of those were simulated after the search to rule
    #: them out of the finalist re-evaluation.
    bound_pruned: int = 0
    bound_settled: int = 0
    #: Routed-vs-incident communication-bound tightening on the best
    #: mapping's spill plan (>= 1.0; exactly 1.0 without a bound
    #: analyzer).  A pure function of the best mapping, so it is
    #: bit-identical across checkpoint/resume.
    bound_gap_ratio: float = 1.0
    #: Canonicalizations the machine-symmetry orbit fold changed (0 on
    #: machines without interchangeable kinds).
    symmetry_folds: int = 0
    #: Novel mappings the runtime machinery processed (deterministic
    #: executions plus in-planner OOM discoveries).  After a resume this
    #: counts only the work done since the restart — checkpointed
    #: evaluations replay without touching the runtime machinery.
    simulations: int = 0
    #: Fault-tolerance accounting (repro.resilience).
    resumed: bool = False
    #: Evaluations reconstructed from the checkpoint's replay ledger.
    replayed: int = 0
    #: Checkpoints written during this run.
    checkpoints_written: int = 0
    #: Worker-pool recovery events (timeouts, rebuilds, retries, ...).
    recovery: SupervisorStats = field(default_factory=SupervisorStats)
    #: Observability (repro.obs).  ``metrics`` is the full registry
    #: snapshot; ``telemetry`` the per-round summary (None when no
    #: telemetry sink was attached); ``trace``/``breakdown`` the best
    #: mapping's simulated execution trace and its time decomposition
    #: (None unless the engine ran with ``trace=True``).
    metrics: Optional[dict] = None
    telemetry: Optional[dict] = None
    trace: Optional[TraceRecorder] = None
    breakdown: Optional[dict] = None

    def describe(self) -> str:
        lines = [
            f"AutoMap tuning report — {self.application} on "
            f"{self.machine_name} via {self.algorithm}",
            f"  best mean time: {self.best_mean:.6f} s "
            f"(± {self.best_stddev:.6f})",
            f"  suggested {self.suggested}, evaluated {self.evaluated} "
            f"({self.invalid_suggestions} invalid, "
            f"{self.failed_evaluations} failed)",
            f"  search time {self.search_seconds:.1f} s simulated, "
            f"{self.evaluation_fraction:.0%} evaluating",
            f"  static analysis: {self.simulations} simulations run, "
            f"{self.static_oom_pruned} OOM proven statically, "
            f"{self.canonical_folds} suggestions folded",
        ]
        if self.bound_pruned or self.bound_settled:
            lines.append(
                f"  bound pruning: {self.bound_pruned} candidates pruned "
                f"by static lower bounds, {self.bound_settled} settled "
                f"after the search"
            )
        if self.bound_gap_ratio != 1.0:
            lines.append(
                f"  routed bound: {self.bound_gap_ratio:.3f}x tighter "
                f"than incident bandwidth on the best mapping"
            )
        if self.symmetry_folds:
            lines.append(
                f"  machine symmetry: {self.symmetry_folds} suggestions "
                f"folded onto relabeled twins"
            )
        if self.resumed or self.replayed:
            lines.append(
                f"  resume: {self.replayed} evaluations replayed from "
                f"checkpoint"
            )
        if self.checkpoints_written:
            lines.append(
                f"  checkpoints: {self.checkpoints_written} written"
            )
        if self.recovery.any_events:
            lines.append(f"  recovery: {self.recovery.describe()}")
        if self.telemetry is not None:
            lines.append(
                f"  telemetry: {self.telemetry['rounds']} rounds, "
                f"{self.telemetry['wall_seconds']:.1f} s wall"
            )
        if self.breakdown is not None:
            lines.append(
                f"  best-mapping time: "
                f"{self.breakdown['compute_fraction']:.0%} compute, "
                f"{self.breakdown['copy_fraction']:.0%} copy, "
                f"{self.breakdown['overhead_fraction']:.0%} overhead, "
                f"{self.breakdown['idle_fraction']:.0%} idle "
                f"({self.breakdown['active_processors']} processors)"
            )
        if self.best_mapping is not None:
            lines.append("  best mapping:")
            for line in self.best_mapping.describe().splitlines():
                lines.append(f"    {line}")
        return "\n".join(lines)


@dataclass(frozen=True)
class TuneRequest:
    """Everything one tuning run consumes, as one immutable value.

    A request is pure input: constructing one performs no work and
    allocates no run state, so requests can be built ahead of time,
    queued, and handed to a shared :class:`TuningEngine` (possibly from
    several jobs in flight at once — each :meth:`TuningEngine.prepare`
    call materialises its own private working set).
    """

    graph: TaskGraph
    machine: Machine
    algorithm: Union[str, SearchAlgorithm] = "ccd"
    oracle_config: Optional[OracleConfig] = None
    sim_config: Optional[SimConfig] = None
    seed: int = 0
    final_candidates: int = FINAL_CANDIDATES
    final_runs: int = FINAL_RUNS
    #: A caller-provided space may restrict the searched kinds (fixed
    #: decisions, §3.3) — e.g. Maestro tunes only the LF ensemble.
    space: Optional[SearchSpace] = None
    workers: int = 1
    static_prune: bool = True
    bound_prune: bool = True
    bound_order: bool = True
    checkpoint_path: Optional[Union[str, Path]] = None
    checkpoint_every: int = 0
    resume_checkpoint: Optional[TuningCheckpoint] = None
    worker_timeout: Optional[float] = None
    observers: Optional[
        Tuple[Callable[[SimulationOracle], None], ...]
    ] = None
    telemetry: Optional[SearchTelemetry] = None
    trace: bool = False
    #: Optional explicit starting mapping (otherwise bound-guided).
    start: Optional[Mapping] = None

    def with_(self, **changes) -> "TuneRequest":
        return replace(self, **changes)


class PreparedTune:
    """One request's materialised working set: the pruned search space,
    the simulator, and the static analyzers.  All per-run state lives
    here (or deeper, in the oracle built per :meth:`TuningEngine.run`
    call) — never on the engine."""

    def __init__(self, request: TuneRequest) -> None:
        self.request = request
        self.graph = request.graph
        self.machine = request.machine
        self.algorithm = (
            make_algorithm(request.algorithm)
            if isinstance(request.algorithm, str)
            else request.algorithm
        )
        self.oracle_config = request.oracle_config or OracleConfig()
        self.sim_config = request.sim_config or SimConfig()
        self.space = request.space or SearchSpace(
            request.graph, request.machine
        )
        self.simulator = Simulator(
            request.graph, request.machine, self.sim_config
        )
        if request.workers < 1:
            raise ValueError("workers must be >= 1")

        self.checkpoint_path = (
            None
            if request.checkpoint_path is None
            else Path(request.checkpoint_path)
        )
        if request.resume_checkpoint is not None:
            request.resume_checkpoint.verify_matches(
                request.graph.name,
                request.machine.name,
                self.algorithm.name,
                request.seed,
            )

        # Static pre-simulation pruning (repro.analysis).  The
        # canonicalizer is placement-exact and always safe; the memory
        # feasibility pass proves the *failure* the oracle would report,
        # which only exists when overflow fails instead of spilling, so
        # it is gated on ``spill=False``.
        self.canonicalizer = None
        self.feasibility = None
        if request.static_prune:
            from repro.analysis.canonical import Canonicalizer
            from repro.analysis.memfeas import StaticMemoryFeasibility

            self.canonicalizer = Canonicalizer(request.graph, request.machine)
            if not self.sim_config.spill:
                self.feasibility = StaticMemoryFeasibility(
                    request.graph, request.machine
                )
            self.space = self.space.prune_infeasible(
                feasibility=self.feasibility,
                canonicalizer=self.canonicalizer,
            )

        # Bound-based pruning (repro.analysis.bounds): skip candidates
        # whose static makespan lower bound already exceeds the
        # best-so-far.  Only sound when (a) the algorithm compares
        # outcomes against an incumbent rather than consuming the
        # numbers, (b) performance is the default makespan mean (a lower
        # bound on makespan says nothing about a custom metric), and
        # (c) no evaluation-count or simulated-clock budget is set —
        # pruned candidates skip the evaluation counter and the
        # simulated evaluation time, so such budgets would exhaust at a
        # different point and change the trajectory.  A wall-clock
        # budget (inherently timing-dependent) is not gated.
        self.bounds = None
        if (
            request.bound_prune
            and getattr(self.algorithm, "supports_bound_pruning", False)
            and self.oracle_config.metric is None
            and self.oracle_config.max_evaluations is None
            and self.oracle_config.max_sim_seconds is None
        ):
            from repro.analysis.bounds import StaticBoundAnalyzer

            self.bounds = StaticBoundAnalyzer(request.graph, request.machine)

        # Best-bound-first ordering: CD-family algorithms visit each
        # coordinate's move-set in ascending static-lower-bound order
        # and start from a bound-guided seed, so the incumbent tightens
        # early and (when pruning is also on) more of the tail is
        # skipped.  Unlike pruning, ordering changes only the visit
        # order — the strict-improvement accept rule is untouched — so
        # it is safe under any metric or budget and gated only on the
        # algorithm family.
        self.order_bounds = None
        if request.bound_order and isinstance(
            self.algorithm, CoordinateDescent
        ):
            if self.bounds is not None:
                self.order_bounds = self.bounds
            else:
                from repro.analysis.bounds import StaticBoundAnalyzer

                self.order_bounds = StaticBoundAnalyzer(
                    request.graph, request.machine
                )


class TuningEngine:
    """A stateless tuning engine.

    The engine holds no per-run attributes: :meth:`prepare` materialises
    a request into its own :class:`PreparedTune`, :meth:`run` threads
    every piece of run state through locals, and :meth:`tune` composes
    the two.  One engine instance can therefore serve many requests —
    sequentially or from several worker threads — without any
    cross-contamination, which is the property the mapping service
    (:mod:`repro.service`) builds on.
    """

    # ------------------------------------------------------------------
    def prepare(self, request: TuneRequest) -> PreparedTune:
        """Materialise ``request``'s working set (space pruning, static
        analyzers, simulator) without starting the search."""
        return PreparedTune(request)

    # ------------------------------------------------------------------
    def tune(self, request: TuneRequest) -> TuningReport:
        """Run the full search + final re-evaluation protocol."""
        return self.run(self.prepare(request))

    # ------------------------------------------------------------------
    def run(
        self,
        prepared: PreparedTune,
        start: Optional[Mapping] = None,
    ) -> TuningReport:
        """Run the search + final re-evaluation over a prepared request.

        When a checkpoint path is configured, the search state is
        snapshotted atomically every ``checkpoint_every`` evaluations
        and on :class:`KeyboardInterrupt` (which is then re-raised), so
        a killed run can be continued with ``resume_checkpoint`` — to a
        bit-identical result (see :mod:`repro.resilience.checkpoint`).
        """
        request = prepared.request
        algorithm = prepared.algorithm
        telemetry = request.telemetry
        if start is None:
            start = request.start

        profiles = ProfileDatabase()
        serial_oracle = SimulationOracle(
            prepared.simulator,
            prepared.oracle_config,
            profiles,
            canonicalizer=prepared.canonicalizer,
            feasibility=prepared.feasibility,
            bounds=prepared.bounds,
        )
        oracle = BatchOracle(
            serial_oracle,
            workers=request.workers,
            timeout=request.worker_timeout,
        )
        rng = RngStream(request.seed).fork("search", algorithm.name)

        if request.resume_checkpoint is not None:
            serial_oracle.install_replay(
                request.resume_checkpoint.replay_ledger()
            )
            _LOG.info(
                kv(
                    "resume",
                    records=len(request.resume_checkpoint.entries),
                    evaluated=request.resume_checkpoint.evaluated,
                    cursor=str(request.resume_checkpoint.cursor),
                )
            )

        manager: Optional[CheckpointManager] = None
        if prepared.checkpoint_path is not None:
            manager = CheckpointManager(
                prepared.checkpoint_path,
                serial_oracle,
                application=request.graph.name,
                machine_name=request.machine.name,
                algorithm_name=algorithm.name,
                seed=request.seed,
                every=request.checkpoint_every,
                rng=rng,
                algorithm=algorithm,
            )
            serial_oracle.observers.append(manager.on_evaluation)
        serial_oracle.observers.extend(request.observers or ())

        _LOG.info(
            kv(
                "tune-start",
                app=request.graph.name,
                machine=request.machine.name,
                algorithm=algorithm.name,
                space_log2=round(prepared.space.log2_size(), 1),
                workers=request.workers,
                resume=request.resume_checkpoint is not None,
            )
        )
        if prepared.order_bounds is not None and start is None:
            from repro.analysis.bounds import bound_guided_mapping

            start = bound_guided_mapping(
                prepared.space, prepared.order_bounds
            )
        try:
            algorithm.telemetry = telemetry
            if prepared.order_bounds is not None:
                algorithm.bound_analyzer = prepared.order_bounds
            result = algorithm.search(
                prepared.space, oracle, rng, start=start
            )

            # Bound-pruned candidates have no profile record; any that
            # could plausibly rank among the finalists is simulated now
            # so the finalist selection below sees exactly the records
            # an unpruned run would have ranked.
            serial_oracle.settle_pruned(request.final_candidates)

            # Final step (§5): re-measure the top candidates with more
            # runs and report the fastest average.
            finalists: List[Tuple[Mapping, float, float, int]] = []
            for record in profiles.best(request.final_candidates):
                extra = max(0, request.final_runs - record.count)
                if extra:
                    oracle.measure_more(record.mapping, extra)
                finalists.append(
                    (record.mapping, record.mean, record.stddev, record.count)
                )
            finalists.sort(key=lambda item: item[1])
        except KeyboardInterrupt:
            # Ctrl-C / SIGINT mid-tune: flush a final checkpoint so the
            # interrupted session is resumable, then let the interrupt
            # propagate (the CLI turns it into exit status 130).
            if manager is not None:
                manager.flush()
                _LOG.info(
                    kv("interrupt-checkpoint", path=str(manager.path))
                )
            raise
        finally:
            algorithm.telemetry = None
            if prepared.order_bounds is not None:
                algorithm.bound_analyzer = None
            if telemetry is not None:
                telemetry.close()
            oracle.close()
        if manager is not None:
            manager.flush()

        if finalists:
            best_mapping, best_mean, best_stddev, _ = finalists[0]
        else:
            best_mapping = result.best_mapping
            best_mean = result.best_performance
            best_stddev = math.nan

        # Deterministic trace of the winner: a fresh re-execution with
        # the recorder on.  Off the search path entirely (the memo cache
        # and execution counters are untouched), so a traced run's
        # report is byte-identical to an untraced one.
        # Routed-vs-incident gap on the winner: a pure function of the
        # best mapping's spill plan, so it resumes bit-identically
        # (unlike per-candidate bound counts, which replay skips).
        gap_analyzer = (
            prepared.bounds
            if prepared.bounds is not None
            else prepared.order_bounds
        )
        bound_gap = 1.0
        if gap_analyzer is not None and best_mapping is not None:
            bound_gap = gap_analyzer.gap_ratio(
                prepared.simulator.spill_plan(best_mapping)
            )

        trace_recorder: Optional[TraceRecorder] = None
        breakdown: Optional[dict] = None
        if request.trace and best_mapping is not None:
            trace_recorder, _ = prepared.simulator.trace(
                serial_oracle.canonical(best_mapping),
                label=(
                    f"{request.graph.name} on {request.machine.name} "
                    f"({algorithm.name} best)"
                ),
            )
            breakdown = trace_recorder.breakdown()

        # Analysis gauges ride along in the metrics snapshot.  Both are
        # deterministic across checkpoint/resume: the gap is a function
        # of the best mapping alone, and the orbit fold runs before the
        # replay ledger is consulted, so a resumed run re-derives the
        # same fold count.
        metrics = serial_oracle.metrics.as_dict()
        gauges = metrics.setdefault("gauges", {})
        gauges["analysis.bound_gap_ratio"] = bound_gap
        gauges["analysis.symmetry_folds"] = float(
            serial_oracle.symmetry_folds
        )

        report = TuningReport(
            application=request.graph.name,
            machine_name=request.machine.name,
            algorithm=algorithm.name,
            best_mapping=best_mapping,
            best_mean=best_mean,
            best_stddev=best_stddev,
            search=result,
            finalists=finalists,
            suggested=oracle.suggested,
            evaluated=oracle.evaluated,
            invalid_suggestions=oracle.invalid_suggestions,
            failed_evaluations=oracle.failed_evaluations,
            search_seconds=oracle.sim_elapsed,
            evaluation_fraction=oracle.evaluation_fraction,
            static_oom_pruned=oracle.static_oom_pruned,
            canonical_folds=oracle.canonical_folds,
            bound_pruned=oracle.bound_pruned,
            bound_settled=oracle.bound_settled,
            bound_gap_ratio=bound_gap,
            symmetry_folds=serial_oracle.symmetry_folds,
            simulations=(
                prepared.simulator.executions
                + prepared.simulator.oom_attempts
            ),
            resumed=request.resume_checkpoint is not None,
            replayed=serial_oracle.replayed,
            checkpoints_written=0 if manager is None else manager.saves,
            recovery=oracle.stats,
            metrics=metrics,
            telemetry=(
                None if telemetry is None else telemetry.summary()
            ),
            trace=trace_recorder,
            breakdown=breakdown,
        )
        _LOG.info(
            kv(
                "tune-done",
                app=request.graph.name,
                best=best_mean,
                evaluated=oracle.evaluated,
            )
        )
        return report

    # ------------------------------------------------------------------
    def measure(
        self,
        prepared: PreparedTune,
        mapping: Mapping,
        runs: int = FINAL_RUNS,
    ) -> float:
        """Mean of ``runs`` noisy measurements of one mapping (used to
        score baseline mappings outside the search)."""
        result = prepared.simulator.run(mapping, runs=runs)
        return result.mean
