"""The one-call user API.

"AutoMap requires no modification to the application" (§3.3): a session
takes the application's task graph (or an :class:`repro.apps.base.App`)
and a machine, generates the search-space representation file by
profiling the application once, runs the offline search, and returns the
tuning report.  Artifacts (space file, profiles database) are written to
a working directory when one is given.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.core.driver import AutoMapDriver, TuningReport
from repro.core.oracle import OracleConfig
from repro.core.profiles import ProfileDatabase
from repro.core.spacefile import generate_space_file
from repro.obs.telemetry import TELEMETRY_FILENAME, SearchTelemetry
from repro.obs.trace import TRACE_FILENAME
from repro.machine.model import Machine
from repro.mapping.mapping import Mapping
from repro.resilience.checkpoint import CHECKPOINT_FILENAME, load_checkpoint
from repro.runtime.simulator import SimConfig
from repro.taskgraph.graph import TaskGraph
from repro.util.logging import get_logger
from repro.util.serialization import atomic_write_text

__all__ = ["AutoMapSession"]

_LOG = get_logger("core.session")


class AutoMapSession:
    """End-to-end tuning of one application on one machine.

    Examples
    --------
    >>> from repro.machine import shepard
    >>> from repro.apps import StencilApp
    >>> app = StencilApp(nx=500, ny=500, nodes=1)
    >>> session = AutoMapSession(app.graph(shepard(1)), shepard(1))
    >>> report = session.tune()         # doctest: +SKIP
    """

    def __init__(
        self,
        graph: TaskGraph,
        machine: Machine,
        algorithm: str = "ccd",
        workdir: Optional[Union[str, Path]] = None,
        oracle_config: Optional[OracleConfig] = None,
        sim_config: Optional[SimConfig] = None,
        seed: int = 0,
        space=None,
        workers: int = 1,
        static_prune: bool = True,
        bound_prune: bool = True,
        checkpoint_every: int = 0,
        resume: bool = False,
        worker_timeout: Optional[float] = None,
        trace: bool = False,
        metrics_out: Optional[Union[str, Path]] = None,
        telemetry: bool = True,
    ) -> None:
        self.graph = graph
        self.machine = machine
        self.workdir = Path(workdir) if workdir is not None else None
        #: Optional path for a Prometheus text-format dump of the tuning
        #: run's metrics registry (written after :meth:`tune`).
        self.metrics_out = (
            Path(metrics_out) if metrics_out is not None else None
        )

        # Observability: with a working directory, per-round search
        # telemetry streams to ``<workdir>/telemetry.jsonl``; with
        # ``trace=True`` the winning mapping's deterministic execution
        # trace lands in ``<workdir>/trace.json`` (Chrome trace-event
        # format).  Both are observational — enabling them cannot change
        # the tuning result (see repro.obs).  ``telemetry=False`` skips
        # the sink even with a working directory — the service does this
        # because telemetry records wall-clock seconds, which would make
        # the job directory differ across bit-identical runs.
        self.telemetry = (
            SearchTelemetry(self.workdir / TELEMETRY_FILENAME)
            if telemetry and self.workdir is not None
            else None
        )
        self.trace = trace

        # Fault tolerance: with a working directory, the search state is
        # checkpointed to ``<workdir>/checkpoint.json`` (periodically
        # when ``checkpoint_every > 0``, and always on interrupt / at
        # the end).  ``resume=True`` reloads that checkpoint and
        # continues the run — bit-identically, see repro.resilience.
        checkpoint_path = None
        resume_checkpoint = None
        if self.workdir is not None:
            checkpoint_path = self.workdir / CHECKPOINT_FILENAME
        if resume:
            if checkpoint_path is None:
                raise ValueError(
                    "resume=True requires a working directory holding "
                    "the checkpoint to resume from"
                )
            if not checkpoint_path.exists():
                raise FileNotFoundError(
                    f"no checkpoint to resume at {checkpoint_path}"
                )
            resume_checkpoint = load_checkpoint(checkpoint_path)

        self.driver = AutoMapDriver(
            graph,
            machine,
            algorithm=algorithm,
            oracle_config=oracle_config,
            sim_config=sim_config,
            seed=seed,
            space=space,
            workers=workers,
            static_prune=static_prune,
            bound_prune=bound_prune,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            resume_checkpoint=resume_checkpoint,
            worker_timeout=worker_timeout,
            telemetry=self.telemetry,
            trace=trace,
        )

    # ------------------------------------------------------------------
    def tune(self, start: Optional[Mapping] = None) -> TuningReport:
        """Profile once (space file), search, re-evaluate finalists."""
        if self.workdir is not None:
            self.workdir.mkdir(parents=True, exist_ok=True)
            generate_space_file(
                self.graph,
                self.machine,
                self.workdir / "search_space.json",
                sim_config=self.driver.sim_config,
            )
        report = self.driver.tune(start=start)
        if self.workdir is not None:
            self._save_artifacts(report)
        if self.metrics_out is not None and report.metrics is not None:
            from repro.obs.metrics import to_prometheus_text

            self.metrics_out.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(
                to_prometheus_text(report.metrics), self.metrics_out
            )
            _LOG.info("metrics written to %s", self.metrics_out)
        return report

    def _save_artifacts(self, report: TuningReport) -> None:
        assert self.workdir is not None
        if report.best_mapping is not None:
            from repro.mapping.io import save_mapping

            save_mapping(
                report.best_mapping,
                self.workdir / "best_mapping.json",
                application=self.graph.name,
            )
        profiles = ProfileDatabase()
        for mapping, mean, stddev, count in report.finalists:
            # Persist the finalists' summary (full sample sets live in the
            # driver's database during the run).
            profiles.record(mapping, [mean] * min(count, 1))
        profiles.save(self.workdir / "finalists.json")
        if report.trace is not None:
            report.trace.save(self.workdir / TRACE_FILENAME)
        atomic_write_text(
            report.describe() + "\n", self.workdir / "report.txt"
        )
        _LOG.info("artifacts written to %s", self.workdir)

    # ------------------------------------------------------------------
    def measure(self, mapping: Mapping, runs: int = 31) -> float:
        """Measure an arbitrary mapping (e.g. a hand-written baseline)
        with the same protocol as the tuner's final step."""
        return self.driver.measure(mapping, runs=runs)

    def default_mapping(self) -> Mapping:
        """The runtime's default starting mapping for this pair."""
        return self.driver.space.default_mapping()
